#!/usr/bin/env python3
"""Summarise `repro lint --format json` output as a Markdown table.

Used by the CI ``static-analysis`` job: the table goes to the job
summary so a reviewer sees per-rule counts, suppression usage, and
whether the cross-file project pass ran — without digging through logs.

Usage: repro lint src tests --format json | python tools/lint_summary.py
       python tools/lint_summary.py lint.json
"""

from __future__ import annotations

import json
import sys
from typing import Any

EXPECTED_VERSION = 2


def load(argv: list[str]) -> dict[str, Any]:
    if len(argv) == 2:
        with open(argv[1], encoding="utf-8") as handle:
            payload = json.load(handle)
    elif len(argv) == 1:
        payload = json.load(sys.stdin)
    else:
        raise SystemExit(__doc__)
    if not isinstance(payload, dict):
        raise SystemExit("lint JSON payload must be an object")
    return payload


def main() -> int:
    payload = load(sys.argv)
    version = payload.get("version")
    if version != EXPECTED_VERSION:
        print(
            f"::warning::lint JSON version {version!r} != {EXPECTED_VERSION}; "
            "table may be incomplete",
            file=sys.stderr,
        )
    stats = payload.get("statistics", {})
    count = payload.get("count", 0)
    rules: dict[str, int] = stats.get("rules", {})

    print("## repro lint")
    print()
    print(f"- files scanned: **{stats.get('files_scanned', '?')}**")
    print(f"- findings: **{count}**")
    print(f"- suppressed (`# repro-lint: disable=`): **{stats.get('suppressed', '?')}**")
    project = stats.get("project_pass")
    ran = "ran" if project else "did not run (category registry not in scope)"
    print(f"- cross-file project pass (RPX008-RPX010): **{ran}**")
    if rules:
        print()
        print("| Rule | Findings |")
        print("|---|---:|")
        for rule_id in sorted(rules):
            print(f"| `{rule_id}` | {rules[rule_id]} |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
