#!/usr/bin/env python3
"""Summarise a coverage.xml file as a per-package Markdown table.

Used by the CI ``coverage`` job: the table goes to the job summary, and
soft floors on the trusted packages emit ``::warning`` annotations (on
stderr, so they do not corrupt the Markdown on stdout) without failing
the build.

Usage: python tools/coverage_summary.py coverage.xml
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET
from collections import defaultdict

# Soft floors: packages whose correctness arguments lean on tests.
# repro.sim carries the deterministic substrate every result depends on;
# repro.sweep carries the byte-identical merge contract; repro.core holds
# the transport and scheduling seams (repro.core.scheduling's policy
# registry decides when probe computations start, so its floor is part
# of the seam contract) and repro.live the wall-clock backend the
# contract suite licenses.
FLOORS = {
    "repro.sim": 85.0,
    "repro.core": 85.0,
    "repro.sweep": 85.0,
    "repro.live": 85.0,
    "repro.obs": 85.0,
    "repro.cluster": 85.0,
    "repro.workloads": 85.0,
}


def top_level_package(filename: str) -> str:
    """Map 'repro/sweep/runner.py' -> 'repro.sweep', 'repro/cli.py' -> 'repro'."""
    parts = filename.replace("\\", "/").split("/")
    if len(parts) >= 3:
        return f"{parts[0]}.{parts[1]}"
    return parts[0]


def collect(path: str) -> dict[str, tuple[int, int]]:
    """Return {package: (lines_covered, lines_valid)} from a Cobertura XML."""
    totals: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    root = ET.parse(path).getroot()
    for cls in root.iter("class"):
        package = top_level_package(cls.get("filename", ""))
        for line in cls.iter("line"):
            totals[package][1] += 1
            if int(line.get("hits", "0")) > 0:
                totals[package][0] += 1
    return {name: (covered, valid) for name, (covered, valid) in totals.items()}


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    totals = collect(sys.argv[1])
    if not totals:
        print("::warning::coverage.xml contained no class entries", file=sys.stderr)
        return 0

    print("## Coverage by package")
    print()
    print("| Package | Lines | Covered | % | Floor |")
    print("|---|---:|---:|---:|---|")
    grand_covered = grand_valid = 0
    for name in sorted(totals):
        covered, valid = totals[name]
        grand_covered += covered
        grand_valid += valid
        pct = 100.0 * covered / valid if valid else 100.0
        floor = FLOORS.get(name)
        if floor is None:
            note = ""
        elif pct >= floor:
            note = f"&ge;{floor:.0f}% ok"
        else:
            note = f"**below {floor:.0f}% floor**"
            print(
                f"::warning::{name} line coverage {pct:.1f}% is below the "
                f"soft floor of {floor:.0f}%",
                file=sys.stderr,
            )
        print(f"| `{name}` | {valid} | {covered} | {pct:.1f}% | {note} |")
    grand_pct = 100.0 * grand_covered / grand_valid if grand_valid else 100.0
    print(f"| **total** | {grand_valid} | {grand_covered} | {grand_pct:.1f}% | |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
