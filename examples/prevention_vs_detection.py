"""Detect or prevent?  The probe computation vs wait-die / wound-wait.

The paper's approach lets deadlocks happen and detects them precisely.
The classic alternative (Rosenkrantz et al. 1978) prevents cycles with
timestamp ordering, aborting transactions on mere *suspicion*.  This
example runs an identical contended bank-style workload under all three
schemes and prints the trade:

* detection aborts only genuine deadlock victims, at the cost of probe
  messages proportional to blocking;
* wait-die aborts every young transaction that bumps into an older one --
  many times more aborts, zero detection messages;
* wound-wait preempts younger lock holders -- fewer aborts than wait-die,
  still more than detection.

Run:  python examples/prevention_vs_detection.py
"""

from __future__ import annotations

from repro.ddb import (
    AbortLowestTransactionInCycle,
    DdbManualInitiation,
    DdbSystem,
    WaitDie,
    WoundWait,
)
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

PARAMS = dict(
    n_transactions=12,
    remote_probability=1.0,
    read_ratio=0.0,
    hotspot_probability=0.6,
    hotspot_size=2,
    mean_think=1.0,
    arrival_window=6.0,
    restart_horizon=4000.0,
)
SEEDS = range(4)


def run(label: str, **system_kwargs) -> tuple[str, int, int, int]:
    commits = aborts = probes = 0
    for seed in SEEDS:
        system = DdbSystem(
            n_sites=3, resources=6, seed=seed, trace=False, **system_kwargs
        )
        workload = TransactionWorkload(system, WorkloadParams(**PARAMS))
        workload.start()
        system.run_to_quiescence(max_events=3_000_000)
        system.assert_no_deadlock_remains()
        commits += workload.stats.commits
        aborts += workload.stats.aborts
        probes += system.metrics.counter_value("ddb.probes.sent")
    return label, commits, aborts, probes


def main() -> None:
    rows = [
        run(
            "detection (this paper)",
            resolution=AbortLowestTransactionInCycle(),
        ),
        run(
            "prevention: wait-die",
            prevention=WaitDie(),
            initiation=DdbManualInitiation(),
        ),
        run(
            "prevention: wound-wait",
            prevention=WoundWait(),
            initiation=DdbManualInitiation(),
        ),
    ]
    print(f"{'scheme':<26}{'commits':>9}{'aborts':>9}{'probe msgs':>12}")
    print("-" * 56)
    for label, commits, aborts, probes in rows:
        print(f"{label:<26}{commits:>9}{aborts:>9}{probes:>12}")
    detection_aborts = rows[0][2]
    assert all(r[1] == 12 * len(list(SEEDS)) for r in rows)
    print(
        "\nEveryone commits either way.  Detection aborts only real deadlock "
        "victims\n(paying probe messages proportional to blocking); prevention "
        "pays zero messages\nbut aborts on suspicion -- "
        f"{rows[1][2]}/{detection_aborts} (wait-die/detection) aborts here."
    )


if __name__ == "__main__":
    main()
