"""Tuning the delayed-initiation parameter T (section 4.3).

"The basic tradeoff is that if T is too small too many probe computations
are initiated and if T is too large the time taken to detect deadlock
(which is at least T) is too large."

This example sweeps T over a fixed random workload and prints the curve:
probe computations initiated and mean detection latency per T.  The same
deadlocks form at every T (detection does not perturb the workload -- the
simulator draws delays per message type), so the rows are directly
comparable.

Run:  python examples/tuning_initiation.py
"""

from __future__ import annotations

from repro.experiments.e5_t_tradeoff import run_config


def main() -> None:
    seeds = tuple(range(5))
    print(f"{'T':>10}{'computations':>14}{'avoided':>9}{'probes':>8}{'latency':>10}")
    print("-" * 51)
    for timeout in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        result = run_config(timeout, seeds)
        latency = "-" if result.mean_latency is None else f"{result.mean_latency:.2f}"
        print(
            f"{timeout:>10g}{result.computations:>14}{result.avoided:>9}"
            f"{result.probes:>8}{latency:>10}"
        )
        assert result.components_detected == result.components_formed
    print(
        "\nEvery row detected every deadlock (dark edges persist, so their "
        "timers always fire);\nsmall T spends computations on waits that "
        "were about to resolve, large T pays latency >= T."
    )


if __name__ == "__main__":
    main()
