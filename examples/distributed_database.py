"""A two-branch bank on the DDB model (section 6).

Two bank branches (sites) each hold half of the account records.  Transfer
transactions lock the source account, compute, then lock the destination
account -- possibly at the other branch, which routes the request through
the remote controller exactly as in the Menasce-Muntz model.  Two opposing
transfers deadlock in the classic way:

    transfer A->B:  lock acct_A (S0) ... lock acct_B (S1)
    transfer B->A:  lock acct_B (S1) ... lock acct_A (S0)

Controllers detect the cycle with the section 6.6 probe computation, abort
a victim, and the workload retries it with backoff; every transfer
eventually commits.

Run:  python examples/distributed_database.py
"""

from __future__ import annotations

from repro._ids import ResourceId, SiteId, TransactionId
from repro.ddb import AbortAboutTransaction, DdbSystem, LockMode
from repro.ddb.transaction import Think, TransactionSpec, acquire

X = LockMode.EXCLUSIVE

ACCOUNTS = {
    ResourceId("acct_alice"): SiteId(0),
    ResourceId("acct_bob"): SiteId(1),
    ResourceId("acct_carol"): SiteId(0),
    ResourceId("acct_dave"): SiteId(1),
}


def transfer(tid: int, home: int, source: str, destination: str) -> TransactionSpec:
    """Lock source, compute the transfer, lock destination, commit."""
    return TransactionSpec(
        tid=TransactionId(tid),
        home=SiteId(home),
        operations=(
            acquire((source, X)),
            Think(1.0),  # compute interest, write journal, ...
            acquire((destination, X)),
            Think(0.5),
        ),
    )


def main() -> None:
    system = DdbSystem(
        n_sites=2, resources=ACCOUNTS, resolution=AbortAboutTransaction()
    )

    def retry_with_backoff(execution, aborted: bool) -> None:
        if aborted:
            delay = 2.0 + 3.0 * int(execution.spec.tid)  # staggered backoff
            print(
                f"t={system.now:6.3f}  T{execution.spec.tid} aborted as deadlock "
                f"victim; retrying in {delay:g}"
            )
            system.restart(execution.spec.tid, delay=delay)

    system.finished_callback = retry_with_backoff

    # Two opposing transfers (the deadlock pair) plus two independent ones.
    system.begin(transfer(1, 0, "acct_alice", "acct_bob"), at=0.0)
    system.begin(transfer(2, 1, "acct_bob", "acct_alice"), at=0.1)
    system.begin(transfer(3, 0, "acct_carol", "acct_dave"), at=0.2)
    system.begin(transfer(4, 1, "acct_dave", "acct_carol"), at=5.0)

    system.run_to_quiescence(max_events=200_000)

    print("\n== detection events ==")
    for declaration in system.declarations:
        print(
            f"t={declaration.time:6.3f}  controller C{declaration.site} declared "
            f"process {declaration.process} deadlocked"
        )

    print("\n== transaction outcomes ==")
    for tid, record in sorted(system.transactions.items()):
        print(
            f"T{tid}: commits={record.commits}  aborts={record.aborts}  "
            f"attempts={record.incarnation}"
        )

    system.assert_no_deadlock_remains()
    assert all(record.commits == 1 for record in system.transactions.values())
    print("\nall transfers committed; no deadlock remains")


if __name__ == "__main__":
    main()
