"""Model-check the probe computation over ALL interleavings.

The simulation tests sample schedules; this example instead enumerates the
*entire* reachable state space of small scripted scenarios using the
pure-functional protocol model (repro.verification.model), mechanically
verifying Theorems 1 and 2 over every possible message interleaving:

* QRP2: in no reachable state does an initiator declare without being on
  an all-black cycle at that very state;
* QRP1: in every terminal state, a computation initiated on a dark cycle
  has declared.

Run:  python examples/exhaustive_verification.py
"""

from __future__ import annotations

from repro.verification.explorer import explore
from repro.verification.model import Initiate, Reply, Request

SCENARIOS = {
    # the minimal deadlock, detected from both sides
    "2-cycle, both initiate": (
        2,
        [Request(0, (1,)), Request(1, (0,)), Initiate(0), Initiate(1)],
    ),
    # the canonical ring
    "3-cycle": (
        3,
        [Request(0, (1,)), Request(1, (2,)), Request(2, (0,)), Initiate(0)],
    ),
    # AND-model: vertex 0 waits on both branches, only one cycles back
    "AND fork, one dark branch": (
        4,
        [
            Request(0, (1, 2)),
            Request(2, (3,)),
            Request(3, (0,)),
            Initiate(0),
        ],
    ),
    # a wait that resolves: initiation must stay silent in all interleavings
    "resolving chain": (
        3,
        [Request(0, (1,)), Initiate(0), Reply(1, 0), Request(0, (2,)), Initiate(0)],
    ),
    # a tail vertex next to a deadlock: blocked forever, but never on a
    # cycle, so it must never declare
    "tail beside a 2-cycle": (
        3,
        [Request(0, (1,)), Request(1, (0,)), Request(2, (0,)), Initiate(2), Initiate(0)],
    ),
}


def main() -> None:
    print(f"{'scenario':<28}{'states':>8}{'terminals':>10}  declared")
    print("-" * 70)
    for label, (n, script) in SCENARIOS.items():
        result = explore(n, script)
        assert result.ok, f"{label}: {result.soundness_failures or result.completeness_failures}"
        declared = sorted(result.ever_declared) or "-"
        print(
            f"{label:<28}{result.states_explored:>8}{result.terminal_states:>10}  {declared}"
        )
    print(
        "\nEvery reachable interleaving of every scenario satisfies QRP1 and "
        "QRP2:\nno phantom is possible, no dark cycle goes undetected."
    )


if __name__ == "__main__":
    main()
