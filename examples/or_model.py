"""The any/all difference: AND-model vs OR-model deadlock.

The paper's introduction separates two worlds: in the *resource (AND)
model* a process needs ALL the resources it requested; in the *message
(OR) model* of its reference [1] a process proceeds after communicating
with ANY ONE of the processes it waits for.  "The any/all difference in
these models results in completely different algorithms."

This example runs the SAME wait topology under both models:

    p0 waits on {p1, p3};  p1 waits on p2;  p2 waits on p0;  p3 is free.

* AND model: p0 needs BOTH p1 and p3.  The branch p0->p1->p2->p0 is a
  dark cycle; p0 is deadlocked even though p3 answers.  The probe
  computation (sections 2-4) detects it.
* OR model: p0 needs ANY of p1, p3.  p3 grants, p0 proceeds, the whole
  chain unwinds: no deadlock, and the query computation stays silent.

Then a genuinely dead OR configuration (a knot: every escape route leads
back into the blocked set) is detected by the communication-model
algorithm -- the "different algorithm" the paper's section 7 calls for.

Run:  python examples/or_model.py
"""

from __future__ import annotations

from repro import BasicSystem
from repro.ormodel import OrSystem


def and_model() -> None:
    system = BasicSystem(n_vertices=4)
    system.schedule_request(0.0, 0, [1, 3])
    system.schedule_request(0.5, 1, [2])
    system.schedule_request(1.0, 2, [0])
    system.run_to_quiescence()
    system.assert_soundness()
    declared = sorted({int(d.vertex) for d in system.declarations})
    print("AND model:  p0 needs ALL of {p1, p3}")
    print(f"  deadlock declared by vertices {declared}")
    print(f"  p0 blocked forever: {system.vertex(0).blocked}")


def or_model_same_topology() -> None:
    system = OrSystem(n_vertices=4)
    system.schedule_request(0.0, 0, [1, 3])
    system.schedule_request(0.5, 1, [2])
    system.schedule_request(1.0, 2, [0])
    system.run_to_quiescence()
    system.assert_soundness()
    print("\nOR model:   p0 needs ANY of {p1, p3}")
    print(f"  declarations: {system.declarations}")
    print(f"  everyone active again: {all(v.active for v in system.vertices.values())}")


def or_model_knot() -> None:
    # p0 waits any{p1, p2}; p1 waits any{p0}; p2 waits any{p0}: every
    # alternative leads back into the blocked set -- a genuine OR deadlock.
    system = OrSystem(n_vertices=3)
    system.schedule_request(0.0, 1, [0])
    system.schedule_request(0.3, 2, [0])
    system.schedule_request(0.6, 0, [1, 2])
    system.run_to_quiescence()
    system.assert_soundness()
    system.assert_completeness()
    declared = sorted({int(d.vertex) for d in system.declarations})
    print("\nOR model:   a knot -- p0 waits any{p1,p2}, both wait any{p0}")
    print(f"  deadlock declared by vertices {declared}")
    queries = system.metrics.counter_value("or.queries.sent")
    replies = system.metrics.counter_value("or.replies.sent")
    print(f"  query/reply traffic: {queries} queries, {replies} replies")


def main() -> None:
    and_model()
    or_model_same_topology()
    or_model_knot()
    print(
        "\nSame wait-for shape, opposite verdicts -- exactly the any/all "
        "difference the paper's\nintroduction draws between the resource "
        "model (this paper) and the message model\n(its reference [1], "
        "implemented here as the follow-up communication-model algorithm)."
    )


if __name__ == "__main__":
    main()
