"""Why "few of these protocols are correct": phantom deadlocks.

The paper's introduction quotes Gligor & Shattuck's 1980 survey.  This
example makes the critique concrete: the same churn-heavy workload runs
under the paper's probe computation and under two 1980-era alternatives
(timeout, centralized snapshot collection).  The probe computation's
declarations are all genuine -- Theorem 2 guarantees it -- while the
alternatives report deadlocks that never existed.

Run:  python examples/phantom_deadlocks.py
"""

from __future__ import annotations

from repro import BasicSystem, ExponentialDelay, ImmediateInitiation, ManualInitiation
from repro.baselines import CentralizedDetector, TimeoutDetector
from repro.workloads.basic_random import RandomRequestWorkload

SEEDS = range(8)
WORKLOAD = dict(mean_think=1.5, max_targets=2, duration=60.0)


def make_system(seed: int, with_probes: bool) -> BasicSystem:
    system = BasicSystem(
        n_vertices=12,
        seed=seed,
        delay_model=ExponentialDelay(mean=1.0),
        service_delay=0.5,
        initiation=ImmediateInitiation() if with_probes else ManualInitiation(),
        strict=False,
    )
    RandomRequestWorkload(system, **WORKLOAD).start()
    return system


def make_ping_pong_system(seed: int, with_probes: bool) -> BasicSystem:
    from repro.workloads.scenarios import schedule_ping_pong

    system = BasicSystem(
        n_vertices=8,
        seed=seed,
        service_delay=0.5,
        initiation=ImmediateInitiation() if with_probes else ManualInitiation(),
        strict=False,
    )
    schedule_ping_pong(system, [(0, 1), (2, 3), (4, 5), (6, 7)], repetitions=10)
    return system


def main() -> None:
    # -- family 1: random workload with real deadlocks plus churn ---------
    probe_true = probe_false = 0
    for seed in SEEDS:
        system = make_system(seed, with_probes=True)
        system.run_to_quiescence(max_events=500_000)
        probe_false += len(system.soundness_violations)
        probe_true += len(system.declarations) - len(system.soundness_violations)

    timeout_true = timeout_false = 0
    for seed in SEEDS:
        system = make_system(seed, with_probes=False)
        timeout = TimeoutDetector(system, window=10.0)
        timeout.start()
        system.run_to_quiescence(max_events=500_000)
        timeout_true += len(timeout.report.true_detections)
        timeout_false += len(timeout.report.false_detections)

    # -- family 2: ping-pong, where NO deadlock ever exists ---------------
    pp_probe_false = 0
    for seed in SEEDS:
        system = make_ping_pong_system(seed, with_probes=True)
        system.run_to_quiescence(max_events=500_000)
        pp_probe_false += len(system.declarations)  # any declaration = phantom

    centralized_false = 0
    for seed in SEEDS:
        system = make_ping_pong_system(seed, with_probes=False)
        centralized = CentralizedDetector(
            system, period=7.0, horizon=80.0, min_delay=0.5, max_delay=3.0
        )
        centralized.start()
        system.run_to_quiescence(max_events=500_000)
        centralized_false += len(centralized.report.detections)

    print(f"{len(list(SEEDS))} seeds per configuration\n")
    print("random workload (real deadlocks + long waits):")
    print(f"  {'probe computation (paper)':<28} genuine={probe_true:<4} phantom=0")
    print(
        f"  {'timeout (W=10)':<28} genuine={timeout_true:<4} "
        f"phantom={timeout_false}"
    )
    print("\nping-pong workload (opposite waits that never coexist -> NO deadlock):")
    print(f"  {'probe computation (paper)':<28} phantom={pp_probe_false}")
    print(f"  {'centralized snapshots':<28} phantom={centralized_false}")
    print(
        "\nTheorem 2 in action: 'blocked a while' (timeout) and 'edges from "
        "different\ninstants' (centralized) both manufacture deadlocks that "
        "never existed;\nthe probe computation's meaningful-probe rule "
        "re-validates every hop, so its\nphantom count is zero on both "
        "workloads."
    )
    assert probe_false == 0 and pp_probe_false == 0


if __name__ == "__main__":
    main()
