"""Quickstart: detect a deadlock in the basic model.

Three processes request actions from one another in a ring:

    p0 --waits-for--> p1 --waits-for--> p2 --waits-for--> p0

Once the ring closes, no process can ever reply (axiom G3: only active
processes reply), so all three are deadlocked.  Each process initiated a
probe computation when it sent its request (the section 4.2 rule); the
probe travelling around the black ring comes back meaningful, and step A1
declares the deadlock.  The WFGD computation of section 5 then spreads
knowledge of the deadlocked edges to every participant.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BasicSystem
from repro.workloads.scenarios import schedule_cycle


def main() -> None:
    system = BasicSystem(n_vertices=3, wfgd_on_declare=True)
    schedule_cycle(system, [0, 1, 2], gap=0.5)
    system.run_to_quiescence()

    print("== declarations (step A1) ==")
    for declaration in system.declarations:
        print(
            f"t={declaration.time:6.3f}  vertex {declaration.vertex} is on a black "
            f"cycle  (computation tag {declaration.tag})"
        )

    print("\n== WFGD knowledge (section 5) ==")
    for i in range(3):
        vertex = system.vertex(i)
        edges = ", ".join(f"{a}->{b}" for a, b in sorted(vertex.wfgd.paths))
        print(f"vertex {i} knows permanent black paths: {edges}")

    # The library verified both theorems while the simulation ran:
    system.assert_soundness()      # QRP2: nobody declared falsely
    system.assert_completeness()   # QRP1: the deadlock was detected
    print("\nsoundness + completeness hold (checked against the global oracle)")

    probes = system.metrics.counter_value("basic.probes.sent")
    print(f"probe messages used: {probes} (bound: one per edge per computation)")


if __name__ == "__main__":
    main()
