"""The probe computation of section 3 (algorithm A0/A1/A2).

Each vertex owns a :class:`ProbeEngine` holding the deadlock-detection
state the paper prescribes:

* a per-initiator record of the **latest** computation tag seen (section
  4.3: "if probe computation (i, n) is initiated, all probe computations
  (i, k) with k < n may be ignored ... every vertex need only keep track of
  one, the latest, probe computation initiated by each vertex"), hence the
  per-vertex state is O(N);
* within the tracked computation, whether this vertex has already sent its
  probes (A2 fires only on the *first* meaningful probe of a computation,
  and a vertex sends at most one probe per outgoing edge per computation).

The engine is deliberately ignorant of the transport: the vertex gives it
local knowledge only -- the set of outgoing edges (P3: existence is locally
known, colour is not) and whether an incoming edge from the probe's sender
is black (P3 again).  That keeps the implementation honest: nothing here
could peek at the global graph even by accident.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro._ids import ProbeTag, VertexId
from repro.basic.messages import Probe


@dataclass
class _ComputationRecord:
    """Per-initiator record: the latest tag seen and whether we propagated."""

    sequence: int
    propagated: bool


class ProbeEngine:
    """Probe-computation state machine for one vertex.

    Parameters
    ----------
    vertex:
        The id of the owning vertex.
    send_probe:
        Callback ``(target, probe)`` used to transmit a probe along the
        outgoing edge to ``target``.
    declare_deadlock:
        Callback ``(tag)`` invoked when step A1 fires: this vertex initiated
        computation ``tag`` and received a meaningful probe for it, so it is
        on a black cycle.
    """

    def __init__(
        self,
        vertex: VertexId,
        send_probe: Callable[[VertexId, Probe], None],
        declare_deadlock: Callable[[ProbeTag], None],
    ) -> None:
        self.vertex = vertex
        self._send_probe = send_probe
        self._declare_deadlock = declare_deadlock
        self._records: dict[int, _ComputationRecord] = {}
        self._next_sequence = 1
        #: Tags of computations this vertex initiated that ended in a
        #: deadlock declaration (A1 fired).
        self.declared: list[ProbeTag] = []

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def tracked_computations(self) -> int:
        """Number of computations currently tracked (bounded by the number
        of distinct initiators ever seen -- the O(N) claim of section 4.3)."""
        return len(self._records)

    @property
    def deadlocked(self) -> bool:
        """True iff this vertex has declared itself on a black cycle."""
        return bool(self.declared)

    def latest_sequence(self, initiator: int) -> int | None:
        record = self._records.get(initiator)
        return record.sequence if record is not None else None

    # ------------------------------------------------------------------
    # A0: initiation
    # ------------------------------------------------------------------

    def next_tag(self) -> ProbeTag:
        """The tag the next :meth:`initiate` call will use (for tracing)."""
        return ProbeTag(initiator=int(self.vertex), sequence=self._next_sequence)

    def initiate(self, outgoing: Iterable[VertexId]) -> ProbeTag:
        """Step A0: start a fresh computation, probing all outgoing edges.

        Returns the new computation's tag.  Calling with no outgoing edges
        is legal and produces a computation that can never come back (an
        active vertex is trivially not deadlocked).
        """
        tag = self.next_tag()
        self._next_sequence += 1
        # The initiator's own record: it has "propagated" by definition of
        # A0, and any meaningful probe it receives for this tag triggers A1.
        self._records[tag.initiator] = _ComputationRecord(
            sequence=tag.sequence, propagated=True
        )
        probe = Probe(tag=tag)
        for target in sorted(outgoing):
            self._send_probe(target, probe)
        return tag

    # ------------------------------------------------------------------
    # A1 / A2: probe receipt
    # ------------------------------------------------------------------

    def on_probe(
        self,
        sender: VertexId,
        probe: Probe,
        incoming_edge_black: bool,
        outgoing: Iterable[VertexId],
    ) -> None:
        """Handle a probe delivered along edge ``(sender, self.vertex)``.

        ``incoming_edge_black`` is the local P3 knowledge: does this vertex
        currently hold an unanswered request from ``sender``?  That is
        precisely "edge (sender, me) exists and is black", i.e. the probe is
        *meaningful*.  ``outgoing`` is the current set of outgoing edges
        (P3: locally known), captured atomically because the simulator runs
        this handler to completion.
        """
        if not incoming_edge_black:
            # Not meaningful: the edge has been whitened/deleted (or the
            # probe raced a request under a broken non-FIFO transport).
            # Silently discarded, exactly as the paper prescribes.
            return

        tag = probe.tag
        record = self._records.get(tag.initiator)
        if record is not None and tag.sequence < record.sequence:
            # Stale computation (section 4.3): (i, k) with k < n is ignored.
            return

        if tag.initiator == int(self.vertex):
            # A1 -- but only for the computation we actually initiated (a
            # stale probe of an older own computation was filtered above,
            # and sequences greater than ours cannot exist), and only for
            # the *first* meaningful probe of that computation.
            if (
                record is not None
                and tag.sequence == record.sequence
                and tag not in self.declared
            ):
                self.declared.append(tag)
                self._declare_deadlock(tag)
            return

        if record is None or tag.sequence > record.sequence:
            record = _ComputationRecord(sequence=tag.sequence, propagated=False)
            self._records[tag.initiator] = record

        if record.propagated:
            # A2 already ran for this computation; at most one probe per
            # outgoing edge per computation.
            return

        record.propagated = True
        for target in sorted(outgoing):
            self._send_probe(target, Probe(tag=tag))
