"""Message types of the basic model.

Three message kinds exist in the underlying computation and the detection
computation (section 2.4): *requests*, *replies*, and *probes*.  Section 5
adds WFGD messages, which carry sets of edges.  All are immutable
dataclasses; the network counts them by type name, which is how benchmarks
separate probe traffic from base traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._ids import ProbeTag, VertexId


@dataclass(frozen=True, slots=True)
class Request:
    """``p_i`` asks ``p_j`` to carry out an action (creates a grey edge)."""

    requester: VertexId


@dataclass(frozen=True, slots=True)
class Reply:
    """``p_j`` tells ``p_i`` the requested action is done (whitens the edge)."""

    replier: VertexId


@dataclass(frozen=True, slots=True)
class Probe:
    """A deadlock-detection probe of computation ``tag`` (section 3.2).

    In the basic model a probe travels along a wait-for edge from the
    sender to the receiver; it carries nothing but its computation tag.
    Meaningfulness is judged entirely at the receiver: the probe is
    meaningful iff the edge it travelled on exists and is black at receipt,
    which by P3 the receiver can decide locally (it knows its incoming
    black edges).
    """

    tag: ProbeTag


@dataclass(frozen=True, slots=True)
class WfgdMessage:
    """A WFGD message: a set of edges on permanent black paths (section 5).

    Sent *against* edge direction: the holder of knowledge about permanent
    black paths from ``v_j`` informs each predecessor ``v_k`` with a black
    edge ``(v_k, v_j)``.  Edges are ``(source, target)`` vertex pairs.
    """

    edges: frozenset[tuple[VertexId, VertexId]]
