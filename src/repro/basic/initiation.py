"""Basic-model adapters onto the scheduling seam (section 4).

The paper decouples *what* a probe computation does (section 3) from
*when* one is started (section 4.2/4.3).  The "when" half lives in
:mod:`repro.core.scheduling` -- transport-neutral policies shared with
the DDB and OR models -- and this module is the thin model adapter: it
translates the basic model's edge lifecycle (``on_edges_added`` /
``on_edge_removed``) into the seam's wait vocabulary and exposes one
vertex as an :class:`~repro.core.scheduling.InitiationSite`.

The historical class names remain the construction API:

* :class:`ImmediateInitiation` -- section 4.2's rule
  (:class:`~repro.core.scheduling.ImmediatePolicy`): a vertex initiates
  a probe computation whenever an outgoing edge is added.
* :class:`DelayedInitiation` -- section 4.3's optimisation
  (:class:`~repro.core.scheduling.DelayedPolicy`): initiate only if an
  outgoing edge has existed *continuously* for ``T`` time units;
  experiment E5 sweeps this parameter and E10 closes the loop.
* :class:`ManualInitiation` -- no automatic initiation; scenario tests
  call :meth:`VertexProcess.initiate_probe_computation` directly.

Registry-driven callers (sweep cells, ``--policy`` flags) resolve any
registered policy -- including ``adaptive`` -- via
:func:`from_policy_spec`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING

from repro._ids import VertexId
from repro.core import scheduling
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.basic.vertex import VertexProcess
    from repro.core.transport import NodeContext


class InitiationPolicy:
    """Interface: notified of edge additions/removals at a vertex."""

    def on_edges_added(self, vertex: "VertexProcess", targets: Iterable[VertexId]) -> None:
        """Called after ``vertex`` created grey edges to ``targets``."""
        raise NotImplementedError

    def on_edge_removed(self, vertex: "VertexProcess", target: VertexId) -> None:
        """Called after the edge ``(vertex, target)`` was deleted (G4)."""
        raise NotImplementedError


class _VertexSite:
    """One basic vertex, in the seam's site vocabulary.

    Subjects are the wait *targets*: ``(vertex_id, target)`` identifies
    one outgoing edge, and initiating "about" any subject starts one
    probe computation at the vertex (A0 probes all outgoing edges).
    """

    __slots__ = ("vertex",)

    def __init__(self, vertex: "VertexProcess") -> None:
        self.vertex = vertex

    @property
    def ctx(self) -> "NodeContext":
        return self.vertex.ctx

    @property
    def site_key(self) -> Hashable:
        return self.vertex.vertex_id

    def initiate(self, subject: Hashable) -> None:
        self.vertex.initiate_probe_computation()

    def is_waiting(self, subject: Hashable) -> bool:
        return subject in self.vertex.pending_out

    def timer_name(self, subject: Hashable) -> str:
        return f"T-timer {(self.vertex.vertex_id, subject)}"

    def note_avoided(self) -> None:
        self.vertex.ctx.counter("basic.computations.avoided").increment()

    def scan(self, optimized: bool) -> None:
        raise ConfigurationError(
            "the basic model has no controller scans; the 'periodic' policy "
            "drives DDB controllers only"
        )

    def scan_timer_name(self) -> str:
        raise ConfigurationError(
            "the basic model has no controller scans; the 'periodic' policy "
            "drives DDB controllers only"
        )


class PolicyInitiation(InitiationPolicy):
    """Drive basic vertices from a core scheduling policy instance."""

    def __init__(self, policy: scheduling.InitiationPolicy) -> None:
        self.policy = policy

    def on_edges_added(self, vertex: "VertexProcess", targets: Iterable[VertexId]) -> None:
        self.policy.on_waits_started(_VertexSite(vertex), tuple(targets))

    def on_edge_removed(self, vertex: "VertexProcess", target: VertexId) -> None:
        self.policy.on_wait_resolved(_VertexSite(vertex), target)


class ManualInitiation(PolicyInitiation):
    """Never initiates; for scripted tests and exhaustive exploration."""

    def __init__(self) -> None:
        super().__init__(scheduling.ManualPolicy())


class ImmediateInitiation(PolicyInitiation):
    """Section 4.2: initiate whenever an outgoing edge is added.

    A batch of simultaneously created edges (one AND-request for several
    resources) triggers a single computation -- A0 probes *all* outgoing
    edges anyway, so per-edge initiation within one batch would only clone
    identical computations.
    """

    def __init__(self) -> None:
        super().__init__(scheduling.ImmediatePolicy())


class DelayedInitiation(PolicyInitiation):
    """Section 4.3: initiate after an edge survives for ``T`` time units.

    One timer per outgoing edge; deleting the edge cancels its timer.  When
    a timer fires and the edge still exists, a probe computation starts.
    The basic tradeoff (quoted from the paper): "if T is too small too many
    probe computations are initiated and if T is too large the time taken
    to detect deadlock (which is at least T) is too large."
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(scheduling.DelayedPolicy(timeout))

    @property
    def timeout(self) -> float:
        delayed = self.policy
        assert isinstance(delayed, scheduling.DelayedPolicy)
        return delayed.timeout


def from_policy_spec(spec: scheduling.PolicySpec) -> PolicyInitiation:
    """Resolve a registered policy spec into a basic-model initiation."""
    return PolicyInitiation(scheduling.build_policy(spec, model="basic"))
