"""Initiation policies for probe computations (section 4).

The paper decouples *what* a probe computation does (section 3) from *when*
one is started (section 4.2/4.3).  Three policies are provided:

* :class:`ImmediateInitiation` -- section 4.2's rule: a vertex initiates a
  probe computation whenever an outgoing edge is added.  Guarantees that if
  the new edge closes a dark cycle, its creator detects the deadlock.
* :class:`DelayedInitiation` -- section 4.3's optimisation: initiate only
  if an outgoing edge has existed *continuously* for ``T`` time units.  If
  the edge is deleted before the timer fires, the computation is avoided.
  T trades message volume against detection latency (which is at least T);
  experiment E5 sweeps this parameter.
* :class:`ManualInitiation` -- no automatic initiation; scenario tests call
  :meth:`VertexProcess.initiate_probe_computation` directly.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro._ids import VertexId
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.basic.vertex import VertexProcess
    from repro.core.transport import TimerHandle


class InitiationPolicy:
    """Interface: notified of edge additions/removals at a vertex."""

    def on_edges_added(self, vertex: "VertexProcess", targets: Iterable[VertexId]) -> None:
        """Called after ``vertex`` created grey edges to ``targets``."""
        raise NotImplementedError

    def on_edge_removed(self, vertex: "VertexProcess", target: VertexId) -> None:
        """Called after the edge ``(vertex, target)`` was deleted (G4)."""
        raise NotImplementedError


class ManualInitiation(InitiationPolicy):
    """Never initiates; for scripted tests and exhaustive exploration."""

    def on_edges_added(self, vertex: "VertexProcess", targets: Iterable[VertexId]) -> None:
        pass

    def on_edge_removed(self, vertex: "VertexProcess", target: VertexId) -> None:
        pass


class ImmediateInitiation(InitiationPolicy):
    """Section 4.2: initiate whenever an outgoing edge is added.

    A batch of simultaneously created edges (one AND-request for several
    resources) triggers a single computation -- A0 probes *all* outgoing
    edges anyway, so per-edge initiation within one batch would only clone
    identical computations.
    """

    def on_edges_added(self, vertex: "VertexProcess", targets: Iterable[VertexId]) -> None:
        vertex.initiate_probe_computation()

    def on_edge_removed(self, vertex: "VertexProcess", target: VertexId) -> None:
        pass


class DelayedInitiation(InitiationPolicy):
    """Section 4.3: initiate after an edge survives for ``T`` time units.

    One timer per outgoing edge; deleting the edge cancels its timer.  When
    a timer fires and the edge still exists, a probe computation starts.
    The basic tradeoff (quoted from the paper): "if T is too small too many
    probe computations are initiated and if T is too large the time taken
    to detect deadlock (which is at least T) is too large."
    """

    def __init__(self, timeout: float) -> None:
        if timeout < 0:
            raise ConfigurationError(f"T must be non-negative, got {timeout}")
        self.timeout = timeout
        self._timers: dict[tuple[VertexId, VertexId], "TimerHandle"] = {}

    def on_edges_added(self, vertex: "VertexProcess", targets: Iterable[VertexId]) -> None:
        for target in targets:
            key = (vertex.vertex_id, target)

            def fire(
                vertex: "VertexProcess" = vertex,
                key: tuple[VertexId, VertexId] = key,
            ) -> None:
                self._timers.pop(key, None)
                # The timer is cancelled on deletion, so the edge existed
                # continuously since creation; re-check defensively anyway.
                if key[1] in vertex.pending_out:
                    vertex.initiate_probe_computation()

            self._timers[key] = vertex.ctx.set_timer(
                self.timeout, fire, name=f"T-timer {key}"
            )

    def on_edge_removed(self, vertex: "VertexProcess", target: VertexId) -> None:
        handle = self._timers.pop((vertex.vertex_id, target), None)
        if handle is not None:
            handle.cancel()
            vertex.ctx.counter("basic.computations.avoided").increment()
