"""The WFGD computation of section 5.

After a probe computation's initiator declares that it is on a black cycle,
the WFGD ("wait-for graph dissemination") computation propagates knowledge
of the deadlocked portion of the graph *against* edge direction, so that
every vertex with a permanent black path leading from it learns all such
paths -- the information needed to break the deadlock.

Protocol (verbatim from the paper):

* Each vertex ``v_j`` keeps ``S_j``, the set of edges it knows to lie on
  permanent black paths leading from ``v_j``; initially empty.
* The initiator ``v_i``, having declared a black cycle, sends
  ``M = {(v_j, v_i)}`` to every ``v_j`` with a black edge ``(v_j, v_i)``.
* On receiving ``M``, ``v_j`` sets ``S_j := S_j ∪ M`` and thereafter sends
  ``M' = {(v_k, v_j)} ∪ S_j`` to every ``v_k`` with black edge
  ``(v_k, v_j)`` -- unless it already sent that exact message to ``v_k``.

Termination: a vertex never sends the same edge set twice to the same
target, and there are finitely many edge sets over the (finite) deadlocked
region, so the computation ceases in finite time.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro._ids import VertexId
from repro.basic.graph import Edge
from repro.basic.messages import WfgdMessage


class WfgdParticipant:
    """Per-vertex WFGD state and message logic.

    Parameters
    ----------
    vertex:
        Owning vertex id.
    send:
        Callback ``(target, message)`` transmitting a :class:`WfgdMessage`.
    incoming_black:
        Zero-argument callable returning the current set of predecessors
        with a black edge into this vertex (local P3 knowledge: exactly the
        requests received and not yet replied to).
    """

    def __init__(
        self,
        vertex: VertexId,
        send: Callable[[VertexId, WfgdMessage], None],
        incoming_black: Callable[[], set[VertexId]],
    ) -> None:
        self.vertex = vertex
        self._send = send
        self._incoming_black = incoming_black
        #: ``S_j``: known edges on permanent black paths leading from here.
        self.paths: set[Edge] = set()
        self._sent: dict[VertexId, set[frozenset[Edge]]] = {}
        self._started = False

    @property
    def knows_deadlocked(self) -> bool:
        """True once this vertex has learned of a permanent black path from
        it (section 4.2: the detecting vertex informs the others)."""
        return self._started or bool(self.paths)

    def start_as_initiator(self) -> None:
        """Initiator rule: after declaring a black cycle, seed predecessors.

        Idempotent -- a vertex that declares on several of its own
        computations seeds only once (re-seeding would send duplicate
        messages the paper's termination argument assumes away).
        """
        if self._started:
            return
        self._started = True
        for predecessor in sorted(self._incoming_black()):
            message = WfgdMessage(edges=frozenset({(predecessor, self.vertex)}))
            self._transmit(predecessor, message)

    def on_message(self, message: WfgdMessage) -> None:
        """Receiver rule: absorb M into S, then push upstream."""
        self.paths |= message.edges
        for predecessor in sorted(self._incoming_black()):
            upstream = WfgdMessage(
                edges=frozenset({(predecessor, self.vertex)}) | frozenset(self.paths)
            )
            self._transmit(predecessor, upstream)

    def on_new_predecessor(self, predecessor: VertexId) -> None:
        """Persistent-send rule: a *new* incoming black edge appeared.

        The paper says a vertex "thereafter sends" to every vertex with a
        black edge into it -- a standing obligation, not a one-shot sweep.
        Without this, a vertex that starts waiting into the deadlocked
        region *after* the WFGD wave passed would never learn it is
        deadlocked (hypothesis found exactly that history).  If this vertex
        knows itself permanently blocked (it declared, or it has permanent
        black paths), the new edge into it is permanently black too, so the
        new predecessor is informed immediately.
        """
        if not self.knows_deadlocked:
            return
        message = WfgdMessage(
            edges=frozenset({(predecessor, self.vertex)}) | frozenset(self.paths)
        )
        self._transmit(predecessor, message)

    def _transmit(self, target: VertexId, message: WfgdMessage) -> None:
        """Send unless this exact edge set already went to ``target``."""
        history = self._sent.setdefault(target, set())
        if message.edges in history:
            return
        history.add(message.edges)
        self._send(target, message)


def reachable_edge_closure(edges: Iterable[Edge], start: VertexId) -> set[Edge]:
    """Edges reachable from ``start`` by following the given edge set.

    Utility used by tests to state the WFGD postcondition: the fixed point
    of ``S_start`` equals the closure of the permanent black edges reachable
    from ``start``.
    """
    by_source: dict[VertexId, list[Edge]] = {}
    for edge in edges:
        by_source.setdefault(edge[0], []).append(edge)
    result: set[Edge] = set()
    stack = [start]
    seen: set[VertexId] = set()
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for edge in by_source.get(current, ()):
            result.add(edge)
            stack.append(edge[1])
    return result
