"""System wrapper for the basic model: wiring plus on-line verification.

:class:`BasicSystem` assembles a simulator, a FIFO network, ``n`` vertex
processes, the oracle graph, and an initiation policy, and installs trace
subscribers that verify the paper's two theorems while the simulation runs:

* **Soundness (QRP2 / Theorem 2):** at the instant any vertex declares "I am
  on a black cycle", the oracle is consulted; if the vertex is not on an
  all-black cycle at that exact moment, a violation is recorded (and raised
  in strict mode).  Across the entire test suite and all benchmarks this
  list stays empty -- the paper's "deadlocks will not be reported falsely".
* **Completeness (QRP1 / Theorem 1 + section 4.2 initiation rule):** the
  system records the instant each vertex first joins a dark cycle; at
  quiescence, :meth:`assert_completeness` checks that every strongly
  connected component of the dark subgraph that contains a cycle also
  contains at least one vertex that declared.

It also keeps the per-computation probe counts that experiment E3 reads.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro._algo import cyclic_sccs
from repro._ids import ProbeTag, VertexId
from repro.basic.graph import EdgeColor, WaitForGraph
from repro.basic.initiation import ImmediateInitiation, InitiationPolicy
from repro.basic.vertex import VertexProcess
from repro.errors import ConfigurationError
from repro.sim import categories
from repro.sim.network import DelayModel, Network
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class Declaration:
    """One deadlock declaration (step A1) with its soundness verdict."""

    time: float
    vertex: VertexId
    tag: ProbeTag
    on_black_cycle: bool


@dataclass
class CompletenessReport:
    """Result of the quiescence-time completeness check."""

    deadlocked_vertices: set[VertexId]
    declared_vertices: set[VertexId]
    undetected_components: list[set[VertexId]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.undetected_components


class BasicSystem:
    """A ready-to-run basic-model system.

    Parameters
    ----------
    n_vertices:
        Number of processes; ids are ``0 .. n_vertices - 1``.
    seed:
        Root seed for all randomness.
    delay_model:
        Network delay distribution (default: fixed delay 1.0).
    service_delay:
        Delay before an active vertex replies to a pending request.
    auto_reply:
        Whether vertices service requests automatically.
    initiation:
        The initiation policy shared by all vertices (default:
        :class:`ImmediateInitiation`, the section 4.2 rule).
    wfgd_on_declare:
        Start the section 5 WFGD computation automatically whenever a
        vertex declares deadlock.
    strict:
        Raise immediately on a soundness violation instead of recording it.
    trace:
        Record the full structured trace (disable for big sweeps).
    fifo:
        Channel FIFO guarantee; disable only in ablation tests.
    """

    def __init__(
        self,
        n_vertices: int,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        service_delay: float = 1.0,
        auto_reply: bool = True,
        initiation: InitiationPolicy | None = None,
        wfgd_on_declare: bool = False,
        strict: bool = True,
        trace: bool = True,
        fifo: bool = True,
    ) -> None:
        if n_vertices < 1:
            raise ConfigurationError(f"need at least one vertex, got {n_vertices}")
        self.simulator = Simulator(seed=seed, trace=trace)
        self.network = Network(self.simulator, delay_model=delay_model, fifo=fifo)
        self.oracle = WaitForGraph()
        self.initiation = initiation if initiation is not None else ImmediateInitiation()
        self.wfgd_on_declare = wfgd_on_declare
        self.strict = strict
        self.declarations: list[Declaration] = []
        self.soundness_violations: list[Declaration] = []
        #: Virtual time at which each vertex first joined a dark cycle.
        self.deadlock_formed_at: dict[VertexId, float] = {}
        #: Probes sent per computation tag (experiment E3).
        self.probes_per_computation: dict[ProbeTag, int] = {}

        self.vertices: dict[VertexId, VertexProcess] = {}
        for i in range(n_vertices):
            vid = VertexId(i)
            vertex = VertexProcess(
                vertex_id=vid,
                simulator=self.simulator,
                oracle=self.oracle,
                service_delay=service_delay,
                auto_reply=auto_reply,
                on_declare=self._handle_declare,
            )
            vertex.initiation = self.initiation
            self.network.register(vertex)
            self.vertices[vid] = vertex

        # Category-scoped subscription: with trace=False every *other*
        # category then skips TraceEvent construction entirely (the
        # tracer's zero-cost path), which is most of the win of running
        # big sweeps untraced.
        self.simulator.tracer.subscribe(
            self._observe,
            categories=(categories.BASIC_REQUEST_SENT, categories.BASIC_PROBE_SENT),
        )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def vertex(self, i: int) -> VertexProcess:
        return self.vertices[VertexId(i)]

    @property
    def now(self) -> float:
        return self.simulator.now

    @property
    def metrics(self):
        return self.simulator.metrics

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def request(self, source: int, targets: Iterable[int]) -> None:
        """Issue a request batch immediately (only valid at time 0 or from
        inside a scheduled event)."""
        self.vertex(source).request([VertexId(t) for t in targets])

    def schedule_request(self, time: float, source: int, targets: Sequence[int]) -> None:
        """Schedule a request batch at absolute virtual ``time``."""
        frozen = [VertexId(t) for t in targets]
        self.simulator.schedule_at(
            time,
            lambda: self.vertex(source).request(frozen),
            name=f"request v{source}->{list(targets)}",
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        self.simulator.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        self.simulator.run_to_quiescence(max_events=max_events)

    # ------------------------------------------------------------------
    # On-line verification
    # ------------------------------------------------------------------

    def _handle_declare(self, vertex: VertexProcess, tag: ProbeTag) -> None:
        on_black = self.oracle.is_on_black_cycle(vertex.vertex_id)
        declaration = Declaration(
            time=self.simulator.now,
            vertex=vertex.vertex_id,
            tag=tag,
            on_black_cycle=on_black,
        )
        self.declarations.append(declaration)
        if not on_black:
            self.soundness_violations.append(declaration)
            if self.strict:
                raise AssertionError(
                    f"QRP2 violated: vertex {vertex.vertex_id} declared deadlock at "
                    f"t={self.simulator.now} but is not on a black cycle"
                )
        formed = self.deadlock_formed_at.get(vertex.vertex_id)
        if formed is not None:
            self.simulator.metrics.histogram("basic.detection.latency").record(
                self.simulator.now - formed
            )
        if self.wfgd_on_declare:
            vertex.wfgd.start_as_initiator()

    def _observe(self, event: TraceEvent) -> None:
        if event.category == categories.BASIC_REQUEST_SENT:
            source = event["source"]
            if self.oracle.is_on_dark_cycle(source):
                cycle = self.oracle.find_dark_cycle(source) or [source]
                for member in cycle:
                    self.deadlock_formed_at.setdefault(member, event.time)
        elif event.category == categories.BASIC_PROBE_SENT:
            tag = event["tag"]
            self.probes_per_computation[tag] = self.probes_per_computation.get(tag, 0) + 1

    # ------------------------------------------------------------------
    # Quiescence-time checks
    # ------------------------------------------------------------------

    def _dark_sccs(self) -> list[set[VertexId]]:
        """Strongly connected components of the dark subgraph that contain a
        cycle (size > 1; the graph has no self-loops)."""
        dark_out: dict[VertexId, list[VertexId]] = {}
        for (source, target), color in self.oracle.edges():
            if color is not EdgeColor.WHITE:
                dark_out.setdefault(source, []).append(target)
        return cyclic_sccs(dark_out)

    def completeness_report(self) -> CompletenessReport:
        """Check Theorem 1 + the section 4.2 initiation rule at quiescence.

        Every cyclic SCC of the dark subgraph must contain at least one
        vertex that declared deadlock.
        """
        declared = {d.vertex for d in self.declarations}
        deadlocked = self.oracle.vertices_on_dark_cycles()
        report = CompletenessReport(
            deadlocked_vertices=deadlocked, declared_vertices=declared
        )
        for component in self._dark_sccs():
            if not component & declared:
                report.undetected_components.append(component)
        return report

    def assert_completeness(self) -> None:
        report = self.completeness_report()
        if not report.complete:
            raise AssertionError(
                f"QRP1 violated: dark components {report.undetected_components} "
                f"contain no vertex that declared deadlock"
            )

    def assert_soundness(self) -> None:
        if self.soundness_violations:
            raise AssertionError(
                f"QRP2 violated by declarations: {self.soundness_violations}"
            )

    def __repr__(self) -> str:
        return (
            f"BasicSystem(n={len(self.vertices)}, t={self.now}, "
            f"declared={len(self.declarations)})"
        )
