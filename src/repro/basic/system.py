"""System wrapper for the basic model: wiring plus on-line verification.

:class:`BasicSystem` assembles a simulator, a FIFO network, ``n`` vertex
processes, the oracle graph, and an initiation policy, and installs trace
subscribers that verify the paper's two theorems while the simulation runs:

* **Soundness (QRP2 / Theorem 2):** at the instant any vertex declares "I am
  on a black cycle", the oracle is consulted; if the vertex is not on an
  all-black cycle at that exact moment, a violation is recorded (and raised
  in strict mode).  Across the entire test suite and all benchmarks this
  list stays empty -- the paper's "deadlocks will not be reported falsely".
* **Completeness (QRP1 / Theorem 1 + section 4.2 initiation rule):** the
  system records the instant each vertex first joins a dark cycle; at
  quiescence, :meth:`assert_completeness` checks that every strongly
  connected component of the dark subgraph that contains a cycle also
  contains at least one vertex that declared.

The verification bookkeeping itself (declaration log, completeness check,
probe accounting) lives in :mod:`repro.core.engine`, shared with the other
detector variants; this wrapper contributes the basic-model oracle queries
and message wiring.  It also keeps the per-computation probe counts that
experiment E3 reads.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro._ids import ProbeTag, VertexId
from repro.basic.graph import EdgeColor, WaitForGraph
from repro.basic.initiation import ImmediateInitiation, InitiationPolicy
from repro.basic.vertex import VertexProcess
from repro.core.assembly import build_runtime, require_fleet
from repro.core.transport import Transport, TransportFactory
from repro.core.engine import (
    CompletenessReport,
    DeclarationLog,
    ProbeAccounting,
    completeness_report,
    dark_components,
)
from repro.sim import categories
from repro.sim.network import DelayModel
from repro.sim.trace import TraceEvent

__all__ = ["BasicSystem", "CompletenessReport", "Declaration"]


@dataclass(frozen=True)
class Declaration:
    """One deadlock declaration (step A1) with its soundness verdict."""

    time: float
    vertex: VertexId
    tag: ProbeTag
    on_black_cycle: bool


class BasicSystem:
    """A ready-to-run basic-model system.

    Parameters
    ----------
    n_vertices:
        Number of processes; ids are ``0 .. n_vertices - 1``.
    seed:
        Root seed for all randomness.
    delay_model:
        Network delay distribution (default: fixed delay 1.0).
    service_delay:
        Delay before an active vertex replies to a pending request.
    auto_reply:
        Whether vertices service requests automatically.
    initiation:
        The initiation policy shared by all vertices (default:
        :class:`ImmediateInitiation`, the section 4.2 rule).
    wfgd_on_declare:
        Start the section 5 WFGD computation automatically whenever a
        vertex declares deadlock.
    strict:
        Raise immediately on a soundness violation instead of recording it.
    trace:
        Record the full structured trace (disable for big sweeps).
    fifo:
        Channel FIFO guarantee; disable only in ablation tests.
    transport:
        Runtime backend (instance or factory); ``None`` selects the
        deterministic simulator.  See :func:`repro.core.assembly.build_runtime`.
    """

    def __init__(
        self,
        n_vertices: int,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        service_delay: float = 1.0,
        auto_reply: bool = True,
        initiation: InitiationPolicy | None = None,
        wfgd_on_declare: bool = False,
        strict: bool = True,
        trace: bool = True,
        fifo: bool = True,
        transport: Transport | TransportFactory | None = None,
    ) -> None:
        require_fleet(n_vertices, "vertex")
        runtime = build_runtime(
            seed=seed, delay_model=delay_model, trace=trace, fifo=fifo,
            transport=transport,
        )
        self.transport = runtime.transport
        self.simulator = runtime.simulator
        self.network = runtime.network
        self.oracle = WaitForGraph()
        self.initiation = initiation if initiation is not None else ImmediateInitiation()
        self.wfgd_on_declare = wfgd_on_declare
        self._log: DeclarationLog[Declaration] = DeclarationLog(strict=strict)
        #: every declaration, sound or not (alias into the shared log).
        self.declarations = self._log.declarations
        self.soundness_violations = self._log.violations
        #: Virtual time at which each vertex first joined a dark cycle.
        self.deadlock_formed_at: dict[VertexId, float] = {}
        self._probes = ProbeAccounting()
        #: Probes sent per computation tag (experiment E3).
        self.probes_per_computation = self._probes.per_computation

        self.vertices: dict[VertexId, VertexProcess] = {}
        for i in range(n_vertices):
            vid = VertexId(i)
            vertex = VertexProcess(
                vertex_id=vid,
                oracle=self.oracle,
                service_delay=service_delay,
                auto_reply=auto_reply,
                on_declare=self._handle_declare,
            )
            vertex.initiation = self.initiation
            self.transport.register(vertex)
            self.vertices[vid] = vertex

        # Category-scoped subscription: with trace=False every *other*
        # category then skips TraceEvent construction entirely (the
        # tracer's zero-cost path), which is most of the win of running
        # big sweeps untraced.
        self.transport.tracer.subscribe(
            self._observe,
            categories=(categories.BASIC_REQUEST_SENT, categories.BASIC_PROBE_SENT),
        )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def vertex(self, i: int) -> VertexProcess:
        return self.vertices[VertexId(i)]

    @property
    def now(self) -> float:
        return self.transport.now

    @property
    def metrics(self):
        return self.transport.metrics

    @property
    def strict(self) -> bool:
        return self._log.strict

    @strict.setter
    def strict(self, value: bool) -> None:
        self._log.strict = value

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def request(self, source: int, targets: Iterable[int]) -> None:
        """Issue a request batch immediately (only valid at time 0 or from
        inside a scheduled event)."""
        self.vertex(source).request([VertexId(t) for t in targets])

    def schedule_request(self, time: float, source: int, targets: Sequence[int]) -> None:
        """Schedule a request batch at absolute virtual ``time``."""
        frozen = [VertexId(t) for t in targets]
        self.transport.schedule_at(
            time,
            lambda: self.vertex(source).request(frozen),
            name=f"request v{source}->{list(targets)}",
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        self.transport.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        self.transport.run_to_quiescence(max_events=max_events)

    # ------------------------------------------------------------------
    # On-line verification
    # ------------------------------------------------------------------

    def _handle_declare(self, vertex: VertexProcess, tag: ProbeTag) -> None:
        on_black = self.oracle.is_on_black_cycle(vertex.vertex_id)
        declaration = Declaration(
            time=self.transport.now,
            vertex=vertex.vertex_id,
            tag=tag,
            on_black_cycle=on_black,
        )
        self._log.record(
            declaration,
            sound=on_black,
            complaint=(
                f"QRP2 violated: vertex {vertex.vertex_id} declared deadlock at "
                f"t={self.transport.now} but is not on a black cycle"
            ),
        )
        formed = self.deadlock_formed_at.get(vertex.vertex_id)
        if formed is not None:
            self.transport.metrics.histogram("basic.detection.latency").record(
                self.transport.now - formed
            )
        if self.wfgd_on_declare:
            vertex.wfgd.start_as_initiator()

    def _observe(self, event: TraceEvent) -> None:
        if event.category == categories.BASIC_REQUEST_SENT:
            source = event["source"]
            if self.oracle.is_on_dark_cycle(source):
                cycle = self.oracle.find_dark_cycle(source) or [source]
                for member in cycle:
                    self.deadlock_formed_at.setdefault(member, event.time)
        elif event.category == categories.BASIC_PROBE_SENT:
            self._probes.count(event["tag"])

    # ------------------------------------------------------------------
    # Quiescence-time checks
    # ------------------------------------------------------------------

    def _dark_edges(self) -> list[tuple[VertexId, VertexId]]:
        return [
            edge
            for edge, color in self.oracle.edges()
            if color is not EdgeColor.WHITE
        ]

    def _dark_sccs(self) -> list[set[VertexId]]:
        """Strongly connected components of the dark subgraph that contain a
        cycle (size > 1; the graph has no self-loops)."""
        return dark_components(self._dark_edges())

    def completeness_report(self) -> CompletenessReport[VertexId]:
        """Check Theorem 1 + the section 4.2 initiation rule at quiescence.

        Every cyclic SCC of the dark subgraph must contain at least one
        vertex that declared deadlock.
        """
        return completeness_report(
            self._dark_edges(),
            declared={d.vertex for d in self.declarations},
            deadlocked=self.oracle.vertices_on_dark_cycles(),
        )

    def assert_completeness(self) -> None:
        report = self.completeness_report()
        if not report.complete:
            raise AssertionError(
                f"QRP1 violated: dark components {report.undetected_components} "
                f"contain no vertex that declared deadlock"
            )

    def assert_soundness(self) -> None:
        self._log.assert_sound("QRP2 violated by declarations: ")

    def __repr__(self) -> str:
        return (
            f"BasicSystem(n={len(self.vertices)}, t={self.now}, "
            f"declared={len(self.declarations)})"
        )
