"""The paper's *basic model* (sections 2-5).

A distributed system of processes exchanging requests and replies, whose
global state is a coloured wait-for graph.  This package implements:

* the coloured graph with graph axioms G1-G4 enforced
  (:mod:`repro.basic.graph`),
* vertex processes with AND-model blocking behaviour
  (:mod:`repro.basic.vertex`),
* the probe computation A0/A1/A2 with ``(i, n)`` tags -- the paper's core
  contribution (:mod:`repro.basic.detector`),
* initiation policies, immediate and delayed-T, from section 4
  (:mod:`repro.basic.initiation`),
* the WFGD computation of section 5 (:mod:`repro.basic.wfgd`),
* :class:`~repro.basic.system.BasicSystem`, which wires everything together
  with the oracle for verification.
"""

from repro.basic.graph import Edge, EdgeColor, WaitForGraph
from repro.basic.initiation import (
    DelayedInitiation,
    ImmediateInitiation,
    InitiationPolicy,
    ManualInitiation,
)
from repro.basic.messages import Probe, Reply, Request, WfgdMessage
from repro.basic.system import BasicSystem
from repro.basic.vertex import VertexProcess

__all__ = [
    "BasicSystem",
    "DelayedInitiation",
    "Edge",
    "EdgeColor",
    "ImmediateInitiation",
    "InitiationPolicy",
    "ManualInitiation",
    "Probe",
    "Reply",
    "Request",
    "VertexProcess",
    "WaitForGraph",
    "WfgdMessage",
]
