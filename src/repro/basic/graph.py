"""The coloured wait-for graph and graph axioms G1-G4.

This module implements the *global* graph of section 2: the omniscient view
that the paper reasons about and that no process in the system can observe
directly.  The library uses it two ways:

1. as the **oracle** for verification -- every simulated protocol action
   updates the oracle graph, and the axioms G1-G4 are enforced on each
   transition, so an illegal underlying computation fails fast with
   :class:`~repro.errors.AxiomViolation`;
2. as the **ground truth** for soundness/completeness checks -- "is vertex
   v on a dark cycle right now?" is answered here and compared against what
   the distributed algorithm declares.

Edge colours (section 2.2):

* **grey** -- the request is in flight (G1 creates grey edges),
* **black** -- the request was received, the reply was not yet sent (G2),
* **white** -- the reply is in flight (G3; only an *active* target, one
  with no outgoing edges, may whiten an edge),
* deletion -- the reply was received (G4).

A *dark* edge is grey or black.  A **dark cycle** -- a cycle all of whose
edges are dark -- persists forever (no edge on it can ever be whitened),
and is exactly the paper's notion of deadlock.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator

from repro._ids import VertexId
from repro.errors import AxiomViolation

Edge = tuple[VertexId, VertexId]


class EdgeColor(enum.Enum):
    """Colour of a wait-for edge (section 2.2)."""

    GREY = "grey"
    BLACK = "black"
    WHITE = "white"

    @property
    def is_dark(self) -> bool:
        """Grey and black edges are dark; dark cycles persist forever."""
        return self is not EdgeColor.WHITE


class WaitForGraph:
    """The global coloured wait-for graph with axiom-checked transitions.

    Vertices exist implicitly (the paper assumes vertices for unborn and
    terminated processes, so vertex creation/deletion never needs to be
    modelled); an edge carries exactly one colour.
    """

    def __init__(self) -> None:
        self._color: dict[Edge, EdgeColor] = {}
        self._out: dict[VertexId, set[VertexId]] = {}
        self._in: dict[VertexId, set[VertexId]] = {}

    # ------------------------------------------------------------------
    # Axiom-checked transitions (G1-G4)
    # ------------------------------------------------------------------

    def create_edge(self, source: VertexId, target: VertexId) -> None:
        """G1: create a grey edge ``(source, target)``; it must not exist."""
        edge = (source, target)
        if edge in self._color:
            raise AxiomViolation(
                "G1", f"edge {edge} already exists with colour {self._color[edge].value}"
            )
        if source == target:
            raise AxiomViolation("G1", f"self-edge {edge} is not a wait-for relation")
        self._color[edge] = EdgeColor.GREY
        self._out.setdefault(source, set()).add(target)
        self._in.setdefault(target, set()).add(source)

    def blacken(self, source: VertexId, target: VertexId) -> None:
        """G2: a grey edge turns black (the request was received)."""
        self._expect(source, target, EdgeColor.GREY, axiom="G2")
        self._color[(source, target)] = EdgeColor.BLACK

    def whiten(self, source: VertexId, target: VertexId) -> None:
        """G3: a black edge turns white; ``target`` must have no outgoing
        edges (only active processes may reply)."""
        self._expect(source, target, EdgeColor.BLACK, axiom="G3")
        if self._out.get(target):
            raise AxiomViolation(
                "G3",
                f"cannot whiten {(source, target)}: target {target} has outgoing "
                f"edges {sorted(self._out[target])} (only active processes reply)",
            )
        self._color[(source, target)] = EdgeColor.WHITE

    def delete_edge(self, source: VertexId, target: VertexId) -> None:
        """G4: a white edge disappears (the reply was received)."""
        self._expect(source, target, EdgeColor.WHITE, axiom="G4")
        del self._color[(source, target)]
        self._out[source].discard(target)
        self._in[target].discard(source)

    def _expect(
        self, source: VertexId, target: VertexId, color: EdgeColor, axiom: str
    ) -> None:
        actual = self._color.get((source, target))
        if actual is None:
            raise AxiomViolation(axiom, f"edge {(source, target)} does not exist")
        if actual is not color:
            raise AxiomViolation(
                axiom,
                f"edge {(source, target)} is {actual.value}, expected {color.value}",
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def color(self, source: VertexId, target: VertexId) -> EdgeColor | None:
        """Colour of an edge, or ``None`` if it does not exist."""
        return self._color.get((source, target))

    def has_edge(self, source: VertexId, target: VertexId) -> bool:
        return (source, target) in self._color

    def successors(self, vertex: VertexId) -> set[VertexId]:
        """Targets of all outgoing edges (any colour)."""
        return set(self._out.get(vertex, ()))

    def predecessors(self, vertex: VertexId) -> set[VertexId]:
        """Sources of all incoming edges (any colour)."""
        return set(self._in.get(vertex, ()))

    def edges(self) -> Iterator[tuple[Edge, EdgeColor]]:
        """All ``(edge, colour)`` pairs, in insertion order."""
        return iter(self._color.items())

    def vertices(self) -> set[VertexId]:
        """All vertices incident to at least one current edge."""
        seen: set[VertexId] = set()
        for source, target in self._color:
            seen.add(source)
            seen.add(target)
        return seen

    def __len__(self) -> int:
        """Number of edges currently in the graph."""
        return len(self._color)

    # ------------------------------------------------------------------
    # Dark/black cycle analysis (ground truth for verification)
    # ------------------------------------------------------------------

    def _cycle_successors(
        self, vertex: VertexId, colors: frozenset[EdgeColor]
    ) -> Iterable[VertexId]:
        for target in self._out.get(vertex, ()):
            if self._color.get((vertex, target)) in colors:
                yield target

    def _on_cycle(self, vertex: VertexId, colors: frozenset[EdgeColor]) -> bool:
        """True iff a cycle through ``vertex`` exists using only ``colors``.

        Equivalent to: ``vertex`` is reachable from itself via a non-empty
        path of edges whose colours are all in ``colors``.  Iterative DFS.
        """
        stack = list(self._cycle_successors(vertex, colors))
        visited: set[VertexId] = set()
        while stack:
            current = stack.pop()
            if current == vertex:
                return True
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._cycle_successors(current, colors))
        return False

    def is_on_dark_cycle(self, vertex: VertexId) -> bool:
        """True iff ``vertex`` lies on a cycle of grey/black edges.

        This is the paper's deadlock condition: a dark cycle persists
        forever (section 2.4), so a vertex on one is deadlocked.
        """
        return self._on_cycle(vertex, frozenset({EdgeColor.GREY, EdgeColor.BLACK}))

    def is_on_black_cycle(self, vertex: VertexId) -> bool:
        """True iff ``vertex`` lies on a cycle of all-black edges.

        QRP2 (Theorem 2) promises exactly this at the instant the initiator
        receives a meaningful probe, so soundness checks use the black --
        not merely dark -- predicate.
        """
        return self._on_cycle(vertex, frozenset({EdgeColor.BLACK}))

    def vertices_on_dark_cycles(self) -> set[VertexId]:
        """All vertices currently on at least one dark cycle."""
        return {v for v in self.vertices() if self.is_on_dark_cycle(v)}

    def find_dark_cycle(self, vertex: VertexId) -> list[VertexId] | None:
        """Return one dark cycle through ``vertex`` as a vertex list, or None.

        The list starts and ends logically at ``vertex`` (the closing edge
        back to the first element is implied, not repeated).
        """
        colors = frozenset({EdgeColor.GREY, EdgeColor.BLACK})
        path: list[VertexId] = [vertex]
        on_path: set[VertexId] = {vertex}
        visited: set[VertexId] = set()

        def dfs(current: VertexId) -> bool:
            for nxt in self._cycle_successors(current, colors):
                if nxt == vertex:
                    return True
                if nxt in on_path or nxt in visited:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                if dfs(nxt):
                    return True
                on_path.discard(path.pop())
            visited.add(current)
            return False

        return list(path) if dfs(vertex) else None

    def permanent_black_edges_from(self, vertex: VertexId) -> set[Edge]:
        """Ground truth for the WFGD computation of section 5.

        The WFGD computation lets each deadlocked vertex determine all
        *permanent black paths leading from it*.  An edge is permanently
        black when it is black and its target can never become active,
        i.e. the target's blocking can never resolve -- which, once a dark
        cycle exists, holds for every black edge whose endpoints both reach
        a dark cycle along dark edges.  For verification we compute the set
        of black edges ``(a, b)`` reachable from ``vertex`` along black
        edges such that ``b`` reaches a dark cycle.
        """
        deadlocked = self.vertices_on_dark_cycles()
        if not deadlocked:
            return set()
        # Vertices from which a dark cycle is reachable along dark edges are
        # permanently blocked.
        permanently_blocked = set(deadlocked)
        changed = True
        while changed:
            changed = False
            for (a, b), color in self._color.items():
                if color.is_dark and b in permanently_blocked and a not in permanently_blocked:
                    permanently_blocked.add(a)
                    changed = True
        result: set[Edge] = set()
        stack = [vertex]
        seen: set[VertexId] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for target in self._out.get(current, ()):
                edge = (current, target)
                if self._color.get(edge) is EdgeColor.BLACK and target in permanently_blocked:
                    result.add(edge)
                    stack.append(target)
        return result

    def __repr__(self) -> str:
        return f"WaitForGraph(edges={len(self._color)})"
