"""Vertex processes: the underlying computation of the basic model.

A :class:`VertexProcess` implements a process ``p_i`` of section 2:

* it may **request** actions from other processes (creating grey edges,
  axiom G1) and is then *blocked* until **all** replies arrive (the
  AND / resource model that distinguishes this paper from the
  communication-model work in its reference [1]);
* while **active** (no outgoing edges) it services pending requests after a
  service delay, sending replies (axiom G3: only active processes reply);
* it participates in probe computations through an embedded
  :class:`~repro.basic.detector.ProbeEngine` and in the WFGD computation
  through a :class:`~repro.basic.wfgd.WfgdParticipant`.

Local knowledge is kept scrupulously local (axiom P3): ``pending_out`` is
"my outgoing edges exist" (colour unknown to me), ``pending_in`` is "my
incoming black edges".  The global oracle graph is updated on every
transition purely for verification; no protocol decision reads it.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from repro._ids import ProbeTag, VertexId
from repro.basic.detector import ProbeEngine
from repro.basic.graph import WaitForGraph
from repro.basic.messages import Probe, Reply, Request, WfgdMessage
from repro.basic.wfgd import WfgdParticipant
from repro.errors import ProtocolError
from repro.sim import categories
from repro.sim.process import Process


class VertexProcess(Process):
    """One process / vertex of the basic model.

    Parameters
    ----------
    vertex_id:
        This vertex's id.
    oracle:
        The global coloured graph, updated (and axiom-checked) on every
        transition.  Used for verification only.
    service_delay:
        Virtual-time delay between a request being eligible for service and
        the reply being sent.
    auto_reply:
        When True (default), an active vertex automatically services its
        pending requests; when False the driver must call :meth:`reply_to`,
        which scripted scenario tests use for precise control.
    on_declare:
        Optional callback ``(vertex, tag)`` fired when this vertex declares
        itself deadlocked (step A1).
    on_unblocked:
        Optional callback ``(vertex)`` fired when the last outstanding reply
        arrives and the vertex becomes active again.
    """

    def __init__(
        self,
        vertex_id: VertexId,
        oracle: WaitForGraph,
        service_delay: float = 1.0,
        auto_reply: bool = True,
        on_declare: Callable[["VertexProcess", ProbeTag], None] | None = None,
        on_unblocked: Callable[["VertexProcess"], None] | None = None,
    ) -> None:
        super().__init__(vertex_id)
        self.vertex_id = vertex_id
        self.oracle = oracle
        self.service_delay = service_delay
        self.auto_reply = auto_reply
        self._on_declare = on_declare
        #: Optional callback fired when the vertex unblocks; public so that
        #: workload drivers can (re)assign it after construction.
        self.unblocked_callback = on_unblocked
        #: Outgoing requests with no reply yet: "my outgoing edges exist".
        self.pending_out: set[VertexId] = set()
        #: Requests received and not replied to: "my incoming black edges".
        self.pending_in: set[VertexId] = set()
        self._service_scheduled = False
        #: Optional overlay hook: called for message types the vertex does
        #: not understand; return True to consume the message.  Lets
        #: overlay protocols (e.g. the Chandy-Lamport snapshot detector)
        #: ride the same FIFO channels as the underlying computation --
        #: which marker algorithms require.
        self.foreign_handler: Callable[[VertexId, object], bool] | None = None
        self.engine = ProbeEngine(
            vertex=vertex_id,
            send_probe=self._send_probe,
            declare_deadlock=self._declare_deadlock,
        )
        self.wfgd = WfgdParticipant(
            vertex=vertex_id,
            send=self._send_wfgd,
            incoming_black=lambda: set(self.pending_in),
        )
        from repro.basic.initiation import InitiationPolicy, ManualInitiation

        self.initiation: InitiationPolicy = ManualInitiation()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def blocked(self) -> bool:
        """A process is blocked iff it awaits at least one reply."""
        return bool(self.pending_out)

    @property
    def active(self) -> bool:
        return not self.pending_out

    @property
    def deadlocked(self) -> bool:
        """Locally-known deadlock: declared via A1, or informed via WFGD."""
        return self.engine.deadlocked or self.wfgd.knows_deadlocked

    # ------------------------------------------------------------------
    # Driver API: the underlying computation
    # ------------------------------------------------------------------

    def request(self, targets: Iterable[VertexId]) -> None:
        """Send requests to ``targets``, blocking until all reply (G1).

        ``targets`` must not include this vertex or any vertex already
        waited on (G1 forbids duplicate edges).
        """
        batch = sorted(set(targets))
        if not batch:
            return
        for target in batch:
            if target == self.vertex_id:
                raise ProtocolError(f"vertex {self.vertex_id} cannot request itself")
            if target in self.pending_out:
                raise ProtocolError(
                    f"vertex {self.vertex_id} already waits for {target} (G1)"
                )
        for target in batch:
            self.oracle.create_edge(self.vertex_id, target)
            self.pending_out.add(target)
            self.ctx.trace(
                categories.BASIC_REQUEST_SENT, source=self.vertex_id, target=target
            )
            self.send(target, Request(requester=self.vertex_id))
        self.initiation.on_edges_added(self, batch)

    def reply_to(self, requester: VertexId) -> None:
        """Manually reply to a pending request (driver use, auto_reply=False).

        Enforces G3: only an active process may reply.
        """
        if requester not in self.pending_in:
            raise ProtocolError(
                f"vertex {self.vertex_id} has no pending request from {requester}"
            )
        if self.blocked:
            raise ProtocolError(
                f"vertex {self.vertex_id} is blocked and may not reply (G3)"
            )
        self._emit_reply(requester)

    # ------------------------------------------------------------------
    # Detection API
    # ------------------------------------------------------------------

    def initiate_probe_computation(self) -> ProbeTag:
        """Step A0: begin a new probe computation from this vertex."""
        self.ctx.counter("basic.computations.initiated").increment()
        self.ctx.trace(
            categories.BASIC_COMPUTATION_INITIATED,
            vertex=self.vertex_id,
            tag=self.engine.next_tag(),
        )
        return self.engine.initiate(self.pending_out)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: Hashable, message: object) -> None:
        if isinstance(message, Request):
            self._on_request(message)
        elif isinstance(message, Reply):
            self._on_reply(message)
        elif isinstance(message, Probe):
            self._on_probe(VertexId(int(sender)), message)  # type: ignore[arg-type]
        elif isinstance(message, WfgdMessage):
            self.ctx.counter("basic.wfgd.received").increment()
            self.wfgd.on_message(message)
        else:
            if self.foreign_handler is not None and self.foreign_handler(
                VertexId(int(sender)), message  # type: ignore[arg-type]
            ):
                return
            raise ProtocolError(
                f"vertex {self.vertex_id} received unknown message {message!r}"
            )

    def _on_request(self, message: Request) -> None:
        requester = message.requester
        if requester in self.pending_in:
            raise ProtocolError(
                f"duplicate request from {requester} at vertex {self.vertex_id}"
            )
        self.pending_in.add(requester)
        self.oracle.blacken(requester, self.vertex_id)
        self.ctx.trace(
            categories.BASIC_REQUEST_RECEIVED, source=requester, target=self.vertex_id
        )
        # Section 5 persistent-send rule: if this vertex already knows it
        # is deadlocked, the new incoming black edge is permanent and its
        # source must be informed.
        self.wfgd.on_new_predecessor(requester)
        if self.auto_reply:
            self._schedule_service()

    def _on_reply(self, message: Reply) -> None:
        replier = message.replier
        if replier not in self.pending_out:
            raise ProtocolError(
                f"vertex {self.vertex_id} got a reply from {replier} it never requested"
            )
        self.pending_out.discard(replier)
        self.oracle.delete_edge(self.vertex_id, replier)
        self.ctx.trace(
            categories.BASIC_REPLY_RECEIVED, source=replier, target=self.vertex_id
        )
        self.initiation.on_edge_removed(self, replier)
        if self.active:
            self.ctx.trace(categories.BASIC_UNBLOCKED, vertex=self.vertex_id)
            if self.auto_reply:
                self._schedule_service()
            if self.unblocked_callback is not None:
                self.unblocked_callback(self)

    def _on_probe(self, sender: VertexId, probe: Probe) -> None:
        self.ctx.counter("basic.probes.received").increment()
        self.ctx.trace(
            categories.BASIC_PROBE_RECEIVED,
            source=sender,
            target=self.vertex_id,
            tag=probe.tag,
            meaningful=sender in self.pending_in,
        )
        self.engine.on_probe(
            sender=sender,
            probe=probe,
            incoming_edge_black=sender in self.pending_in,
            outgoing=self.pending_out,
        )

    # ------------------------------------------------------------------
    # Service (replying)
    # ------------------------------------------------------------------

    def _schedule_service(self) -> None:
        if self._service_scheduled or not self.pending_in or self.blocked:
            return
        self._service_scheduled = True
        self.ctx.set_timer(
            self.service_delay, self._service_all, name=f"service v{self.vertex_id}"
        )

    def _service_all(self) -> None:
        self._service_scheduled = False
        if self.blocked:
            # Blocked again since scheduling; G3 forbids replying now.  The
            # service will be rescheduled when this vertex unblocks.
            return
        for requester in sorted(self.pending_in):
            self._emit_reply(requester)

    def _emit_reply(self, requester: VertexId) -> None:
        self.pending_in.discard(requester)
        self.oracle.whiten(requester, self.vertex_id)
        self.ctx.trace(
            categories.BASIC_REPLY_SENT, source=self.vertex_id, target=requester
        )
        self.send(requester, Reply(replier=self.vertex_id))

    # ------------------------------------------------------------------
    # Outbound detection traffic
    # ------------------------------------------------------------------

    def _send_probe(self, target: VertexId, probe: Probe) -> None:
        self.ctx.counter("basic.probes.sent").increment()
        self.ctx.trace(
            categories.BASIC_PROBE_SENT, source=self.vertex_id, target=target, tag=probe.tag
        )
        self.send(target, probe)

    def _send_wfgd(self, target: VertexId, message: WfgdMessage) -> None:
        self.ctx.counter("basic.wfgd.sent").increment()
        self.send(target, message)

    def _declare_deadlock(self, tag: ProbeTag) -> None:
        self.ctx.counter("basic.deadlocks.declared").increment()
        self.ctx.trace(
            categories.BASIC_DEADLOCK_DECLARED, vertex=self.vertex_id, tag=tag
        )
        if self._on_declare is not None:
            self._on_declare(self, tag)

    def __repr__(self) -> str:
        state = "blocked" if self.blocked else "active"
        return f"VertexProcess(v{self.vertex_id}, {state}, out={sorted(self.pending_out)})"
