"""Result aggregation and rendering for the experiment harness."""

from repro.analysis.stats import confidence_interval_95, mean, stdev, summarize
from repro.analysis.tables import Table

__all__ = ["Table", "confidence_interval_95", "mean", "stdev", "summarize"]
