"""JSON export of experiment results.

Experiment modules return dataclass lists; this module serialises them --
together with the rendered table and reproduction metadata -- into a JSON
document, so downstream tooling (plots, dashboards, regression diffing)
can consume the harness output without scraping tables.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro import __version__
from repro.analysis.tables import Table


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of result payloads to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        try:
            items = sorted(value)
        except TypeError:
            items = list(value)
        return [_jsonable(item) for item in items]
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and value != value:  # NaN
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def experiment_to_json(
    experiment_id: str, table: Table, results: list, quick: bool
) -> str:
    """Serialise one experiment run to a JSON string."""
    document = {
        "experiment": experiment_id,
        "library_version": __version__,
        "quick_mode": quick,
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "results": [_jsonable(result) for result in results],
    }
    return json.dumps(document, indent=2, sort_keys=True)
