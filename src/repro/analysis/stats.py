"""Small statistics helpers (dependency-free).

Experiments run several seeds per configuration; these helpers summarise
the replications.  The 95% confidence interval uses the normal
approximation, adequate for the replication counts used here.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n - 1); zero for fewer than two values."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the 95% CI around the mean (normal approximation)."""
    if len(values) < 2:
        return 0.0
    return 1.96 * stdev(values) / math.sqrt(len(values))


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    stdev: float
    ci95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95:.3f} (n={self.count})"


def summarize(values: Sequence[float]) -> Summary:
    return Summary(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        ci95=confidence_interval_95(values),
        minimum=min(values),
        maximum=max(values),
    )
