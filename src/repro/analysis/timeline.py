"""ASCII timelines from simulation traces.

Turns a recorded trace into a human-readable protocol timeline -- the
debugging view you want when a test's message choreography surprises you,
and the rendering used by the documentation examples.  Three renderers:

* :func:`render_timeline` -- chronological event list with aligned time
  stamps and compact, per-category phrasing;
* :func:`render_lanes` -- a lane per vertex with message arrows between
  lanes (sequence-chart style) for small basic-model scenarios;
* :func:`render_spans` -- one row per probe computation ``(i, n)``,
  rendered from the :mod:`repro.obs.spans` span model (the same model the
  ``repro spans`` CLI and the Chrome-trace exporter consume).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.obs.spans import ProbeComputationSpan
from repro.sim import categories
from repro.sim.trace import TraceEvent, Tracer

#: category -> formatter(event) -> str; unknown categories fall back to
#: "<category> <details>".
_FORMATTERS: dict[str, Callable[[TraceEvent], str]] = {
    categories.BASIC_REQUEST_SENT: lambda e: f"v{e['source']} requests v{e['target']}",
    categories.BASIC_REQUEST_RECEIVED: lambda e: (
        f"v{e['target']} receives request from v{e['source']} "
        f"(edge {e['source']}->{e['target']} turns black)"
    ),
    categories.BASIC_REPLY_SENT: lambda e: f"v{e['source']} replies to v{e['target']}",
    categories.BASIC_REPLY_RECEIVED: lambda e: (
        f"v{e['target']} receives reply (edge {e['target']}->{e['source']} gone)"
    ),
    categories.BASIC_UNBLOCKED: lambda e: f"v{e['vertex']} becomes active",
    categories.BASIC_COMPUTATION_INITIATED: lambda e: (
        f"v{e['vertex']} initiates probe computation {e['tag']}"
    ),
    categories.BASIC_PROBE_SENT: lambda e: (
        f"v{e['source']} sends probe {e['tag']} to v{e['target']}"
    ),
    categories.BASIC_PROBE_RECEIVED: lambda e: (
        f"v{e['target']} receives probe {e['tag']} from v{e['source']} "
        f"({'meaningful' if e['meaningful'] else 'not meaningful'})"
    ),
    categories.BASIC_DEADLOCK_DECLARED: lambda e: (
        f"*** v{e['vertex']} DECLARES DEADLOCK (computation {e['tag']}) ***"
    ),
    categories.DDB_TXN_BEGIN: lambda e: (
        f"C{e['site']}: T{e['tid']} begins (incarnation {e['incarnation']})"
    ),
    categories.DDB_TXN_BLOCKED: lambda e: f"C{e['site']}: T{e['tid']} blocks",
    categories.DDB_TXN_COMMITTED: lambda e: f"C{e['site']}: T{e['tid']} commits",
    categories.DDB_TXN_ABORTED: lambda e: f"C{e['site']}: T{e['tid']} aborted (victim)",
    categories.DDB_DEADLOCK_DECLARED: lambda e: (
        f"*** C{e['site']} DECLARES {e['process']} DEADLOCKED ***"
    ),
    categories.OR_UNBLOCKED: lambda e: (
        f"v{e['vertex']} unblocks (granted by v{e['granter']})"
    ),
    categories.OR_DEADLOCK_DECLARED: lambda e: (
        f"*** v{e['vertex']} DECLARES OR-DEADLOCK ({e['tag']}) ***"
    ),
}


def render_timeline(
    tracer: Tracer,
    include: Iterable[str] | None = None,
    limit: int | None = None,
) -> str:
    """Render the trace as ``t=...  description`` lines.

    ``include`` filters by category prefix (default: categories with a
    dedicated formatter); ``limit`` truncates with an ellipsis marker.
    """
    prefixes = tuple(include) if include is not None else tuple(_FORMATTERS)
    lines: list[str] = []
    for event in tracer:
        if not event.category.startswith(prefixes):
            continue
        formatter = _FORMATTERS.get(event.category)
        text = (
            formatter(event)
            if formatter is not None
            else f"{event.category} {event.details}"
        )
        lines.append(f"t={event.time:8.3f}  {text}")
        if limit is not None and len(lines) >= limit:
            lines.append("... (truncated)")
            break
    return "\n".join(lines)


def render_spans(spans: Iterable[ProbeComputationSpan]) -> str:
    """Tabulate probe-computation spans: one row per ``(i, n)`` tag.

    Columns: the tag, the initiation instant, hop count (meaningful/total),
    the worst per-edge probe count (section 4 allows at most 1), the
    outcome, and the detection latency for computations that declared.
    """
    header = (
        f"{'tag':>8}  {'initiated':>10}  {'hops':>5}  {'meaningful':>10}  "
        f"{'max/edge':>8}  {'outcome':<10}  {'latency':>8}"
    )
    lines = [header, "-" * len(header)]
    for span in spans:
        initiated = (
            f"{span.initiated_at:10.3f}" if span.initiated_at is not None else "?".rjust(10)
        )
        latency = (
            f"{span.detection_latency:8.3f}"
            if span.detection_latency is not None
            else "-".rjust(8)
        )
        lines.append(
            f"{str(span.tag):>8}  {initiated}  {span.probes_sent:>5}  "
            f"{span.meaningful_probes:>10}  {span.max_probes_on_one_edge:>8}  "
            f"{span.outcome.value:<10}  {latency}"
        )
    if len(lines) == 2:
        lines.append("(no probe computations in trace)")
    return "\n".join(lines)


def render_lanes(tracer: Tracer, n_vertices: int, width: int = 6) -> str:
    """Sequence-chart rendering for small basic-model traces.

    One column per vertex; message sends draw ``*``, deliveries ``o``,
    declarations ``X``; a trailing annotation names the event.
    """
    header = "time".rjust(9) + "  " + "".join(
        f"v{i}".center(width) for i in range(n_vertices)
    )
    lines = [header, "-" * len(header)]

    def lane_row(marks: dict[int, str], time: float, note: str) -> str:
        cells = "".join(
            marks.get(i, "|").center(width) for i in range(n_vertices)
        )
        return f"{time:9.3f}  {cells}  {note}"

    for event in tracer:
        category = event.category
        if category == categories.BASIC_REQUEST_SENT:
            lines.append(
                lane_row(
                    {int(event["source"]): "*", int(event["target"]): "."},
                    event.time,
                    f"request v{event['source']}->v{event['target']}",
                )
            )
        elif category == categories.BASIC_PROBE_SENT:
            lines.append(
                lane_row(
                    {int(event["source"]): "*"},
                    event.time,
                    f"probe {event['tag']} ->v{event['target']}",
                )
            )
        elif category == categories.BASIC_PROBE_RECEIVED and event["meaningful"]:
            lines.append(
                lane_row(
                    {int(event["target"]): "o"},
                    event.time,
                    f"meaningful probe {event['tag']}",
                )
            )
        elif category == categories.BASIC_DEADLOCK_DECLARED:
            lines.append(
                lane_row(
                    {int(event["vertex"]): "X"},
                    event.time,
                    f"DEADLOCK {event['tag']}",
                )
            )
    return "\n".join(lines)
