"""Fixed-width text tables for experiment output.

The benchmark harness prints the regenerated tables with this renderer so
EXPERIMENTS.md and the bench output stay visually identical.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import ConfigurationError


class Table:
    """A simple fixed-width table with a title and typed-ish columns."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(value) for value in values])

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        separator = "-+-".join("-" * width for width in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(column.ljust(width) for column, width in zip(self.columns, widths))
        )
        lines.append(separator)
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
