"""Cluster worker: one OS process owning one node's inbound channels.

The coordinator (:mod:`repro.cluster.transport`) spawns one of these per
registered node and routes every message for that node through it, so
each delivery genuinely crosses two process boundaries as length-prefixed
JSON frames.  The worker's job is the delivery half of axiom P4:

* one FIFO queue per inbound channel, drained by a serial consumer, so
  delivery order on a channel equals frame order regardless of the
  injected delays (``loose`` frames -- the ``fifo=False`` ablation --
  instead sleep independently and may overtake);
* each message sleeps until its virtual due time (``origin + due *
  time_scale`` on the worker's own clock, anchored by the coordinator's
  ``start`` frame), then is echoed back as a ``deliver`` frame;
* a heartbeat frame every ``--heartbeat`` seconds, so the coordinator
  can tell a stalled worker from a quiet one;
* connects back to the coordinator with deterministic exponential
  backoff (:func:`backoff_delays`; no jitter -- cluster runs must stay
  reproducible per seed, and the schedule has nothing to desynchronize).

This file is a **self-contained stdlib program**: the coordinator spawns
it by file path (``python .../worker.py``), so worker start-up never
imports the repro package -- payloads stay opaque JSON, and the tiny
frame helpers are inlined here instead of imported from
:mod:`repro.cluster.frames`.

Test hooks (environment variables, all off by default):

``REPRO_CLUSTER_TEST_STARTUP_DELAY``
    sleep this many seconds before connecting (a slow-starting worker).
``REPRO_CLUSTER_TEST_CONNECT_FAILS``
    fail the first N connect attempts (exercises the backoff path).
``REPRO_CLUSTER_TEST_EXIT_AFTER``
    die abruptly (``os._exit``) after N deliveries (a mid-run crash).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import struct
import sys
import time
from typing import Any

_HEADER = struct.Struct(">I")
_MAX_FRAME_BYTES = 8 * 1024 * 1024
#: exit status of an injected mid-run crash (REPRO_CLUSTER_TEST_EXIT_AFTER).
CRASH_EXIT_CODE = 17

#: connect retry schedule knobs (seconds).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 1.0
CONNECT_ATTEMPTS = 8


def backoff_delays(
    attempts: int = CONNECT_ATTEMPTS,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> list[float]:
    """Deterministic exponential backoff: ``base * 2**k`` capped at ``cap``.

    One delay per retry (the first attempt is immediate).  Deliberately
    jitter-free: the schedule is private to one (worker, coordinator)
    pair, so there is no thundering herd to spread out, and determinism
    is a feature everywhere in this codebase.
    """
    return [min(base * (2.0**k), cap) for k in range(attempts)]


def _env_float(name: str) -> float:
    raw = os.environ.get(name, "")
    return float(raw) if raw else 0.0


def _env_int(name: str) -> int:
    raw = os.environ.get(name, "")
    return int(raw) if raw else 0


async def _read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionError("coordinator died inside a frame header") from error
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ConnectionError(f"frame announces {length} bytes; stream corrupt")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("coordinator died inside a frame body") from error
    frame = json.loads(body.decode("utf-8"))
    if not isinstance(frame, dict):
        raise ConnectionError("frame body is not a JSON object")
    return frame


def _encode_frame(frame: dict[str, Any]) -> bytes:
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


async def _connect(spec: str) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial the coordinator, retrying with deterministic backoff."""
    forced_failures = _env_int("REPRO_CLUSTER_TEST_CONNECT_FAILS")
    delays = backoff_delays()
    last_error: Exception = ConnectionError("no connect attempt made")
    for attempt in range(len(delays) + 1):
        try:
            if attempt < forced_failures:
                raise ConnectionError("injected connect failure (test hook)")
            if spec.startswith("unix:"):
                return await asyncio.open_unix_connection(spec[len("unix:") :])
            if spec.startswith("tcp:"):
                host, _, port = spec[len("tcp:") :].rpartition(":")
                return await asyncio.open_connection(host, int(port))
            raise ValueError(f"unknown connect spec {spec!r}")
        except (OSError, ConnectionError) as error:
            last_error = error
            if attempt < len(delays):
                await asyncio.sleep(delays[attempt])
    raise last_error


class Worker:
    """Channel owner for one node; see the module docstring."""

    def __init__(self, index: int, heartbeat: float) -> None:
        self.index = index
        self.heartbeat = heartbeat
        self.origin: float | None = None
        self.time_scale = 1.0
        self.delivered = 0
        self.exit_after = _env_int("REPRO_CLUSTER_TEST_EXIT_AFTER")
        self._queues: dict[str, asyncio.Queue[dict[str, Any]]] = {}
        self._consumers: list[asyncio.Task[None]] = []
        self._loose: set[asyncio.Task[None]] = set()
        self._writer_lock = asyncio.Lock()
        self._writer: asyncio.StreamWriter | None = None

    async def _write(self, frame: dict[str, Any]) -> None:
        writer = self._writer
        if writer is None:
            return
        async with self._writer_lock:
            writer.write(_encode_frame(frame))
            await writer.drain()

    async def _heartbeat_loop(self) -> None:
        sequence = 0
        while True:
            await asyncio.sleep(self.heartbeat)
            sequence += 1
            await self._write(
                {"kind": "heartbeat", "index": self.index, "seq": sequence}
            )

    async def _sleep_until_due(self, due: float) -> None:
        if self.origin is None:
            return
        remaining = self.origin + due * self.time_scale - time.monotonic()
        if remaining > 0:
            await asyncio.sleep(remaining)

    async def _deliver(self, frame: dict[str, Any]) -> None:
        await self._sleep_until_due(float(frame["due"]))
        frame = dict(frame)
        frame["kind"] = "deliver"
        await self._write(frame)
        self.delivered += 1
        if self.exit_after and self.delivered >= self.exit_after:
            # Simulated hard crash: no shutdown frame, no flushing -- the
            # coordinator must notice via EOF/exit status, not courtesy.
            os._exit(CRASH_EXIT_CODE)

    async def _consume(self, queue: asyncio.Queue[dict[str, Any]]) -> None:
        while True:
            frame = await queue.get()
            await self._deliver(frame)

    def _enqueue(self, frame: dict[str, Any]) -> None:
        if frame.get("loose"):
            task = asyncio.ensure_future(self._deliver(frame))
            self._loose.add(task)
            task.add_done_callback(self._loose.discard)
            return
        channel = str(frame["channel"])
        queue = self._queues.get(channel)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[channel] = queue
            self._consumers.append(asyncio.ensure_future(self._consume(queue)))
        queue.put_nowait(frame)

    async def run(self, spec: str) -> int:
        reader, writer = await _connect(spec)
        self._writer = writer
        await self._write(
            {"kind": "hello", "index": self.index, "pid": os.getpid()}
        )
        beats = asyncio.ensure_future(self._heartbeat_loop())
        try:
            while True:
                frame = await _read_frame(reader)
                if frame is None:
                    # Coordinator went away without a shutdown frame: exit
                    # rather than linger as an orphan.
                    return 1
                kind = frame.get("kind")
                if kind == "start":
                    self.origin = time.monotonic()
                    self.time_scale = float(frame["time_scale"])
                elif kind == "msg":
                    self._enqueue(frame)
                elif kind == "shutdown":
                    return 0
                else:
                    raise ConnectionError(f"unknown frame kind {kind!r}")
        finally:
            beats.cancel()
            for task in [*self._consumers, *self._loose]:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass


async def _amain(args: argparse.Namespace) -> int:
    worker = Worker(index=args.index, heartbeat=args.heartbeat)
    return await worker.run(args.connect)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="repro cluster worker process")
    parser.add_argument("--connect", required=True, help="unix:<path> or tcp:<host>:<port>")
    parser.add_argument("--index", type=int, required=True, help="worker index")
    parser.add_argument(
        "--heartbeat", type=float, default=0.5, help="heartbeat interval (seconds)"
    )
    args = parser.parse_args(argv)
    startup_delay = _env_float("REPRO_CLUSTER_TEST_STARTUP_DELAY")
    if startup_delay > 0:
        time.sleep(startup_delay)
    try:
        return asyncio.run(_amain(args))
    except (OSError, ConnectionError, ValueError) as error:
        print(f"worker {args.index}: {error}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
