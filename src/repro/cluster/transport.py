"""Multi-process cluster backend of the transport seam.

:class:`ClusterTransport` is the third :class:`~repro.core.transport.Transport`
backend: a coordinator process that spawns **one worker OS process per
registered node** (vertices, and controllers on the DDB model) and routes
every message through that node's worker over a real socket -- Unix-domain
by default, TCP on request -- as length-prefixed JSON frames
(:mod:`repro.cluster.frames`).

Division of labour
------------------
Handlers, the verification oracle, and declaration bookkeeping stay in
the coordinator: the paper's soundness checking consults a shared
wait-for-graph oracle *at the instant of declaration*, which only exists
in one address space.  What moves out of process is the entire delivery
path -- the part the paper axiomatises:

* ``send()`` samples the seeded injected delay (inherited from
  :class:`~repro.live.transport.AsyncioTransport`), serializes the
  message, and frames it to the **destination's** worker;
* the worker queues it per inbound channel, sleeps until the virtual due
  time on its own clock, and echoes a ``deliver`` frame back;
* the coordinator decodes the returned payload (the delivered message is
  rebuilt from wire bytes, not the original object) and runs the handler
  atomically on its single-threaded loop.

Per-channel FIFO (axiom P4) holds end to end by construction: frames on
one socket arrive in write order, the worker drains each channel with one
serial consumer, and deliver frames return on one ordered stream.  The
``fifo=False`` ablation marks frames ``loose``; workers then sleep each
message independently and reordering becomes possible, exactly as on the
other two backends.

Robustness
----------
Workers connect back with deterministic retry/backoff and announce
themselves with a ``hello`` frame; the coordinator enforces a
``connect_timeout`` on bring-up.  Live workers heartbeat every
``heartbeat_interval`` seconds; a dead process, a broken connection, or
a stale heartbeat surfaces as a typed
:class:`~repro.errors.ClusterError` carrying
:class:`~repro.errors.WorkerFailure` records -- a partial-run report,
never a hang.  ``close()`` shuts down gracefully: a ``shutdown`` frame
per worker, a bounded wait, then SIGKILL for stragglers.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import subprocess
import sys
import tempfile
from collections.abc import Hashable
from pathlib import Path
from typing import Any

from repro.cluster.frames import decode_value, encode_value, read_frame, write_frame
from repro.errors import ClusterError, SimulationError, WorkerFailure
from repro.live.transport import AsyncioTransport, LiveNodeContext
from repro.sim import categories
from repro.sim.network import DelayModel

#: the worker program, spawned by file path so that worker start-up does
#: not import the repro package (it is stdlib-only by design).
_WORKER_PATH = Path(__file__).with_name("worker.py")
#: wall seconds granted for graceful worker exit before SIGKILL.
_SHUTDOWN_GRACE = 2.0
#: bytes of captured worker stderr echoed into a WorkerFailure.
_STDERR_TAIL = 2000


class _WorkerLink:
    """Coordinator-side state for one worker process."""

    __slots__ = (
        "connected",
        "failed",
        "index",
        "last_seen",
        "node",
        "outbox",
        "pid",
        "process",
        "reader",
        "reader_task",
        "stderr_path",
        "writer",
        "writer_task",
    )

    def __init__(self, index: int, node: Hashable) -> None:
        self.index = index
        self.node = node
        self.process: subprocess.Popen[bytes] | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.outbox: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        self.writer_task: asyncio.Task[None] | None = None
        self.reader_task: asyncio.Task[None] | None = None
        self.connected = asyncio.Event()
        self.last_seen = 0.0
        self.failed = False
        self.pid: int | None = None
        self.stderr_path: str | None = None


class ClusterTransport(AsyncioTransport):
    """The multi-process backend of the transport contract.

    Parameters extend :class:`~repro.live.transport.AsyncioTransport`
    (the factory signature stays ``(seed, delay_model, trace, fifo)``)
    with cluster knobs:

    channel:
        ``"unix"`` (default) for Unix-domain sockets in a private
        tempdir, ``"tcp"`` for loopback TCP on an ephemeral port.
    heartbeat_interval:
        Worker heartbeat period in wall seconds; a worker silent for
        ``max(4 * interval, 2.0)`` seconds is declared lost.
    connect_timeout:
        Wall seconds each worker gets to dial back during bring-up.
    worker_env:
        Extra environment variables for spawned workers (the failure
        injection hooks documented in :mod:`repro.cluster.worker`).
    """

    name = "cluster"

    def __init__(
        self,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        trace: bool = True,
        fifo: bool = True,
        *,
        time_scale: float = 0.005,
        max_wall_seconds: float = 30.0,
        channel: str = "unix",
        heartbeat_interval: float = 0.5,
        connect_timeout: float = 10.0,
        worker_env: dict[str, str] | None = None,
    ) -> None:
        if channel not in ("unix", "tcp"):
            raise SimulationError(f"channel must be 'unix' or 'tcp', got {channel!r}")
        if heartbeat_interval <= 0:
            raise SimulationError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        super().__init__(
            seed,
            delay_model,
            trace,
            fifo,
            time_scale=time_scale,
            max_wall_seconds=max_wall_seconds,
        )
        self.channel = channel
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        self.worker_env = dict(worker_env) if worker_env else {}
        self._stale_after = max(4.0 * heartbeat_interval, 2.0)
        self._links: list[_WorkerLink] = []
        self._node_index: dict[Hashable, int] = {}
        self._channel_keys: dict[Hashable, str] = {}
        self._failures: list[WorkerFailure] = []
        self._tempdir: str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._watcher: asyncio.Task[None] | None = None
        self._brought_up = False
        self._closing = False
        self._seq = 0

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def register(self, process: Any) -> LiveNodeContext:
        """Register a node; its worker is spawned at the first ``run*``."""
        if self._brought_up or self._origin is not None:
            raise SimulationError(
                "cluster transport cannot register processes after the first "
                "run: workers are spawned at start"
            )
        ctx = super().register(process)
        index = len(self._links)
        self._node_index[process.pid] = index
        self._links.append(_WorkerLink(index=index, node=process.pid))
        return ctx

    @property
    def worker_failures(self) -> tuple[WorkerFailure, ...]:
        """Workers known dead so far (empty on a healthy run)."""
        return tuple(self._failures)

    def worker_processes(self) -> dict[int, subprocess.Popen[bytes]]:
        """Live handles of the spawned workers, by index (test/ops hook)."""
        return {
            link.index: link.process
            for link in self._links
            if link.process is not None
        }

    # ------------------------------------------------------------------
    # Dispatch: coordinator -> worker
    # ------------------------------------------------------------------

    def _channel_key(self, sender: Hashable) -> str:
        key = self._channel_keys.get(sender)
        if key is None:
            key = json.dumps(encode_value(sender), sort_keys=True)
            self._channel_keys[sender] = key
        return key

    def _dispatch(self, delivery: tuple[float, Hashable, Hashable, Any]) -> None:
        due, sender, destination, message = delivery
        link = self._links[self._node_index[destination]]
        self._seq += 1
        link.outbox.put_nowait(
            {
                "kind": "msg",
                "channel": self._channel_key(sender),
                "src": encode_value(sender),
                "dst": encode_value(destination),
                "due": due,
                "seq": self._seq,
                "loose": not self.fifo,
                "payload": encode_value(message),
            }
        )

    # ------------------------------------------------------------------
    # Bring-up
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._closed or self._closing:
            raise SimulationError("transport is closed")
        if self._origin is not None:
            return
        if self._links and not self._brought_up:
            try:
                self._loop.run_until_complete(self._bring_up())
            except BaseException:
                self._loop.run_until_complete(self._teardown())
                raise
            self._brought_up = True
            # The start frame anchors each worker's virtual-time origin;
            # it travels through the same outbox as message frames, so no
            # message can overtake it on the wire.
            for link in self._links:
                link.outbox.put_nowait(
                    {"kind": "start", "time_scale": self.time_scale}
                )
            self._watcher = self._loop.create_task(self._watch())
        super()._start()

    async def _bring_up(self) -> None:
        self._tempdir = tempfile.mkdtemp(prefix="repro-cluster-")
        if self.channel == "unix":
            socket_path = os.path.join(self._tempdir, "coordinator.sock")
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=socket_path
            )
            spec = f"unix:{socket_path}"
        else:
            self._server = await asyncio.start_server(
                self._on_connection, "127.0.0.1", 0
            )
            port = self._server.sockets[0].getsockname()[1]
            spec = f"tcp:127.0.0.1:{port}"
        env = {**os.environ, **self.worker_env}
        for link in self._links:
            link.stderr_path = os.path.join(
                self._tempdir, f"worker-{link.index}.log"
            )
            with open(link.stderr_path, "wb") as log:
                link.process = subprocess.Popen(
                    [
                        sys.executable,
                        str(_WORKER_PATH),
                        "--connect",
                        spec,
                        "--index",
                        str(link.index),
                        "--heartbeat",
                        str(self.heartbeat_interval),
                    ],
                    stdout=log,
                    stderr=log,
                    env=env,
                )
        deadline = self._loop.time() + self.connect_timeout
        while not all(link.connected.is_set() for link in self._links):
            for link in self._links:
                process = link.process
                if process is None or link.connected.is_set():
                    continue
                returncode = process.poll()
                if returncode is not None:
                    raise ClusterError(
                        "cluster bring-up failed",
                        failures=(
                            self._failure_record(
                                link,
                                f"worker exited with code {returncode} "
                                "before connecting",
                            ),
                        ),
                    )
            if self._loop.time() > deadline:
                missing = [
                    link for link in self._links if not link.connected.is_set()
                ]
                raise ClusterError(
                    f"{len(missing)} worker(s) did not connect within "
                    f"connect_timeout={self.connect_timeout}s",
                    failures=tuple(
                        self._failure_record(link, "never connected")
                        for link in missing
                    ),
                )
            await asyncio.sleep(0.02)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await read_frame(reader)
        except ClusterError:
            writer.close()
            return
        if frame is None or frame.get("kind") != "hello":
            writer.close()
            return
        index = int(frame["index"])
        if not 0 <= index < len(self._links):
            writer.close()
            return
        link = self._links[index]
        link.reader = reader
        link.writer = writer
        link.pid = int(frame.get("pid", 0)) or None
        link.last_seen = self._loop.time()
        link.writer_task = self._loop.create_task(self._write_loop(link))
        link.reader_task = asyncio.current_task()
        link.connected.set()
        if self.tracer.wants(categories.CLUSTER_WORKER_READY):
            self.tracer.record(
                self.now,
                categories.CLUSTER_WORKER_READY,
                worker=link.index,
                node=link.node,
                pid=link.pid,
            )
        await self._read_loop(link)

    # ------------------------------------------------------------------
    # Per-worker I/O loops
    # ------------------------------------------------------------------

    async def _write_loop(self, link: _WorkerLink) -> None:
        assert link.writer is not None
        try:
            while True:
                frame = await link.outbox.get()
                await write_frame(link.writer, frame)
        except (OSError, ConnectionError) as error:
            self._worker_lost(link, f"write to worker failed: {error}")

    async def _read_loop(self, link: _WorkerLink) -> None:
        assert link.reader is not None
        try:
            while True:
                frame = await read_frame(link.reader)
                if frame is None:
                    self._worker_lost(link, "connection closed unexpectedly")
                    return
                kind = frame.get("kind")
                if kind == "heartbeat":
                    link.last_seen = self._loop.time()
                elif kind == "deliver":
                    delivery = (
                        float(frame["due"]),
                        decode_value(frame["src"]),
                        decode_value(frame["dst"]),
                        decode_value(frame["payload"]),
                    )
                    self._deliver(delivery)
                else:
                    self._worker_lost(link, f"sent unknown frame kind {kind!r}")
                    return
        except ClusterError as error:
            self._worker_lost(link, str(error))
        except (OSError, ConnectionError) as error:
            self._worker_lost(link, f"connection error: {error}")

    async def _watch(self) -> None:
        """Process-exit and heartbeat watchdog.

        The loop only spins inside ``run*`` calls, so a long pause between
        runs would make every heartbeat look stale on resume; the watcher
        detects its *own* delay and re-baselines instead of flagging.
        """
        interval = self.heartbeat_interval
        last_tick = self._loop.time()
        while True:
            await asyncio.sleep(interval)
            now = self._loop.time()
            paused = now - last_tick > interval * 2
            last_tick = now
            for link in self._links:
                if link.failed:
                    continue
                process = link.process
                returncode = None if process is None else process.poll()
                if returncode is not None:
                    self._worker_lost(
                        link, f"worker process exited with code {returncode}"
                    )
                elif paused:
                    link.last_seen = now
                elif now - link.last_seen > self._stale_after:
                    self._worker_lost(
                        link,
                        f"no heartbeat for {now - link.last_seen:.1f}s "
                        f"(interval {interval:g}s)",
                    )

    # ------------------------------------------------------------------
    # Failure reporting
    # ------------------------------------------------------------------

    def _failure_record(self, link: _WorkerLink, reason: str) -> WorkerFailure:
        returncode = None if link.process is None else link.process.poll()
        detail = ""
        if link.stderr_path is not None:
            try:
                detail = (
                    Path(link.stderr_path)
                    .read_text(errors="replace")[-_STDERR_TAIL:]
                    .strip()
                )
            except OSError:
                detail = ""
        return WorkerFailure(
            worker=link.index,
            node=repr(link.node),
            reason=reason,
            returncode=returncode,
            detail=detail,
        )

    def _worker_lost(self, link: _WorkerLink, reason: str) -> None:
        if self._closing or link.failed:
            return
        link.failed = True
        failure = self._failure_record(link, reason)
        self._failures.append(failure)
        if self.tracer.wants(categories.CLUSTER_WORKER_FAILED):
            self.tracer.record(
                self.now,
                categories.CLUSTER_WORKER_FAILED,
                worker=link.index,
                node=link.node,
                reason=reason,
                returncode=failure.returncode,
            )
        if self._failure is None:
            self._failure = ClusterError(
                "cluster run failed", failures=tuple(self._failures)
            )
        self._activity.set()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    async def _teardown(self) -> None:
        self._closing = True
        tasks: list[asyncio.Task[None]] = []
        if self._watcher is not None:
            tasks.append(self._watcher)
            self._watcher = None
        for link in self._links:
            process = link.process
            if (
                link.writer is not None
                and process is not None
                and process.poll() is None
            ):
                try:
                    await write_frame(link.writer, {"kind": "shutdown"})
                except (OSError, ConnectionError, ClusterError):
                    pass
        deadline = self._loop.time() + _SHUTDOWN_GRACE
        while any(
            link.process is not None and link.process.poll() is None
            for link in self._links
        ):
            if self._loop.time() > deadline:
                break
            await asyncio.sleep(0.02)
        for link in self._links:
            if link.process is not None:
                if link.process.poll() is None:
                    link.process.kill()
                link.process.wait()
            for task in (link.writer_task, link.reader_task):
                if task is not None:
                    tasks.append(task)
            link.writer_task = None
            link.reader_task = None
            if link.writer is not None:
                link.writer.close()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (OSError, ConnectionError):
                pass
            self._server = None

    def close(self) -> None:
        """Graceful cluster shutdown, then close the loop (idempotent)."""
        if self._closed:
            return
        if not self._loop.is_closed():
            self._loop.run_until_complete(self._teardown())
        super().close()
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            self._tempdir = None

    def __repr__(self) -> str:
        return (
            f"ClusterTransport(t={self.now:.3f}, workers={len(self._links)}, "
            f"channel={self.channel!r}, in_flight={self._in_flight}, "
            f"failures={len(self._failures)})"
        )
