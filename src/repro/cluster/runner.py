"""Run one registered detector variant on the multi-process cluster.

The driver behind ``repro cluster``: build a
:class:`~repro.cluster.transport.ClusterTransport` (one worker OS process
per node), attach the standard telemetry bridge
(:func:`~repro.obs.metrics.telemetry_for_variant` -- detection latency is
read from the same ``repro_detection_latency_units`` family the monitor
exports), hand the transport to the variant's conformance callable, and
report the outcome.  Scenarios beyond ``deadlock`` / ``clean`` resolve
through the workload registry: ``random`` picks the model's default
randomized family (``random`` on the basic model, ``ddb-mix`` on DDB),
and any registered family name runs directly -- a family that cannot
drive the variant's model fails fast with a
:class:`~repro.errors.ConfigurationError` naming both.  Registry-driven
runs gate on the quiescence-time completeness report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.cluster.transport import ClusterTransport
from repro.core.conformance import ConformanceOutcome, conformance_workload
from repro.core.registry import get_variant
from repro.core.scheduling import PolicySpec, coerce_policy_spec
from repro.obs.metrics import telemetry_for_variant
from repro.workloads.provision import provision_workload, resolve_scenario_spec


@dataclass(frozen=True)
class ClusterReport:
    """Outcome of one cluster run, for humans, JSON artifacts, and CI."""

    variant: str
    scenario: str
    outcome: ConformanceOutcome
    #: wall seconds from bring-up to the end of the run.
    wall_seconds: float
    #: wall seconds until the first declaration (``None`` if silent).
    detection_latency_seconds: float | None
    #: per-computation detection latencies (wall seconds) from the
    #: ``repro_detection_latency_units`` telemetry family.
    detection_latencies_seconds: tuple[float, ...]
    time_scale: float
    #: ``"unix"`` or ``"tcp"``.
    channel: str
    #: worker processes the coordinator spawned (one per node).
    workers: int
    #: messages that crossed the worker boundary and came back.
    messages_delivered: int
    seed: int

    @property
    def detected(self) -> bool:
        return self.outcome.declarations > 0

    @property
    def sound(self) -> bool:
        return self.outcome.soundness_violations == 0

    @property
    def ok(self) -> bool:
        """The CI gate: sound; a dealt deadlock detected; any
        registry-driven workload's deadlocks all detected by quiescence
        (QRP1)."""
        if not self.sound:
            return False
        if self.scenario == "deadlock" and not self.detected:
            return False
        if self.scenario not in ("deadlock", "clean") and not self.outcome.complete:
            return False
        return True

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": "repro.cluster-report/1",
            "variant": self.variant,
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "detected": self.detected,
            "sound": self.sound,
            "declarations": self.outcome.declarations,
            "soundness_violations": self.outcome.soundness_violations,
            "complete": self.outcome.complete,
            "undetected_components": self.outcome.undetected_components,
            "detection_latency_seconds": self.detection_latency_seconds,
            "detection_latencies_seconds": list(self.detection_latencies_seconds),
            "channel": self.channel,
            "workers": self.workers,
            "messages_delivered": self.messages_delivered,
            "wall_seconds": self.wall_seconds,
            "time_scale": self.time_scale,
        }


def run_cluster(
    variant_name: str,
    *,
    scenario: str = "deadlock",
    seed: int = 0,
    time_scale: float = 0.005,
    timeout: float = 60.0,
    channel: str = "unix",
    heartbeat_interval: float = 0.5,
    n_vertices: int = 8,
    duration: float = 40.0,
    worker_env: dict[str, str] | None = None,
    policy: PolicySpec | str | None = None,
) -> ClusterReport:
    """Run one scenario with every node's channels in its own process.

    ``timeout`` bounds each drive of the run in wall seconds; a cluster
    that neither declares nor quiesces inside it raises
    :class:`~repro.errors.SimulationError`, and a worker death raises
    :class:`~repro.errors.ClusterError` (both via the transport driver).
    ``n_vertices`` and ``duration`` apply to registry-driven scenarios
    only (``random`` or a workload family name).  ``policy`` (a
    :class:`~repro.core.scheduling.PolicySpec` or policy-id string)
    replaces the variant's default initiation scheduling; with a policy
    the conformance pair routes through the workload registry too.
    """
    variant = get_variant(variant_name)
    policy_spec = coerce_policy_spec(policy)
    if scenario not in ("deadlock", "clean"):
        # Resolve before spawning workers so capability mismatches fail
        # fast with the family named, not after cluster bring-up.
        resolve_scenario_spec(variant, scenario, seed=seed)
    transport = ClusterTransport(
        seed=seed,
        trace=False,
        time_scale=time_scale,
        max_wall_seconds=timeout,
        channel=channel,
        heartbeat_interval=heartbeat_interval,
        worker_env=worker_env,
    )
    telemetry = telemetry_for_variant(transport, variant.capabilities)
    started = time.perf_counter()
    try:
        if scenario not in ("deadlock", "clean") or policy_spec is not None:
            outcome = _run_workload(
                variant_name,
                transport,
                scenario=scenario,
                seed=seed,
                n_vertices=n_vertices,
                duration=duration,
                policy=policy_spec,
            )
        else:
            outcome = variant.conformance(scenario, seed, transport=transport)
        telemetry.finish()
        workers = len(transport.worker_processes())
        delivered = int(
            transport.metrics.counter("net.messages.delivered").value
        )
    finally:
        transport.close()
    wall = time.perf_counter() - started
    latency = (
        None
        if outcome.first_declaration_at is None
        else outcome.first_declaration_at * time_scale
    )
    return ClusterReport(
        variant=variant_name,
        scenario=scenario,
        outcome=outcome,
        wall_seconds=wall,
        detection_latency_seconds=latency,
        detection_latencies_seconds=tuple(
            units * time_scale for units in telemetry.detection_latencies
        ),
        time_scale=time_scale,
        channel=channel,
        workers=workers,
        messages_delivered=delivered,
        seed=seed,
    )


def _run_workload(
    variant_name: str,
    transport: ClusterTransport,
    *,
    scenario: str,
    seed: int,
    n_vertices: int,
    duration: float,
    policy: PolicySpec | None = None,
) -> ConformanceOutcome:
    """A registry-driven workload: churn, then gate on completeness."""
    variant = get_variant(variant_name)
    if scenario in ("deadlock", "clean"):
        # Only reachable with a policy: the conformance pair's registered
        # workload, scheduled under the requested initiation policy.
        spec = conformance_workload(
            variant.capabilities.model, scenario
        ).with_seed(seed)
    else:
        spec = resolve_scenario_spec(
            variant, scenario, seed=seed, n_vertices=n_vertices, duration=duration
        )
    run = provision_workload(variant, spec, transport=transport, policy=policy)
    run.run_to_quiescence()
    return run.summarize()
