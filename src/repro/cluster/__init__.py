"""Multi-process cluster runtime: one worker OS process per node.

The simulator answers "what does the protocol do on this exact
schedule"; the live runtime answers "does the same node code behave on a
real concurrent scheduler"; this package answers "does it survive a real
*distributed* substrate" -- every message serialized to length-prefixed
JSON frames (:mod:`repro.cluster.frames`), shipped over a Unix-domain or
TCP socket to the destination node's worker process, held there until
its injected virtual due time, and delivered back in per-channel FIFO
order (axiom P4 end to end).  :class:`ClusterTransport` implements the
:class:`~repro.core.transport.Transport` contract, so every registered
detector variant gets the backend for free.

The runtime is robust by design: workers retry their dial-in with
deterministic backoff, heartbeat while alive, and shut down gracefully
at quiescence; a worker that dies mid-run surfaces as a typed
:class:`~repro.errors.ClusterError` carrying per-worker
:class:`~repro.errors.WorkerFailure` records, never a hang.
:func:`run_cluster` drives one variant through the standard conformance
scenarios (or a large random workload) on this substrate and reports
detection latency through the same telemetry families as ``repro live``.
"""

from __future__ import annotations

from repro.cluster.runner import ClusterReport, run_cluster
from repro.cluster.transport import ClusterTransport

__all__ = ["ClusterReport", "ClusterTransport", "run_cluster"]
