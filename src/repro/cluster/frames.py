"""Wire format of the cluster backend: length-prefixed JSON frames.

Every byte that crosses a worker boundary is one *frame*: a 4-byte
big-endian length prefix followed by that many bytes of UTF-8 JSON (an
object).  Frames ride ordered byte streams (Unix-domain or TCP sockets),
so frame order on a connection equals write order -- the transport's
per-channel FIFO guarantee (axiom P4) reduces to "one serial writer per
channel" on top of this module.

Protocol messages are arbitrary Python values (frozen dataclasses,
tuples, frozensets, enums, ...), so the JSON payload uses a small tagged
encoding (:func:`encode_value` / :func:`decode_value`).  Decoding never
imports code: a dataclass or enum payload only decodes if its defining
module is already imported, which is always true on the coordinator (it
authored the frame) and turns a forged type reference into a hard error
instead of an import.

The worker program (:mod:`repro.cluster.worker`) deliberately does *not*
import this module -- workers treat payloads as opaque JSON and only
speak the framing, which they inline so that spawning a worker never
imports the repro package.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import json
import struct
import sys
from typing import Any

from repro.errors import ClusterError

#: 4-byte big-endian unsigned frame length, preceding each JSON body.
HEADER = struct.Struct(">I")
#: hard ceiling on one frame's body; a corrupt length prefix otherwise
#: turns into a multi-gigabyte allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_KIND = "__repro__"


def encode_value(value: Any) -> Any:
    """Encode one protocol message (or id) into JSON-able form.

    Handles the shapes registered variants actually send: scalars, frozen
    dataclasses (by ``module:qualname`` plus encoded fields), enums (by
    member name), tuples, sets, frozensets, lists, and dicts with
    arbitrary encodable keys.  Anything else is rejected with a
    :class:`~repro.errors.ClusterError` naming the offending type.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        cls = type(value)
        return {_KIND: "enum", "type": _type_ref(cls), "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: encode_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {_KIND: "dataclass", "type": _type_ref(type(value)), "fields": fields}
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        return {_KIND: "frozenset", "items": [encode_value(item) for item in value]}
    if isinstance(value, set):
        return {_KIND: "set", "items": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {_KIND: "list", "items": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            _KIND: "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise ClusterError(
        f"cluster transport cannot serialize a {type(value).__module__}."
        f"{type(value).__qualname__} message; send JSON scalars, containers, "
        "enums, or dataclasses"
    )


def decode_value(payload: Any) -> Any:
    """Invert :func:`encode_value`; see the module docstring for safety."""
    if not isinstance(payload, dict):
        return payload
    kind = payload.get(_KIND)
    if kind == "tuple":
        return tuple(decode_value(item) for item in payload["items"])
    if kind == "frozenset":
        return frozenset(decode_value(item) for item in payload["items"])
    if kind == "set":
        return {decode_value(item) for item in payload["items"]}
    if kind == "list":
        return [decode_value(item) for item in payload["items"]]
    if kind == "dict":
        return {decode_value(k): decode_value(v) for k, v in payload["items"]}
    if kind == "enum":
        cls = _resolve_type(payload["type"])
        return cls[payload["name"]]
    if kind == "dataclass":
        cls = _resolve_type(payload["type"])
        if not dataclasses.is_dataclass(cls):
            raise ClusterError(f"frame names non-dataclass type {payload['type']!r}")
        fields = {
            name: decode_value(value) for name, value in payload["fields"].items()
        }
        return cls(**fields)
    raise ClusterError(f"frame payload has unknown encoding kind {kind!r}")


def _type_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_type(ref: str) -> Any:
    """Look a ``module:qualname`` reference up in already-imported code."""
    module_name, _, qualname = ref.partition(":")
    module = sys.modules.get(module_name)
    if module is None:
        raise ClusterError(
            f"frame references type {ref!r} from a module that is not "
            "imported; refusing to import code from the wire"
        )
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise ClusterError(f"frame references unknown type {ref!r}")
    return obj


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One complete frame as bytes: header plus JSON body."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); message too large for the cluster wire"
        )
    return HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Parse one frame body; malformed bytes raise :class:`ClusterError`."""
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterError(f"malformed frame body: {error}") from error
    if not isinstance(frame, dict) or "kind" not in frame:
        raise ClusterError("frame body must be a JSON object with a 'kind' field")
    return frame


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame (a peer dying mid-write) raises
    :class:`ClusterError` -- a torn frame is evidence of a failure, not
    a shutdown.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ClusterError("connection closed inside a frame header") from error
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"incoming frame announces {length} bytes "
            f"(> MAX_FRAME_BYTES {MAX_FRAME_BYTES}); stream is corrupt"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ClusterError("connection closed inside a frame body") from error
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, frame: dict[str, Any]) -> None:
    """Write one frame and drain, so backpressure reaches the sender."""
    writer.write(encode_frame(frame))
    await writer.drain()
