"""Typed identifiers used throughout the library.

The paper identifies three kinds of named entities:

* basic-model processes / vertices ``v_i`` (``VertexId``),
* DDB computers / sites ``S_j`` and their controllers ``C_j`` (``SiteId``),
* DDB transactions ``T_i`` (``TransactionId``).

A DDB *process* is the pair ``(T_i, S_j)`` (``ProcessId``); resources are
named by ``ResourceId``.  Probe computations are tagged ``(initiator, n)``
(``ProbeTag``), matching the paper's ``(i, n)`` tags.

All identifiers are lightweight ``NewType`` wrappers over ``int``/``str`` so
they stay hashable, orderable, and cheap, while letting type checkers catch
cross-wiring (e.g. passing a transaction id where a site id is expected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

VertexId = NewType("VertexId", int)
SiteId = NewType("SiteId", int)
TransactionId = NewType("TransactionId", int)
ResourceId = NewType("ResourceId", str)


@dataclass(frozen=True, order=True)
class ProcessId:
    """Identity of a DDB process: the tuple ``(T_i, S_j)`` from the paper.

    A transaction is implemented by a collection of processes with at most
    one process per computer; ``ProcessId`` uniquely identifies one of them.
    """

    transaction: TransactionId
    site: SiteId

    def __str__(self) -> str:
        return f"(T{self.transaction},S{self.site})"


@dataclass(frozen=True, order=True)
class ProbeTag:
    """Tag ``(i, n)`` of the n-th probe computation initiated by ``i``.

    ``initiator`` is a :class:`VertexId` in the basic model and a
    :class:`SiteId` (the controller) in the DDB model; both are ints, so the
    tag is shared between the two models.  ``sequence`` is the per-initiator
    computation counter ``n``.  Tags order lexicographically, which gives the
    "computation (i, n) supersedes (i, k) for k < n" rule from section 4.3
    for free.
    """

    initiator: int
    sequence: int

    def supersedes(self, other: "ProbeTag") -> bool:
        """True iff this tag makes ``other`` obsolete per section 4.3."""
        return self.initiator == other.initiator and self.sequence > other.sequence

    def __str__(self) -> str:
        return f"({self.initiator},{self.sequence})"
