"""OR-model system wrapper with its oracle and verification hooks.

Ground truth for the OR model: a blocked process is deadlocked iff no
active process is reachable from it along dependency edges (grants cascade
back from any reachable active process).  This criterion is *stable* for
quiescent channel states; while a grant is in flight it can flip -- which
is why the detector's soundness leans on per-channel FIFO (a dependent's
reply always travels behind any earlier grant on the same channel, so the
grant wipes the initiator's computation first).  The dedicated ablation
test breaks FIFO to demonstrate the dependence.

Verification mirrors :class:`~repro.basic.system.BasicSystem` and shares
its machinery (:mod:`repro.core.engine`):

* every declaration is checked against the oracle criterion at the
  instant it is made;
* at quiescence, every deadlocked vertex must have a declarer inside its
  dependency closure (the "last blocker" argument in the package docs).
  The closure-based check replaces the SCC walk of the AND models, but it
  reports through the same :class:`~repro.core.engine.CompletenessReport`
  shape, so cross-variant harnesses read all three models uniformly.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro._ids import ProbeTag, VertexId
from repro.core.assembly import build_runtime, require_fleet
from repro.core.transport import Transport, TransportFactory
from repro.core.engine import CompletenessReport, DeclarationLog
from repro.ormodel.initiation import OrInitiationPolicy
from repro.ormodel.vertex import OrVertexProcess
from repro.sim import categories
from repro.sim.network import DelayModel


class OrWaitGraph:
    """Global oracle: dependent sets plus the OR-deadlock criterion."""

    def __init__(self) -> None:
        self._dependents: dict[VertexId, set[VertexId]] = {}

    def set_dependents(self, vertex: VertexId, dependents: set[VertexId]) -> None:
        if dependents:
            self._dependents[vertex] = set(dependents)
        else:
            self._dependents.pop(vertex, None)

    def dependents(self, vertex: VertexId) -> set[VertexId]:
        return set(self._dependents.get(vertex, ()))

    def is_blocked(self, vertex: VertexId) -> bool:
        return vertex in self._dependents

    def closure(self, vertex: VertexId) -> set[VertexId]:
        """Everything reachable from ``vertex`` along dependency edges."""
        reached: set[VertexId] = set()
        stack = [vertex]
        while stack:
            current = stack.pop()
            for nxt in self._dependents.get(current, ()):
                if nxt not in reached:
                    reached.add(nxt)
                    stack.append(nxt)
        return reached

    def is_deadlocked(self, vertex: VertexId) -> bool:
        """OR-model deadlock: blocked, and no active vertex reachable."""
        if vertex not in self._dependents:
            return False
        return all(member in self._dependents for member in self.closure(vertex))

    def deadlocked_vertices(self) -> set[VertexId]:
        return {v for v in self._dependents if self.is_deadlocked(v)}

    def __repr__(self) -> str:
        return f"OrWaitGraph(blocked={len(self._dependents)})"


@dataclass(frozen=True)
class OrDeclaration:
    """One OR-model deadlock declaration with its oracle verdict."""

    time: float
    vertex: VertexId
    tag: ProbeTag
    deadlocked: bool


class OrSystem:
    """A ready-to-run OR-model system.

    Parameters parallel :class:`BasicSystem`; ``auto_initiate`` runs a
    query computation the moment a vertex blocks (the section 4.2 rule
    transplanted: the last member of a deadlocked closure to block detects
    it).  Passing ``initiation`` (an
    :class:`~repro.ormodel.initiation.OrInitiationPolicy`) replaces the
    hard-wired rule with a registered scheduling policy -- ``immediate``
    reproduces ``auto_initiate``, ``delayed``/``adaptive`` transplant the
    section 4.3 window.
    """

    def __init__(
        self,
        n_vertices: int,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        service_delay: float = 1.0,
        auto_grant: bool = True,
        auto_initiate: bool = True,
        strict: bool = True,
        trace: bool = True,
        fifo: bool = True,
        transport: Transport | TransportFactory | None = None,
        initiation: OrInitiationPolicy | None = None,
    ) -> None:
        require_fleet(n_vertices, "vertex")
        runtime = build_runtime(
            seed=seed, delay_model=delay_model, trace=trace, fifo=fifo,
            transport=transport,
        )
        self.transport = runtime.transport
        self.simulator = runtime.simulator
        self.network = runtime.network
        self.oracle = OrWaitGraph()
        self.auto_initiate = auto_initiate
        self.initiation = initiation
        self._log: DeclarationLog[OrDeclaration] = DeclarationLog(strict=strict)
        self.declarations = self._log.declarations
        self.soundness_violations = self._log.violations
        #: grants currently in flight, as (granter, grantee) multiset --
        #: needed because the state-only criterion is not stable while a
        #: grant is travelling (its receiver is about to unblock).
        self._grants_in_flight: dict[tuple[VertexId, VertexId], int] = {}
        self.transport.tracer.subscribe(
            self._observe,
            categories=(categories.NET_SENT, categories.NET_DELIVERED),
        )
        self.vertices: dict[VertexId, OrVertexProcess] = {}
        for i in range(n_vertices):
            vid = VertexId(i)
            vertex = OrVertexProcess(
                vertex_id=vid,
                oracle=self.oracle,
                service_delay=service_delay,
                auto_grant=auto_grant,
                on_declare=self._handle_declare,
            )
            self.transport.register(vertex)
            if self.initiation is not None:
                vertex.initiation_unblocked = self._on_initiation_unblocked
                self.initiation.setup(vertex)
            self.vertices[vid] = vertex

    # ------------------------------------------------------------------

    def vertex(self, i: int) -> OrVertexProcess:
        return self.vertices[VertexId(i)]

    @property
    def now(self) -> float:
        return self.transport.now

    @property
    def metrics(self):
        return self.transport.metrics

    @property
    def strict(self) -> bool:
        return self._log.strict

    @strict.setter
    def strict(self, value: bool) -> None:
        self._log.strict = value

    def request_any(self, source: int, targets: Iterable[int]) -> None:
        vertex = self.vertex(source)
        vertex.request_any([VertexId(t) for t in targets])
        if self.initiation is not None:
            if vertex.blocked:
                self.initiation.on_vertex_blocked(vertex)
        elif self.auto_initiate:
            vertex.initiate_detection()

    def _on_initiation_unblocked(self, vertex: OrVertexProcess) -> None:
        assert self.initiation is not None
        self.initiation.on_vertex_unblocked(vertex)

    def schedule_request(self, time: float, source: int, targets: Iterable[int]) -> None:
        frozen = list(targets)
        self.transport.schedule_at(
            time,
            lambda: self.request_any(source, frozen),
            name=f"or-request v{source}->{frozen}",
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        self.transport.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        self.transport.run_to_quiescence(max_events=max_events)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def _observe(self, event) -> None:
        from repro.ormodel.messages import Grant

        if event.category == categories.NET_SENT and isinstance(event["message"], Grant):
            key = (event["sender"], event["destination"])
            self._grants_in_flight[key] = self._grants_in_flight.get(key, 0) + 1
        elif event.category == categories.NET_DELIVERED and isinstance(event["message"], Grant):
            key = (event["sender"], event["destination"])
            self._grants_in_flight[key] -= 1
            if not self._grants_in_flight[key]:
                del self._grants_in_flight[key]

    def truly_deadlocked(self, vertex: VertexId) -> bool:
        """Channel-aware ground truth: the state criterion holds AND no
        in-flight grant targets the vertex or anything in its closure."""
        if not self.oracle.is_deadlocked(vertex):
            return False
        closure = self.oracle.closure(vertex) | {vertex}
        return not any(
            grantee in closure for (_, grantee) in self._grants_in_flight
        )

    def _handle_declare(self, vertex: OrVertexProcess, tag: ProbeTag) -> None:
        deadlocked = self.truly_deadlocked(vertex.vertex_id)
        declaration = OrDeclaration(
            time=self.now, vertex=vertex.vertex_id, tag=tag, deadlocked=deadlocked
        )
        self._log.record(
            declaration,
            sound=deadlocked,
            complaint=(
                f"OR soundness violated: vertex {vertex.vertex_id} declared at "
                f"t={self.now} but an active vertex is reachable"
            ),
        )

    def assert_soundness(self) -> None:
        self._log.assert_sound("OR soundness violated by: ")

    def completeness_report(self) -> CompletenessReport[VertexId]:
        """Quiescence-time check under the OR criterion.

        A deadlocked vertex's "component" is its dependency closure (plus
        itself); the closure must contain a declarer.  Closures that share
        a declarer are reported once each -- the per-vertex obligation is
        what the "last blocker" argument guarantees.
        """
        declared = {d.vertex for d in self.declarations}
        deadlocked = self.oracle.deadlocked_vertices()
        report: CompletenessReport[VertexId] = CompletenessReport(
            deadlocked_vertices=deadlocked, declared_vertices=declared
        )
        for vertex in sorted(deadlocked):
            closure = self.oracle.closure(vertex) | {vertex}
            if not closure & declared:
                report.undetected_components.append(closure)
        return report

    def assert_completeness(self) -> None:
        """Every deadlocked vertex has a declarer in its closure (or is
        one itself)."""
        declared = {d.vertex for d in self.declarations}
        for vertex in sorted(self.oracle.deadlocked_vertices()):
            closure = self.oracle.closure(vertex) | {vertex}
            if not closure & declared:
                raise AssertionError(
                    f"OR completeness violated: deadlocked vertex {vertex} has no "
                    f"declarer in its closure {sorted(closure)}"
                )

    def __repr__(self) -> str:
        return (
            f"OrSystem(n={len(self.vertices)}, t={self.now}, "
            f"declared={len(self.declarations)})"
        )
