"""OR-model vertex processes and the embedded query/reply detector.

Underlying computation: a process blocks on a *dependent set* and resumes
on the first :class:`Grant` from any member (the "any" semantics).  Active
processes grant their queued communication requests after a service delay;
blocked processes may not grant (the communication-model analogue of G3).

Detector (Chandy-Misra-Haas communication model, a diffusing computation):

* on initiation, a blocked process sends ``query(tag)`` to every member of
  its dependent set and remembers the outstanding count;
* a blocked process receiving the **first** query of a computation (the
  *engaging* query) records its sender, forwards queries to its own
  dependent set, and counts them; with an empty... (dependent sets are
  never empty while blocked, by construction);
* a blocked process receiving a **later** query of the same computation
  replies immediately (it has been continuously blocked since engagement
  -- becoming active wipes the state, see below);
* replies decrement the outstanding count; at zero, a non-initiator
  replies to its engaging sender, and the initiator **declares deadlock**:
  its entire dependent closure is blocked;
* an **active** process discards queries and replies, and *unblocking
  wipes all computation state* -- stale detector traffic from before the
  unblock can then never fabricate evidence.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass

from repro._ids import ProbeTag, VertexId
from repro.errors import ProtocolError
from repro.ormodel.messages import Grant, OrQuery, OrReply, RequestAny
from repro.sim import categories
from repro.sim.process import Process


@dataclass
class _OrComputation:
    """Per-computation detector state at one vertex."""

    tag: ProbeTag
    #: who sent the engaging query (None at the initiator)
    engaging_sender: VertexId | None
    #: queries forwarded and not yet answered
    outstanding: int
    replied: bool = False


class OrVertexProcess(Process):
    """One process of the OR/communication model."""

    def __init__(
        self,
        vertex_id: VertexId,
        oracle: "object",
        service_delay: float = 1.0,
        auto_grant: bool = True,
        on_declare: Callable[["OrVertexProcess", ProbeTag], None] | None = None,
    ) -> None:
        super().__init__(vertex_id)
        self.vertex_id = vertex_id
        self.oracle = oracle
        self.service_delay = service_delay
        self.auto_grant = auto_grant
        self._on_declare = on_declare
        #: the dependent set while blocked; empty when active
        self.dependent_set: set[VertexId] = set()
        #: queued communication requests awaiting this vertex's grant
        self.pending_grants: set[VertexId] = set()
        self._grant_scheduled = False
        self._computations: dict[int, _OrComputation] = {}
        self._next_sequence = 1
        self.declared: list[ProbeTag] = []
        #: workload hook
        self.unblocked_callback: Callable[["OrVertexProcess"], None] | None = None
        #: system hook for policy-driven initiation (fires on unblock,
        #: before the workload hook; None under hard-wired auto_initiate)
        self.initiation_unblocked: Callable[["OrVertexProcess"], None] | None = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def blocked(self) -> bool:
        return bool(self.dependent_set)

    @property
    def active(self) -> bool:
        return not self.dependent_set

    @property
    def deadlocked(self) -> bool:
        return bool(self.declared)

    # ------------------------------------------------------------------
    # Underlying computation
    # ------------------------------------------------------------------

    def request_any(self, targets: Iterable[VertexId]) -> None:
        """Block until ANY member of ``targets`` grants."""
        batch = sorted(set(targets))
        if not batch:
            return
        if self.blocked:
            raise ProtocolError(f"vertex {self.vertex_id} is already blocked")
        if self.vertex_id in batch:
            raise ProtocolError(f"vertex {self.vertex_id} cannot wait on itself")
        self.dependent_set = set(batch)
        self.oracle.set_dependents(self.vertex_id, set(batch))
        self.ctx.trace(
            categories.OR_REQUEST_SENT, source=self.vertex_id, targets=tuple(batch)
        )
        for target in batch:
            self.send(target, RequestAny(requester=self.vertex_id))

    def grant_to(self, requester: VertexId) -> None:
        """Manually grant one queued request (driver use, auto_grant off)."""
        if requester not in self.pending_grants:
            raise ProtocolError(
                f"vertex {self.vertex_id} has no pending request from {requester}"
            )
        if self.blocked:
            raise ProtocolError(
                f"vertex {self.vertex_id} is blocked and may not grant"
            )
        self._emit_grant(requester)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def initiate_detection(self) -> ProbeTag | None:
        """Start a query computation; no-op (returns None) when active."""
        if not self.blocked:
            return None
        tag = ProbeTag(initiator=int(self.vertex_id), sequence=self._next_sequence)
        self._next_sequence += 1
        self._computations[tag.initiator] = _OrComputation(
            tag=tag, engaging_sender=None, outstanding=len(self.dependent_set)
        )
        self.ctx.counter("or.computations.initiated").increment()
        for target in sorted(self.dependent_set):
            self._send_query(target, OrQuery(tag=tag, sender=self.vertex_id))
        return tag

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: Hashable, message: object) -> None:
        if isinstance(message, RequestAny):
            self._on_request_any(message)
        elif isinstance(message, Grant):
            self._on_grant(message)
        elif isinstance(message, OrQuery):
            self._on_query(message)
        elif isinstance(message, OrReply):
            self._on_reply(message)
        else:
            raise ProtocolError(
                f"or-vertex {self.vertex_id} got unknown message {message!r}"
            )

    def _on_request_any(self, message: RequestAny) -> None:
        self.pending_grants.add(message.requester)
        if self.auto_grant:
            self._schedule_grants()

    def _on_grant(self, message: Grant) -> None:
        if message.granter not in self.dependent_set:
            # A stale grant from a dependent set already satisfied.
            self.ctx.counter("or.grants.stale").increment()
            return
        self.ctx.trace(
            categories.OR_UNBLOCKED, vertex=self.vertex_id, granter=message.granter
        )
        self.dependent_set.clear()
        self.oracle.set_dependents(self.vertex_id, set())
        # Unblocking wipes every computation's state: stale queries and
        # replies must find nothing to act on (soundness).
        self._computations.clear()
        if self.initiation_unblocked is not None:
            self.initiation_unblocked(self)
        if self.auto_grant:
            self._schedule_grants()
        if self.unblocked_callback is not None:
            self.unblocked_callback(self)

    # -- detector ---------------------------------------------------------

    def _on_query(self, query: OrQuery) -> None:
        self.ctx.counter("or.queries.received").increment()
        if not self.blocked:
            return  # active processes discard detector traffic
        tag = query.tag
        record = self._computations.get(tag.initiator)
        if record is not None and tag.sequence < record.tag.sequence:
            return  # superseded computation
        if record is None or tag.sequence > record.tag.sequence:
            # Engaging query: forward to the whole dependent set.
            record = _OrComputation(
                tag=tag,
                engaging_sender=query.sender,
                outstanding=len(self.dependent_set),
            )
            self._computations[tag.initiator] = record
            for target in sorted(self.dependent_set):
                self._send_query(target, OrQuery(tag=tag, sender=self.vertex_id))
            return
        # Non-engaging query of the current computation: reply at once
        # (this vertex has been continuously blocked since engagement --
        # unblocking would have wiped the record).
        self._send_reply(query.sender, OrReply(tag=tag, sender=self.vertex_id))

    def _on_reply(self, reply: OrReply) -> None:
        self.ctx.counter("or.replies.received").increment()
        if not self.blocked:
            return
        tag = reply.tag
        record = self._computations.get(tag.initiator)
        if record is None or record.tag != tag or record.replied:
            return
        record.outstanding -= 1
        if record.outstanding > 0:
            return
        if record.engaging_sender is None:
            # A1-analogue: the initiator collected replies from its whole
            # dependent closure -- everyone out there is blocked.
            if tag not in self.declared:
                self.declared.append(tag)
                self.ctx.counter("or.deadlocks.declared").increment()
                self.ctx.trace(
                    categories.OR_DEADLOCK_DECLARED, vertex=self.vertex_id, tag=tag
                )
                if self._on_declare is not None:
                    self._on_declare(self, tag)
            return
        record.replied = True
        self._send_reply(
            record.engaging_sender, OrReply(tag=tag, sender=self.vertex_id)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send_query(self, target: VertexId, query: OrQuery) -> None:
        self.ctx.counter("or.queries.sent").increment()
        self.send(target, query)

    def _send_reply(self, target: VertexId, reply: OrReply) -> None:
        self.ctx.counter("or.replies.sent").increment()
        self.send(target, reply)

    def _schedule_grants(self) -> None:
        if self._grant_scheduled or not self.pending_grants or self.blocked:
            return
        self._grant_scheduled = True
        self.ctx.set_timer(
            self.service_delay, self._grant_all, name=f"or-grant v{self.vertex_id}"
        )

    def _grant_all(self) -> None:
        self._grant_scheduled = False
        if self.blocked:
            return  # blocked again; will re-schedule on unblock
        for requester in sorted(self.pending_grants):
            self._emit_grant(requester)

    def _emit_grant(self, requester: VertexId) -> None:
        self.pending_grants.discard(requester)
        self.ctx.trace(
            categories.OR_GRANT_SENT, source=self.vertex_id, target=requester
        )
        self.send(requester, Grant(granter=self.vertex_id))

    def __repr__(self) -> str:
        state = "blocked" if self.blocked else "active"
        return f"OrVertexProcess(v{self.vertex_id}, {state})"
