"""The OR (communication) model: the paper's flagged future work.

Section 1 contrasts the paper's AND/resource model with the *message
model* of its reference [1]: there, "a process which is waiting to
communicate with other processes cannot proceed ... until it communicates
with ANY one of the processes it is waiting for", and "the any/all
difference in these models results in completely different algorithms".
Section 7 closes with "a great deal of work remains ... on developing
algorithms for different types of distributed systems".

This package implements that other algorithm -- the communication-model
detector the authors published in the follow-up TOCS paper (Chandy, Misra
& Haas 1983), which is itself a diffusing computation in the style of
Dijkstra & Scholten's termination detection (the very paper the
acknowledgements credit as the origin of this line of work):

* a blocked process *queries* every member of its dependent set;
* the first query of a computation *engages* a blocked receiver, which
  forwards queries to its own dependent set and counts outstanding ones;
* non-engaging queries to a continuously blocked process are answered
  immediately; active processes discard queries;
* when an engaged process has collected replies for all its queries it
  replies to its engaging query; when the *initiator* collects all its
  replies, its dependent closure is entirely blocked -- an OR-model
  deadlock -- and it declares.

Ground truth in the OR model: a blocked process is deadlocked iff **no
active process is reachable** from it along dependency edges (any active
reachable process eventually grants someone, and the unblocking cascades
back).  The :class:`~repro.ormodel.system.OrSystem` oracle checks every
declaration against exactly that criterion.
"""

from repro.ormodel.messages import Grant, OrQuery, OrReply, RequestAny
from repro.ormodel.system import OrDeclaration, OrSystem
from repro.ormodel.vertex import OrVertexProcess

__all__ = [
    "Grant",
    "OrDeclaration",
    "OrQuery",
    "OrReply",
    "OrSystem",
    "OrVertexProcess",
    "RequestAny",
]
