"""OR-model adapter onto the scheduling seam (section 7).

Historically the OR model hard-wired the section 4.2 rule
(``auto_initiate``: run a query computation the moment a vertex blocks).
This module opens that knob to the shared policy registry
(:mod:`repro.core.scheduling`): an :class:`OrPolicyInitiation` drives
:class:`~repro.ormodel.vertex.OrVertexProcess` detection from any
registered policy -- ``immediate`` reproduces ``auto_initiate``,
``delayed`` transplants the section 4.3 window (a query computation
starts only after the vertex has been blocked continuously for ``T``),
and ``adaptive`` closes the loop from observed blocking lifetimes.

The wait vocabulary: an OR vertex blocks on its whole dependent set at
once and unblocks on the first grant, so the *subject* of the wait is
the vertex itself -- one wait episode per blocking, exactly like the
DDB's per-process subjects.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING

from repro.core import scheduling
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transport import NodeContext
    from repro.ormodel.vertex import OrVertexProcess


class OrInitiationPolicy:
    """Interface; one policy instance is shared by all vertices."""

    def setup(self, vertex: "OrVertexProcess") -> None:
        """Called once per vertex at system construction."""

    def on_vertex_blocked(self, vertex: "OrVertexProcess") -> None:
        """``vertex`` just blocked on its dependent set."""
        raise NotImplementedError

    def on_vertex_unblocked(self, vertex: "OrVertexProcess") -> None:
        """``vertex`` resumed (first grant arrived)."""
        raise NotImplementedError


class _OrVertexSite:
    """One OR vertex, in the seam's site vocabulary."""

    __slots__ = ("vertex",)

    def __init__(self, vertex: "OrVertexProcess") -> None:
        self.vertex = vertex

    @property
    def ctx(self) -> "NodeContext":
        return self.vertex.ctx

    @property
    def site_key(self) -> Hashable:
        return self.vertex.vertex_id

    def initiate(self, subject: Hashable) -> None:
        self.vertex.initiate_detection()

    def is_waiting(self, subject: Hashable) -> bool:
        return self.vertex.blocked

    def timer_name(self, subject: Hashable) -> str:
        return f"or T-timer v{self.vertex.vertex_id}"

    def note_avoided(self) -> None:
        self.vertex.ctx.counter("or.computations.avoided").increment()

    def scan(self, optimized: bool) -> None:
        raise ConfigurationError(
            "the OR model has no controller scans; the 'periodic' policy "
            "drives DDB controllers only"
        )

    def scan_timer_name(self) -> str:
        raise ConfigurationError(
            "the OR model has no controller scans; the 'periodic' policy "
            "drives DDB controllers only"
        )


class OrPolicyInitiation(OrInitiationPolicy):
    """Drive OR vertices from a core scheduling policy instance."""

    def __init__(self, policy: scheduling.InitiationPolicy) -> None:
        self.policy = policy

    def setup(self, vertex: "OrVertexProcess") -> None:
        self.policy.setup(_OrVertexSite(vertex))

    def on_vertex_blocked(self, vertex: "OrVertexProcess") -> None:
        self.policy.on_waits_started(_OrVertexSite(vertex), (vertex.vertex_id,))

    def on_vertex_unblocked(self, vertex: "OrVertexProcess") -> None:
        self.policy.on_wait_resolved(_OrVertexSite(vertex), vertex.vertex_id)


def from_policy_spec(spec: scheduling.PolicySpec) -> OrPolicyInitiation:
    """Resolve a registered policy spec into an OR-model initiation."""
    return OrPolicyInitiation(scheduling.build_policy(spec, model="ormodel"))
