"""Messages of the OR-model underlying computation and its detector."""

from __future__ import annotations

from dataclasses import dataclass

from repro._ids import ProbeTag, VertexId


@dataclass(frozen=True, slots=True)
class RequestAny:
    """``p_i`` asks to communicate with the receiver; ``p_i`` proceeds as
    soon as ANY member of its dependent set grants."""

    requester: VertexId


@dataclass(frozen=True, slots=True)
class Grant:
    """The receiver's awaited communication.  The first grant unblocks the
    requester; later grants (from other dependent-set members) are stale
    and ignored."""

    granter: VertexId


@dataclass(frozen=True, slots=True)
class OrQuery:
    """query(i, m, j) of the communication-model algorithm.

    ``tag`` identifies the computation (initiator i and its sequence
    number); ``sender`` is m, the process forwarding the query.
    """

    tag: ProbeTag
    sender: VertexId


@dataclass(frozen=True, slots=True)
class OrReply:
    """reply(i, j, m): the answer to a query of computation ``tag``."""

    tag: ProbeTag
    sender: VertexId
