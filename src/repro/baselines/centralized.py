"""Centralized deadlock detection (periodic global WFG collection).

A coordinator polls every vertex each round; vertices answer with their
current outgoing-edge set.  Answers arrive after independent network
delays, so the snapshots composing one round were taken at *different
instants*; the coordinator then runs cycle detection on the union.  This
is the classic centralized scheme the distributed literature (Menasce &
Muntz's centralized variant, Ho & Ramamoorthy's one-phase protocol)
improves on, and its well-known failure mode is visible here: an edge
reported by vertex A early in the round can combine with an edge reported
by vertex B later -- after A's edge was already deleted -- into a cycle
that never existed.  (Ho & Ramamoorthy's two-phase fix re-polls and
intersects; we keep the one-phase variant as the paper-era baseline.)

Cost: 2N messages per round (poll + reply), even when nothing is blocked.
"""

from __future__ import annotations

from repro._algo import cyclic_sccs
from repro._ids import VertexId
from repro.baselines.base import BaselineDetector
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError


class CentralizedDetector(BaselineDetector):
    """Coordinator-based periodic WFG collection.

    Parameters
    ----------
    system:
        The basic-model system to observe.
    period:
        Virtual time between collection rounds.
    horizon:
        No rounds start after this time (bounds the simulation).
    min_delay, max_delay:
        Uniform one-way network delay for polls and replies.
    """

    name = "centralized"

    def __init__(
        self,
        system: BasicSystem,
        period: float = 10.0,
        horizon: float = 100.0,
        min_delay: float = 0.5,
        max_delay: float = 2.0,
    ) -> None:
        super().__init__(system)
        if period <= 0:
            raise ConfigurationError("period must be positive")
        if not 0 <= min_delay <= max_delay:
            raise ConfigurationError("need 0 <= min_delay <= max_delay")
        self.period = period
        self.horizon = horizon
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.rounds_completed = 0

    def start(self) -> None:
        self.system.transport.schedule(
            self.period, self._begin_round, name="centralized round"
        )

    # ------------------------------------------------------------------

    def _delay(self) -> float:
        return self._rng.uniform(self.min_delay, self.max_delay)

    def _begin_round(self) -> None:
        vertices = list(self.system.vertices)
        # Poll + reply for every vertex.
        self._charge_messages(2 * len(vertices))
        round_state: dict[VertexId, set[VertexId]] = {}
        expected = len(vertices)

        def snapshot(vertex_id: VertexId) -> None:
            # The poll has arrived at the vertex: it reports its current
            # outgoing edges (P3 local knowledge) as of *this* instant.
            edges = set(self.system.vertices[vertex_id].pending_out)

            def deliver_report() -> None:
                round_state[vertex_id] = edges
                if len(round_state) == expected:
                    self._evaluate(round_state)

            self.system.transport.schedule(
                self._delay(), deliver_report, name="centralized report"
            )

        for vertex_id in vertices:
            self.system.transport.schedule(
                self._delay(),
                lambda vertex_id=vertex_id: snapshot(vertex_id),
                name="centralized poll",
            )

        if self.system.now + self.period <= self.horizon:
            self.system.transport.schedule(
                self.period, self._begin_round, name="centralized round"
            )

    def _evaluate(self, round_state: dict[VertexId, set[VertexId]]) -> None:
        self.rounds_completed += 1
        adjacency = {vertex: sorted(targets) for vertex, targets in round_state.items()}
        for component in cyclic_sccs(adjacency):
            for vertex in sorted(component):
                self._declare(vertex)
