"""Timeout-based deadlock "detection".

The simplest deployed scheme: declare any process blocked continuously
for longer than ``window`` deadlocked.  It needs no messages at all and
never misses a real deadlock (a dark cycle blocks its members forever),
but every long-but-finite wait becomes a false positive -- which is why
the window choice is hopeless under variable load, and why the paper's
exact algorithm matters.  Used as the floor baseline in experiment E8.
"""

from __future__ import annotations

from repro._ids import VertexId
from repro.baselines.base import BaselineDetector
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.sim import categories
from repro.sim.trace import TraceEvent


class TimeoutDetector(BaselineDetector):
    """Declare vertices blocked longer than ``window`` deadlocked."""

    name = "timeout"

    def __init__(self, system: BasicSystem, window: float = 20.0) -> None:
        super().__init__(system)
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.window = window
        #: per-vertex blocking-episode counter (invalidates stale checks)
        self._episode: dict[VertexId, int] = {v: 0 for v in system.vertices}
        self._blocked_since: dict[VertexId, float] = {}

    def start(self) -> None:
        self.system.transport.tracer.subscribe(self._observe)

    # ------------------------------------------------------------------

    def _observe(self, event: TraceEvent) -> None:
        if event.category == categories.BASIC_REQUEST_SENT:
            vertex_id = event["source"]
            if vertex_id not in self._blocked_since:
                self._blocked_since[vertex_id] = event.time
                episode = self._episode[vertex_id]
                self.system.transport.schedule(
                    self.window,
                    lambda v=vertex_id, e=episode: self._check(v, e),
                    name=f"timeout check v{vertex_id}",
                )
        elif event.category == categories.BASIC_UNBLOCKED:
            vertex_id = event["vertex"]
            self._blocked_since.pop(vertex_id, None)
            self._episode[vertex_id] += 1

    def _check(self, vertex_id: VertexId, episode: int) -> None:
        if self._episode[vertex_id] != episode:
            return  # the episode ended; the wait resolved in time
        if vertex_id in self._blocked_since:
            self._declare(vertex_id)
