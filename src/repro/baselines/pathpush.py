"""Path-pushing deadlock detection (Obermarck style, reference [7]).

Obermarck's R* algorithm has each site periodically send the wait-for
*paths* it knows about to the sites its transactions wait toward; a site
seeing a path that returns to one of its own transactions declares a
deadlock.  We adapt the scheme from sites to basic-model vertices:

* each vertex ``v`` keeps a set of paths (vertex tuples) that it believes
  currently end at ``v``;
* periodically, every blocked vertex extends each of its paths (and the
  trivial path ``(v,)``) with each successor ``w`` and sends the result
  to ``w`` (one message per path per successor, deduplicated);
* a vertex receiving a path in which it already appears declares a cycle.

The known defect is inherited faithfully: path fragments are relayed with
delays, so a fragment can describe edges that no longer exist by the time
it closes a "cycle" -- phantom deadlocks under churn (Gligor & Shattuck's
critique, and the reason the probe computation re-validates at every hop
via the meaningful-probe rule instead of trusting forwarded state).
"""

from __future__ import annotations

from repro._ids import VertexId
from repro.baselines.base import BaselineDetector
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError

Path = tuple[VertexId, ...]


class PathPushingDetector(BaselineDetector):
    """Periodic path propagation along wait-for edges.

    Parameters mirror :class:`CentralizedDetector`; ``max_path_length``
    caps relayed paths (Obermarck caps by the number of sites).
    """

    name = "pathpush"

    def __init__(
        self,
        system: BasicSystem,
        period: float = 10.0,
        horizon: float = 100.0,
        min_delay: float = 0.5,
        max_delay: float = 2.0,
        max_path_length: int | None = None,
    ) -> None:
        super().__init__(system)
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.period = period
        self.horizon = horizon
        self.min_delay = min_delay
        self.max_delay = max_delay
        # A path that closes an N-cycle carries N+1 entries (the repeated
        # vertex appears at both ends), so the default cap is N+1.
        self.max_path_length = (
            max_path_length if max_path_length is not None else len(system.vertices) + 1
        )
        #: paths each vertex believes end at it
        self._paths: dict[VertexId, set[Path]] = {v: set() for v in system.vertices}
        #: (sender, path, receiver) triples already transmitted
        self._sent: set[tuple[VertexId, Path, VertexId]] = set()

    def start(self) -> None:
        self.system.transport.schedule(self.period, self._round, name="pathpush round")

    # ------------------------------------------------------------------

    def _round(self) -> None:
        for vertex_id, vertex in sorted(self.system.vertices.items()):
            if not vertex.blocked:
                # An active vertex's stored paths are stale; drop them
                # (its waits resolved, so chains through it broke).
                self._paths[vertex_id].clear()
                continue
            outgoing = sorted(vertex.pending_out)
            candidates = {(vertex_id,)} | {
                path for path in self._paths[vertex_id] if len(path) < self.max_path_length
            }
            for successor in outgoing:
                for path in sorted(candidates):
                    key = (vertex_id, path, successor)
                    if key in self._sent:
                        continue
                    self._sent.add(key)
                    self._charge_messages(1)
                    extended = path + (successor,)
                    self.system.transport.schedule(
                        self._rng.uniform(self.min_delay, self.max_delay),
                        lambda succ=successor, ext=extended: self._receive(succ, ext),
                        name="pathpush message",
                    )
        if self.system.now + self.period <= self.horizon:
            self.system.transport.schedule(
                self.period, self._round, name="pathpush round"
            )

    def _receive(self, vertex_id: VertexId, path: Path) -> None:
        assert path[-1] == vertex_id
        if vertex_id in path[:-1]:
            # The path returned to a vertex it already contains: the
            # detector believes it found a cycle.
            self._declare(vertex_id)
            return
        self._paths[vertex_id].add(path)
