"""Baseline deadlock detectors for the comparison experiments.

The paper's introduction quotes Gligor & Shattuck: "few of these protocols
are correct and fewer appear to be practical."  To quantify that claim
(experiment E8) we implement the three families the 1980 literature used,
as overlays on the basic model:

* :class:`~repro.baselines.centralized.CentralizedDetector` -- a
  coordinator periodically collects each vertex's outgoing edges and runs
  cycle detection on the union (Ho-Ramamoorthy / centralized
  Menasce-Muntz style).  Because the per-vertex snapshots are taken at
  different instants, edges from different times can form cycles that
  never coexisted: phantom deadlocks.
* :class:`~repro.baselines.pathpush.PathPushingDetector` -- vertices
  periodically push wait-for path strings downstream (Obermarck's R*
  algorithm [reference 7], adapted from sites to vertices).  Stale path
  fragments combine into phantom cycles under churn.
* :class:`~repro.baselines.timeout.TimeoutDetector` -- declare any vertex
  blocked longer than W deadlocked.  Trivially complete, wildly unsound.
* :class:`~repro.baselines.snapshot.SnapshotDetector` -- consistent global
  snapshots via the Chandy-Lamport marker algorithm (the first author's
  1985 follow-up): the phantom-free fix for centralized collection, at
  N*(N-1) markers per round.  Included to bracket the probe computation
  from the *correct* side of the design space.

Every baseline records its detections with a ground-truth verdict from the
oracle and counts the messages it would have sent, so the E8 table compares
correctness and cost on equal terms with the probe computation.
"""

from repro.baselines.base import BaselineDetection, BaselineReport
from repro.baselines.centralized import CentralizedDetector
from repro.baselines.pathpush import PathPushingDetector
from repro.baselines.snapshot import SnapshotDetector
from repro.baselines.timeout import TimeoutDetector

__all__ = [
    "BaselineDetection",
    "BaselineReport",
    "CentralizedDetector",
    "PathPushingDetector",
    "SnapshotDetector",
    "TimeoutDetector",
]
