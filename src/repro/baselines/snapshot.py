"""Snapshot-based deadlock detection (Chandy & Lamport 1985).

The centralized baseline's phantom problem is snapshot inconsistency:
per-vertex states recorded at different instants can compose into a cycle
that never existed.  The fix -- published by this paper's first author
three years later -- is the marker algorithm for **consistent global
snapshots**: since deadlock is a *stable* property, any deadlock visible
in a consistent snapshot genuinely existed when the snapshot completed,
so detection on snapshots is phantom-free by construction.

Protocol (markers ride the same FIFO channels as the computation):

* the initiating vertex records its local state (its outgoing wait-for
  edges) and sends a marker on its channel to every other vertex;
* on its *first* marker, a vertex records its state, starts recording
  every incoming channel, and sends markers to everyone;
* a marker arriving on a channel closes that channel's recording; the
  messages recorded on channel (j, i) are those delivered after i's state
  record and before j's marker;
* when every vertex has recorded and every channel is closed, the states
  are assembled (one report message per vertex, as in the centralized
  scheme).

Deadlock evaluation on the cut: include edge (i, j) iff j is in i's
recorded outgoing set and no reply from j appears in the recorded channel
(j, i) -- an in-flight reply means the edge was white at the cut, and a
white edge cannot be part of a (stable) deadlock.  Cycles over the
remaining (dark-at-the-cut) edges are real deadlocks.

Cost: N*(N-1) markers plus N reports per snapshot round, against the probe
computation's one-probe-per-edge-per-blocked-computation -- correctness
equal, price higher, which is exactly where the paper's algorithm sits in
the design space (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._algo import cyclic_sccs
from repro._ids import VertexId
from repro.baselines.base import BaselineDetector
from repro.basic.messages import Reply
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.sim import categories
from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class Marker:
    """The Chandy-Lamport marker for snapshot round ``round_id``."""

    round_id: int


@dataclass
class _RoundState:
    """Bookkeeping for one in-progress snapshot round."""

    round_id: int
    #: vertex -> recorded outgoing edges (state record)
    states: dict[VertexId, frozenset] = field(default_factory=dict)
    #: (source, target) -> recorded in-flight messages
    channels: dict[tuple[VertexId, VertexId], list] = field(default_factory=dict)
    #: channels whose marker has arrived
    closed: set[tuple[VertexId, VertexId]] = field(default_factory=set)
    complete: bool = False


class SnapshotDetector(BaselineDetector):
    """Periodic consistent-snapshot deadlock detection.

    Markers travel through the vertices' own network channels (via the
    vertex ``foreign_handler`` hook) so the FIFO interleaving with
    requests and replies is exactly the algorithm's requirement.
    """

    name = "snapshot"

    def __init__(
        self,
        system: BasicSystem,
        period: float = 10.0,
        horizon: float = 100.0,
        initiator: int = 0,
    ) -> None:
        super().__init__(system)
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.period = period
        self.horizon = horizon
        self.initiator = VertexId(initiator)
        self._round: _RoundState | None = None
        self._next_round_id = 1
        self.rounds_completed = 0
        for vertex in system.vertices.values():
            vertex.foreign_handler = self._make_handler(vertex.vertex_id)
        system.transport.tracer.subscribe(self._observe_delivery)

    def start(self) -> None:
        self.system.transport.schedule(self.period, self._begin_round, name="snapshot")

    # ------------------------------------------------------------------
    # Round orchestration
    # ------------------------------------------------------------------

    def _all_vertices(self) -> list[VertexId]:
        return sorted(self.system.vertices)

    def _begin_round(self) -> None:
        if self._round is None or self._round.complete:
            round_state = _RoundState(round_id=self._next_round_id)
            self._next_round_id += 1
            self._round = round_state
            self._record_state(self.initiator)
            self._emit_markers(self.initiator)
        if self.system.now + self.period <= self.horizon:
            self.system.transport.schedule(
                self.period, self._begin_round, name="snapshot"
            )

    def _record_state(self, vertex_id: VertexId) -> None:
        assert self._round is not None
        vertex = self.system.vertices[vertex_id]
        self._round.states[vertex_id] = frozenset(vertex.pending_out)
        for other in self._all_vertices():
            if other != vertex_id:
                self._round.channels.setdefault((other, vertex_id), [])

    def _emit_markers(self, vertex_id: VertexId) -> None:
        assert self._round is not None
        vertex = self.system.vertices[vertex_id]
        for other in self._all_vertices():
            if other != vertex_id:
                self._charge_messages(1)
                vertex.send(other, Marker(round_id=self._round.round_id))

    def _make_handler(self, vertex_id: VertexId):
        def handle(sender: VertexId, message: object) -> bool:
            if not isinstance(message, Marker):
                return False
            round_state = self._round
            if round_state is None or message.round_id != round_state.round_id:
                return True  # stale marker of a finished round
            if vertex_id not in round_state.states:
                self._record_state(vertex_id)
                self._emit_markers(vertex_id)
            round_state.closed.add((sender, vertex_id))
            self._maybe_complete()
            return True

        return handle

    def _observe_delivery(self, event: TraceEvent) -> None:
        if event.category != categories.NET_DELIVERED:
            return
        round_state = self._round
        if round_state is None or round_state.complete:
            return
        message = event["message"]
        if isinstance(message, Marker):
            return
        key = (event["sender"], event["destination"])
        if (
            event["destination"] in round_state.states
            and key in round_state.channels
            and key not in round_state.closed
        ):
            round_state.channels[key].append(message)

    def _maybe_complete(self) -> None:
        round_state = self._round
        assert round_state is not None
        n = len(self._all_vertices())
        if len(round_state.states) < n or len(round_state.closed) < n * (n - 1):
            return
        round_state.complete = True
        self.rounds_completed += 1
        # Assemble: every vertex reports its cut fragment to the collector.
        self._charge_messages(n)
        self._evaluate(round_state)

    # ------------------------------------------------------------------
    # Evaluation on the consistent cut
    # ------------------------------------------------------------------

    def _evaluate(self, round_state: _RoundState) -> None:
        adjacency: dict[VertexId, list[VertexId]] = {}
        for vertex_id, outgoing in round_state.states.items():
            for target in outgoing:
                recorded = round_state.channels.get((target, vertex_id), [])
                if any(
                    isinstance(message, Reply) and message.replier == target
                    for message in recorded
                ):
                    continue  # white at the cut: the reply was in flight
                adjacency.setdefault(vertex_id, []).append(target)
        for component in cyclic_sccs(adjacency):
            for vertex in sorted(component):
                self._declare(vertex)
