"""Common infrastructure for baseline detectors.

Baselines run as *overlays* on a :class:`~repro.basic.system.BasicSystem`:
they read only each vertex's local knowledge (``pending_out`` -- what P3
grants any detector) at simulated message-delivery instants, count the
messages a distributed implementation would send, and record detections
with a ground-truth verdict from the oracle.  The overlay style keeps the
underlying computation identical across detectors, which is what makes the
E8 comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._ids import VertexId
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BaselineDetection:
    """One deadlock declaration by a baseline detector."""

    time: float
    vertex: VertexId
    #: was the vertex actually on a dark cycle at declaration time?
    genuine: bool


@dataclass
class BaselineReport:
    """Outcome of one baseline run."""

    name: str
    detections: list[BaselineDetection] = field(default_factory=list)
    messages: int = 0

    @property
    def true_detections(self) -> list[BaselineDetection]:
        return [d for d in self.detections if d.genuine]

    @property
    def false_detections(self) -> list[BaselineDetection]:
        return [d for d in self.detections if not d.genuine]

    @property
    def false_positive_rate(self) -> float:
        """Fraction of detections that were phantoms (0 if none declared)."""
        if not self.detections:
            return 0.0
        return len(self.false_detections) / len(self.detections)

    def detected_vertices(self) -> set[VertexId]:
        return {d.vertex for d in self.detections}


class BaselineDetector:
    """Base class: binds to a system, owns a report, declares with verdicts."""

    name = "baseline"

    def __init__(self, system: BasicSystem) -> None:
        self.system = system
        self.report = BaselineReport(name=self.name)
        self._declared: set[VertexId] = set()
        self._rng = system.transport.rng.stream(f"baseline.{self.name}")

    def start(self) -> None:
        """Begin operating; subclasses schedule their first round here."""
        raise NotImplementedError

    def _charge_messages(self, count: int) -> None:
        if count < 0:
            raise ConfigurationError("message count cannot be negative")
        self.report.messages += count
        self.system.metrics.counter(f"baseline.{self.name}.messages").increment(count)

    def _declare(self, vertex: VertexId) -> None:
        """Record a detection (once per vertex) with the oracle's verdict."""
        if vertex in self._declared:
            return
        self._declared.add(vertex)
        genuine = self.system.oracle.is_on_dark_cycle(vertex)
        self.report.detections.append(
            BaselineDetection(time=self.system.now, vertex=vertex, genuine=genuine)
        )
        counter = "true" if genuine else "false"
        self.system.metrics.counter(
            f"baseline.{self.name}.detections.{counter}"
        ).increment()
