"""Command-line front end.

Usage::

    repro quickstart                 # 3-cycle demo on the basic model
    repro ddb-demo                   # cross-site DDB deadlock + resolution
    repro variants                   # list the registered detector variants
    repro workloads                  # list the registered workload families
    repro experiment E3              # regenerate one experiment table
    repro experiment all --quick     # regenerate everything, fast settings
    repro verify                     # exhaustive small-scope model checking
    repro live basic --seed 0        # deadlock scenario on the asyncio runtime
    repro lint src tests             # project-specific static analysis
    repro lint --explain RPX005      # what a rule enforces, and why
    repro trace --format chrome --out trace.json   # Perfetto-loadable trace
    repro spans                      # per-computation span table + bounds
    repro profile --scenario cycle --n 64          # simulator hot-path profile
    repro sweep --grid e3 --workers 4 --out results/   # parallel sweep
    repro bench record               # (re)write benchmarks/BENCH_baseline.json
    repro bench check                # fail on throughput/shape regressions

The same experiment code also runs under pytest-benchmark (see
``benchmarks/``); the CLI exists for quick inspection without pytest.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.experiments import ALL_EXPERIMENTS


def _cmd_variants(_: argparse.Namespace) -> int:
    from repro.core import all_variants

    for variant in all_variants():
        capabilities = variant.capabilities
        print(f"{variant.name}: {variant.title}")
        print(f"  kind: {capabilities.kind} (model: {capabilities.model})")
        print(f"  oracle criterion: {capabilities.oracle_criterion}")
        scenarios = ", ".join(capabilities.scenarios) or "(none)"
        print(f"  sweep scenarios: {scenarios}")
        if variant.demo is not None:
            print(f"  demo: repro {variant.demo.command}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_families, families_for_model

    families = (
        families_for_model(args.model) if args.model else all_families()
    )
    if not families:
        print(f"no registered workload family drives model {args.model!r}")
        return 1
    for family in families:
        flags = []
        if family.deadlock_capable:
            flags.append("deadlock-capable")
        if family.randomized:
            flags.append("randomized")
        print(f"{family.name}: {family.title}")
        print(f"  models: {', '.join(family.models)}"
              + (f"  [{', '.join(flags)}]" if flags else ""))
        print(f"  source: {family.source}")
        print(f"  example: {family.example.workload_id}")
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.core.scheduling import all_policies, policies_for_model

    policies = (
        policies_for_model(args.model) if args.model else all_policies()
    )
    if not policies:
        print(f"no registered scheduling policy drives model {args.model!r}")
        return 1
    for policy in policies:
        print(f"{policy.name}: {policy.title}")
        print(f"  {policy.description}")
        print(f"  models: {', '.join(policy.models)}")
        print(f"  source: {policy.source}")
        print(f"  example: --policy {policy.example.policy_id}")
    return 0


def _cmd_timeline(_: argparse.Namespace) -> int:
    from repro.analysis.timeline import render_timeline
    from repro.core import get_variant
    from repro.workloads.scenarios import schedule_cycle

    system = get_variant("basic").build(n_vertices=3)
    schedule_cycle(system, [0, 1, 2])
    system.run_to_quiescence()
    print(render_timeline(system.simulator.tracer))
    return 0


#: scenarios the observability commands can run; all deterministic per seed.
OBS_SCENARIOS = ("quickstart", "cycle", "chain", "figure-eight", "ping-pong")


def _build_obs_scenario(args: argparse.Namespace):
    """Build a BasicSystem with the requested canned workload scheduled."""
    from repro.core import get_variant
    from repro.workloads import scenarios

    build = get_variant("basic").build
    name = args.scenario
    seed = args.seed
    if name == "quickstart":
        system = build(n_vertices=3, seed=seed)
        scenarios.schedule_cycle(system, [0, 1, 2])
    elif name == "cycle":
        n = args.n or 8
        system = build(n_vertices=n, seed=seed)
        scenarios.schedule_cycle(system, list(range(n)))
    elif name == "chain":
        n = args.n or 8
        system = build(n_vertices=n, seed=seed)
        scenarios.schedule_chain(system, list(range(n)))
    elif name == "figure-eight":
        n = max(args.n or 5, 5)
        half = (n - 1) // 2
        system = build(n_vertices=n, seed=seed)
        scenarios.schedule_figure_eight(
            system, shared=0, left=list(range(1, 1 + half)), right=list(range(1 + half, n))
        )
    elif name == "ping-pong":
        n = max(args.n or 4, 2)
        system = build(n_vertices=n, seed=seed)
        pairs = [(i, i + 1) for i in range(0, n - 1, 2)]
        scenarios.schedule_ping_pong(system, pairs, repetitions=4)
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(f"unknown scenario {name!r}")
    return system


def _add_obs_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=OBS_SCENARIOS,
        default="quickstart",
        help="workload to run (default: quickstart, the 3-cycle demo)",
    )
    parser.add_argument(
        "--n", type=int, default=None, help="scenario size (vertices), where applicable"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.export import events_to_chrome, events_to_jsonl

    system = _build_obs_scenario(args)
    system.run_to_quiescence()
    tracer = system.simulator.tracer
    if args.format == "chrome":
        payload = json.dumps(events_to_chrome(tracer), indent=2, sort_keys=True)
    else:
        payload = events_to_jsonl(tracer)
    if args.out is not None:
        Path(args.out).write_text(payload, encoding="utf-8")
        print(
            f"[{args.format} trace of '{args.scenario}' "
            f"({len(tracer)} events) written to {args.out}]"
        )
    else:
        print(payload, end="" if payload.endswith("\n") else "\n")
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import render_spans
    from repro.errors import BoundViolation
    from repro.obs.spans import build_spans, check_probe_bounds

    system = _build_obs_scenario(args)
    system.run_to_quiescence()
    spans = build_spans(system.simulator.tracer)
    print(f"probe computations for scenario '{args.scenario}' (seed {args.seed}):")
    print(render_spans(spans))
    try:
        check_probe_bounds(spans, n_vertices=len(system.vertices))
    except BoundViolation as violation:
        print(f"BOUND VIOLATED: {violation}")
        return 1
    print(
        f"section 4 bounds OK: <= 1 probe per edge per computation "
        f"across {len(spans)} computation(s)"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profiling

    system = _build_obs_scenario(args)
    with profiling(system.simulator, sample_every=args.sample_every) as profiler:
        system.run_to_quiescence()
    print(profiler.report().render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(ALL_EXPERIMENTS) if args.name.lower() == "all" else [args.name.upper()]
    for name in names:
        module = ALL_EXPERIMENTS.get(name)
        if module is None:
            print(f"unknown experiment {name!r}; choose from {list(ALL_EXPERIMENTS)}")
            return 2
        table, results = module.run(quick=args.quick)
        print(table.render())
        print()
        if args.json is not None:
            from pathlib import Path

            from repro.analysis.export import experiment_to_json

            directory = Path(args.json)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{name.lower()}.json"
            path.write_text(
                experiment_to_json(name, table, results, quick=args.quick)
            )
            print(f"[json written to {path}]\n")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sweep import GRIDS, build_grid, canonical_json, merge_results, run_sweep
    from repro.sweep.merge import timing_sidecar

    names = list(GRIDS) if args.grid.lower() == "all" else [args.grid.lower()]
    for name in names:
        if name not in GRIDS:
            print(f"unknown grid {name!r}; choose from {', '.join(GRIDS)} or 'all'")
            return 2
    exit_code = 0
    for name in names:
        grid = build_grid(name, quick=args.quick)
        results = run_sweep(grid.cells, workers=args.workers)
        merged = merge_results(grid.name, results)
        summary = merged["summary"]
        mode = "quick" if args.quick else "full"
        print(
            f"[{grid.name} ({mode}): {summary['cells']} cells, "
            f"{summary['ok']} ok, {summary['errors']} errors, "
            f"{summary['events']} events on {args.workers} worker(s)]"
        )
        if summary["errors"]:
            exit_code = 1
            for cell in merged["cells"]:
                if cell["status"] == "error":
                    print(f"  ERROR {cell['cell_id']}: {cell['error']}")
        if args.out is not None:
            directory = Path(args.out)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"BENCH_{grid.name}.json"
            path.write_text(canonical_json(merged), encoding="utf-8")
            timing_path = directory / f"BENCH_{grid.name}.timing.json"
            timing_path.write_text(
                canonical_json(timing_sidecar(grid.name, results)), encoding="utf-8"
            )
            print(f"  [written to {path} (+ timing sidecar)]")
        else:
            print(canonical_json(merged), end="")
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sweep import baseline

    path = Path(args.baseline)
    if args.action == "record":
        document = baseline.record(path, repeats=args.repeats)
        print(f"[baseline written to {path}]")
        for name, value in sorted(document["throughput"].items()):
            print(f"  {name}: {value:.1f} ev/s")
        for name, digest in sorted(document["shapes"].items()):
            print(f"  shape {name}: {digest[:16]}...")
        return 0
    try:
        lines = baseline.check(path, threshold=args.threshold, repeats=args.repeats)
    except baseline.BenchRegression as regression:
        print(f"BENCH CHECK FAILED: {regression}")
        return 1
    for line in lines:
        print(f"  {line}")
    print("[bench check ok]")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verification import or_model
    from repro.verification.explorer import explore
    from repro.verification.model import Initiate, Request
    from repro.verification.or_model import GrantTo, InitiateOr, RequestAny

    and_scenarios = {
        "2-cycle": (2, [Request(0, (1,)), Request(1, (0,)), Initiate(0)]),
        "3-cycle": (
            3,
            [Request(0, (1,)), Request(1, (2,)), Request(2, (0,)), Initiate(0)],
        ),
        "2-cycle+tail": (
            3,
            [Request(0, (1,)), Request(1, (0,)), Request(2, (0,)), Initiate(2)],
        ),
    }
    or_scenarios = {
        "OR 2-cycle": (
            2,
            [RequestAny(0, (1,)), RequestAny(1, (0,)), InitiateOr(0)],
        ),
        "OR knot": (
            3,
            [
                RequestAny(1, (0,)),
                RequestAny(2, (0,)),
                RequestAny(0, (1, 2)),
                InitiateOr(0),
            ],
        ),
        "OR in-flight grant": (
            3,
            [
                RequestAny(0, (1,)),
                GrantTo(1, 0),
                RequestAny(1, (2,)),
                RequestAny(2, (1,)),
                InitiateOr(0),
                InitiateOr(1),
            ],
        ),
    }
    failed = False
    print("AND model (sections 2-4):")
    for label, (n, script) in and_scenarios.items():
        result = explore(n, script)
        status = "ok" if result.ok else "FAILED"
        print(
            f"  {label}: {result.states_explored} states, "
            f"{result.terminal_states} terminal, "
            f"declared={sorted(result.ever_declared)} -> {status}"
        )
        failed |= not result.ok
    print("OR model (section 7 extension):")
    for label, (n, script) in or_scenarios.items():
        result = explore(n, script, semantics=or_model)
        status = "ok" if result.ok else "FAILED"
        print(
            f"  {label}: {result.states_explored} states, "
            f"{result.terminal_states} terminal, "
            f"declared={sorted(result.ever_declared)} -> {status}"
        )
        failed |= not result.ok
    return 1 if failed else 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.core import get_variant
    from repro.errors import ConfigurationError, SimulationError
    from repro.live import run_live

    try:
        get_variant(args.variant)
    except ConfigurationError as error:
        print(str(error))
        return 2
    try:
        report = run_live(
            args.variant,
            scenario=args.scenario,
            seed=args.seed,
            time_scale=args.time_scale,
            timeout=args.timeout,
            n_vertices=args.n,
            duration=args.duration,
            policy=args.policy,
        )
    except (ConfigurationError, SimulationError) as error:
        print(f"LIVE RUN FAILED: {error}")
        return 1
    outcome = report.outcome
    print(
        f"[live {args.variant} scenario={args.scenario} seed={args.seed} "
        f"time_scale={report.time_scale:g}]"
    )
    print(f"  declarations: {outcome.declarations}")
    print(f"  soundness violations: {outcome.soundness_violations}")
    print(f"  complete: {outcome.complete}")
    if report.detection_latency_seconds is not None:
        print(
            f"  detection latency: {report.detection_latency_seconds * 1000.0:.1f} ms "
            f"wall ({outcome.first_declaration_at:g} virtual units)"
        )
    else:
        print("  detection latency: n/a (no declaration)")
    print(f"  wall time: {report.wall_seconds:.3f} s")
    if not report.sound:
        print("FAILED: declaration without a genuine deadlock (QRP2 violated)")
        return 1
    if args.scenario == "deadlock" and not report.detected:
        print("FAILED: genuine deadlock went undetected (QRP1 violated)")
        return 1
    if args.scenario not in ("deadlock", "clean") and not outcome.complete:
        print("FAILED: workload left a deadlock undetected (QRP1 violated)")
        return 1
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import run_cluster
    from repro.core import get_variant
    from repro.errors import ClusterError, ConfigurationError, SimulationError

    try:
        get_variant(args.variant)
    except ConfigurationError as error:
        print(str(error))
        return 2
    try:
        report = run_cluster(
            args.variant,
            scenario=args.scenario,
            seed=args.seed,
            time_scale=args.time_scale,
            timeout=args.timeout,
            channel="tcp" if args.tcp else "unix",
            n_vertices=args.n,
            duration=args.duration,
            policy=args.policy,
        )
    except ClusterError as error:
        print(f"CLUSTER RUN FAILED: {error}")
        for failure in error.failures:
            print(f"  worker {failure.worker} ({failure.node}): {failure.reason}")
            if failure.detail:
                print(f"    {failure.detail.splitlines()[-1]}")
        return 1
    except (ConfigurationError, SimulationError) as error:
        print(f"CLUSTER RUN FAILED: {error}")
        return 1
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as sink:
            json.dump(report.to_json(), sink, sort_keys=True, indent=2)
            sink.write("\n")
    outcome = report.outcome
    print(
        f"[cluster {args.variant} scenario={args.scenario} seed={args.seed} "
        f"channel={report.channel} workers={report.workers} "
        f"time_scale={report.time_scale:g}]"
    )
    print(f"  declarations: {outcome.declarations}")
    print(f"  soundness violations: {outcome.soundness_violations}")
    print(f"  complete: {outcome.complete}")
    print(f"  messages through workers: {report.messages_delivered}")
    if report.detection_latency_seconds is not None:
        print(
            f"  detection latency: {report.detection_latency_seconds * 1000.0:.1f} ms "
            f"wall ({outcome.first_declaration_at:g} virtual units)"
        )
    else:
        print("  detection latency: n/a (no declaration)")
    print(f"  wall time: {report.wall_seconds:.3f} s")
    if not report.sound:
        print("FAILED: declaration without a genuine deadlock (QRP2 violated)")
        return 1
    if args.scenario == "deadlock" and not report.detected:
        print("FAILED: genuine deadlock went undetected (QRP1 violated)")
        return 1
    if args.scenario not in ("deadlock", "clean") and not outcome.complete:
        print("FAILED: workload left a deadlock undetected (QRP1 violated)")
        return 1
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.core import get_variant
    from repro.errors import ConfigurationError, SimulationError
    from repro.live.monitor import run_monitor

    try:
        variant = get_variant(args.variant)
    except ConfigurationError as error:
        print(str(error))
        return 2
    if variant.monitor is None:
        print(f"variant {args.variant!r} does not support live monitoring")
        return 2
    try:
        report = run_monitor(
            args.variant,
            scenario=args.scenario,
            seed=args.seed,
            duration=args.duration,
            interval=args.interval,
            time_scale=args.time_scale,
            slo_seconds=args.slo,
            metrics_out=args.metrics_out,
            spans_out=args.spans_out,
            snapshots_out=args.snapshots_out,
            stream=None if args.json else sys.stdout,
            policy=args.policy,
        )
    except (ConfigurationError, SimulationError) as error:
        print(f"MONITOR RUN FAILED: {error}")
        return 1
    if args.json:
        print(json.dumps(report.to_json(), sort_keys=True))
    else:
        outcome = report.outcome
        print(
            f"[monitor {args.variant} scenario={args.scenario} "
            f"seed={args.seed} ticks={report.ticks}]"
        )
        print(f"  declarations: {outcome.declarations}")
        print(f"  soundness violations: {outcome.soundness_violations}")
        print(f"  bound violations: {report.bound_violations}")
        print(f"  spans streamed: {report.spans_emitted}")
        if report.slo_seconds is not None:
            print(
                f"  SLO ({report.slo_seconds:g} s): "
                f"{report.slo_violations} violation(s)"
            )
        print(f"  wall time: {report.wall_seconds:.3f} s")
        if not report.ok:
            print("FAILED: monitor gate (soundness / bounds / SLO / detection)")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run

    return run(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Chandy & Misra (PODC 1982): distributed "
            "resource-deadlock detection via probe computations."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Demo subcommands come straight from the variant registry: a variant
    # that ships a DemoSpec gets a subcommand without any edit here.
    from repro.core import all_variants

    for variant in all_variants():
        if variant.demo is None:
            continue
        demo = subparsers.add_parser(variant.demo.command, help=variant.demo.help)
        demo.set_defaults(handler=lambda args, _run=variant.demo.run: _run())

    variants = subparsers.add_parser(
        "variants", help="list the registered detector variants"
    )
    variants.set_defaults(handler=_cmd_variants)

    workloads = subparsers.add_parser(
        "workloads",
        help="list the registered workload families",
        description=(
            "Lists every workload family in the registry: the canned "
            "section 2-4 patterns, the randomized basic/DDB drivers, and "
            "the graph ensembles.  Any family name here is a valid "
            "--scenario for `repro live`, `repro cluster`, and `repro "
            "monitor` (capability-checked against the variant's model)."
        ),
    )
    workloads.add_argument(
        "--model",
        default=None,
        help="only families that can drive this model (basic, ddb, ormodel)",
    )
    workloads.set_defaults(handler=_cmd_workloads)

    policies = subparsers.add_parser(
        "policies",
        help="list the registered initiation scheduling policies",
        description=(
            "Lists every scheduling policy in the registry: the paper's "
            "manual/immediate/delayed-T initiation rules (sections 4.2 and "
            "4.3), the section 6.7 periodic controller scan, and the "
            "adaptive controller that tunes T online.  Any example shown "
            "here is a valid --policy for `repro live`, `repro cluster`, "
            "and `repro monitor` (capability-checked against the "
            "variant's model)."
        ),
    )
    policies.add_argument(
        "--model",
        default=None,
        help="only policies that can drive this model (basic, ddb, ormodel)",
    )
    policies.set_defaults(handler=_cmd_policies)

    timeline = subparsers.add_parser(
        "timeline", help="render a protocol timeline of the 3-cycle demo"
    )
    timeline.set_defaults(handler=_cmd_timeline)

    trace = subparsers.add_parser(
        "trace",
        help="run a scenario and export its trace (jsonl or chrome/Perfetto)",
        description=(
            "Runs a deterministic scenario to quiescence and exports the "
            "structured trace: 'jsonl' is the lossless archival round-trip "
            "format, 'chrome' loads in Perfetto (ui.perfetto.dev) or "
            "chrome://tracing with per-vertex tracks, probe-computation "
            "spans, and probe-hop flow arrows."
        ),
    )
    _add_obs_scenario_arguments(trace)
    trace.add_argument(
        "--format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="export format (default: jsonl)",
    )
    trace.add_argument(
        "--out", metavar="PATH", default=None, help="write to PATH instead of stdout"
    )
    trace.set_defaults(handler=_cmd_trace)

    spans = subparsers.add_parser(
        "spans",
        help="per-computation span table with section 4 probe-bound checks",
        description=(
            "Runs a scenario, reconstructs every probe computation (i, n) "
            "from the trace, prints one row per computation (hops, outcome, "
            "detection latency), and machine-checks the paper's 'at most "
            "one probe per edge per computation' bound; a violated bound "
            "is a hard error (exit 1)."
        ),
    )
    _add_obs_scenario_arguments(spans)
    spans.set_defaults(handler=_cmd_spans)

    profile = subparsers.add_parser(
        "profile",
        help="profile the simulator hot path on a scenario",
        description=(
            "Runs a scenario with the opt-in wall-clock profiler attached "
            "and prints events/sec, per-handler-category wall time, and "
            "event-queue depth statistics."
        ),
    )
    _add_obs_scenario_arguments(profile)
    profile.add_argument(
        "--sample-every",
        type=int,
        default=64,
        help="queue-depth sampling period in events (default: 64)",
    )
    profile.set_defaults(handler=_cmd_profile)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate an experiment table (E1..E8 or 'all')"
    )
    experiment.add_argument("name", help="experiment id, e.g. E3, or 'all'")
    experiment.add_argument(
        "--quick", action="store_true", help="smaller sweeps for a fast run"
    )
    experiment.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write <experiment>.json files into DIR",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a declarative experiment grid across worker processes",
        description=(
            "Shards a declarative grid of (scenario, size, seed, delay, T) "
            "cells across worker processes, each cell in its own "
            "deterministic simulator, and merges the results into a "
            "canonical BENCH_<grid>.json that is byte-identical for any "
            "worker count.  Wall-clock timings go to a separate "
            "BENCH_<grid>.timing.json sidecar."
        ),
    )
    sweep.add_argument(
        "--grid",
        required=True,
        help="grid name (e1..e8) or 'all'",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = run inline, no subprocesses; default: 1)",
    )
    sweep.add_argument(
        "--quick", action="store_true", help="smaller grids for a fast run"
    )
    sweep.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write BENCH_<grid>.json (+ timing sidecar) into DIR instead of stdout",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    bench = subparsers.add_parser(
        "bench",
        help="record or check the quick benchmark baseline (CI regression gate)",
        description=(
            "The quick bench tier: three engine micro-benchmarks "
            "(events/sec) plus a deterministic shape hash of every sweep "
            "grid's quick run.  'record' writes the baseline; 'check' "
            "fails (exit 1) on a >threshold throughput drop or any shape "
            "change."
        ),
    )
    bench.add_argument("action", choices=("record", "check"))
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default="benchmarks/BENCH_baseline.json",
        help="baseline file (default: benchmarks/BENCH_baseline.json)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop before failing (default: 0.25)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="micro-benchmark repeats; best run is compared (default: 5)",
    )
    bench.set_defaults(handler=_cmd_bench)

    verify = subparsers.add_parser(
        "verify", help="exhaustive small-scope model checking of QRP1/QRP2"
    )
    verify.set_defaults(handler=_cmd_verify)

    live = subparsers.add_parser(
        "live",
        help="run a variant's scenario on the asyncio runtime",
        description=(
            "Runs a registered variant's standard deadlock/clean scenario "
            "-- or any registered workload family (see `repro workloads`) "
            "-- on the wall-clock asyncio transport instead of the "
            "deterministic simulator, and reports declarations, soundness, "
            "and detection latency.  Exit 1 on a missed deadlock or a "
            "soundness violation."
        ),
    )
    live.add_argument("variant", help="variant name (see `repro variants`)")
    live.add_argument(
        "--scenario",
        default="deadlock",
        help=(
            "deadlock, clean, random, or a workload family name "
            "(see `repro workloads`; default: deadlock)"
        ),
    )
    live.add_argument(
        "--n",
        type=int,
        default=None,
        help="topology-size override for workload-family scenarios",
    )
    live.add_argument(
        "--duration",
        type=float,
        default=None,
        help="workload-duration override in virtual units (family scenarios)",
    )
    live.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")
    live.add_argument(
        "--policy",
        default=None,
        help=(
            "initiation scheduling policy id, e.g. delayed/T=2 or adaptive "
            "(see `repro policies`; default: the variant's built-in rule)"
        ),
    )
    live.add_argument(
        "--time-scale",
        type=float,
        default=0.005,
        help="wall seconds per virtual time unit (default: 0.005)",
    )
    live.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="wall-clock budget in seconds before the run fails (default: 30)",
    )
    live.set_defaults(handler=_cmd_live)

    cluster = subparsers.add_parser(
        "cluster",
        help="run a variant across one worker OS process per node",
        description=(
            "Runs a registered variant with every node's message channels "
            "owned by its own worker process: messages cross real Unix-"
            "domain (or TCP) sockets as length-prefixed JSON frames, with "
            "per-channel FIFO order preserved end to end and seeded delay "
            "injection.  Scenarios: the standard deadlock/clean "
            "conformance pair, `random` (the model's default randomized "
            "workload family), or any registered family name -- gated on "
            "the quiescence-time completeness report.  Exit 1 on a "
            "missed deadlock, a soundness violation, or a worker failure."
        ),
    )
    cluster.add_argument("variant", help="variant name (see `repro variants`)")
    cluster.add_argument(
        "--scenario",
        default="deadlock",
        help=(
            "deadlock, clean, random, or a workload family name "
            "(see `repro workloads`; default: deadlock)"
        ),
    )
    cluster.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")
    cluster.add_argument(
        "--policy",
        default=None,
        help=(
            "initiation scheduling policy id, e.g. delayed/T=2 or adaptive "
            "(see `repro policies`; default: the variant's built-in rule)"
        ),
    )
    cluster.add_argument(
        "--n",
        type=int,
        default=8,
        help="vertices for the random workload (default: 8)",
    )
    cluster.add_argument(
        "--duration",
        type=float,
        default=40.0,
        help="random-workload duration in virtual units (default: 40)",
    )
    cluster.add_argument(
        "--time-scale",
        type=float,
        default=0.005,
        help="wall seconds per virtual time unit (default: 0.005)",
    )
    cluster.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="wall-clock budget in seconds before the run fails (default: 60)",
    )
    cluster.add_argument(
        "--tcp",
        action="store_true",
        help="use loopback TCP channels instead of Unix-domain sockets",
    )
    cluster.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the full report as JSON here",
    )
    cluster.set_defaults(handler=_cmd_cluster)

    monitor = subparsers.add_parser(
        "monitor",
        help="watch a live run with a runtime console and telemetry export",
        description=(
            "Runs a registered variant's scenario on the asyncio runtime "
            "and observes it tick by tick: a one-line console status "
            "(virtual clock, per-node queue depth, in-flight messages, "
            "open probe computations, declarations, SLO state), a "
            "Prometheus text file rewritten each tick, a JSONL stream of "
            "settled probe-computation spans, and a JSONL stream of "
            "metric snapshots.  Exit 1 when the run is unsound, breaks a "
            "section 4 probe bound, misses its detection-latency SLO, or "
            "fails to detect a deadlock it was dealt."
        ),
    )
    monitor.add_argument("variant", help="variant name (see `repro variants`)")
    monitor.add_argument(
        "--scenario",
        default="deadlock",
        help=(
            "deadlock, clean, random, or a workload family name "
            "(see `repro workloads`; default: deadlock)"
        ),
    )
    monitor.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")
    monitor.add_argument(
        "--policy",
        default=None,
        help=(
            "initiation scheduling policy id, e.g. delayed/T=2 or adaptive "
            "(see `repro policies`; default: the variant's built-in rule)"
        ),
    )
    monitor.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="wall seconds to observe the run for (default: 5)",
    )
    monitor.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="wall seconds between console/export ticks (default: 0.5)",
    )
    monitor.add_argument(
        "--time-scale",
        type=float,
        default=0.005,
        help="wall seconds per virtual time unit (default: 0.005)",
    )
    monitor.add_argument(
        "--slo",
        type=float,
        default=None,
        help="detection-latency SLO in wall seconds (default: off)",
    )
    monitor.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write Prometheus text exposition here, rewritten each tick",
    )
    monitor.add_argument(
        "--spans-out",
        metavar="FILE",
        help="stream settled probe-computation spans here as JSONL",
    )
    monitor.add_argument(
        "--snapshots-out",
        metavar="FILE",
        help="stream periodic metrics snapshots here as JSONL",
    )
    monitor.add_argument(
        "--json",
        action="store_true",
        help="suppress the console and print one final JSON report",
    )
    monitor.set_defaults(handler=_cmd_monitor)

    from repro.lint.cli import add_lint_arguments

    lint = subparsers.add_parser(
        "lint",
        help="project-specific static analysis (rules RPX001-RPX010)",
        description=(
            "AST lint pass enforcing the proof-carrying conventions the "
            "verification layer depends on: seeded randomness, virtual time, "
            "frozen messages, one-way layering, registered trace categories, "
            "process isolation, and the cross-file protocol-flow rules "
            "(taxonomy conformance, message immutability, live-backend "
            "safety) checked against the registered MessageTaxonomy."
        ),
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly
        # without a traceback, like other well-behaved unix filters.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
