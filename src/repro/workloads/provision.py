"""Provision a (detector variant, workload spec) pair on any transport.

The one place the "build a system, schedule a workload onto it,
summarise the run" dance lives.  Runners that used to hard-code a model
check plus a workload class (the cluster's random lane, ad-hoc test
harnesses) call :func:`provision_workload` instead: it checks the
family's capability declaration against the variant's model (typed
:class:`~repro.errors.ConfigurationError` on mismatch, naming the
family), builds the system -- through the family's own factory when it
has one, else through the variant's -- schedules the workload, and
returns a handle whose ``summarize`` folds the finished run into the
standard :class:`~repro.core.conformance.ConformanceOutcome` plus the
family's declared extra outcome fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.conformance import ConformanceOutcome
from repro.core.registry import DetectorVariant
from repro.core.scheduling import ComputationOutcome, PolicySpec
from repro.core.scheduling import require_model as require_policy_model
from repro.errors import ConfigurationError
from repro.workloads.spec import (
    WorkloadFamily,
    WorkloadSpec,
    default_random_family,
    get_family,
    require_model,
)


def _completeness(system: Any) -> tuple[bool | None, int]:
    """Normalise the two completeness-report shapes the models use.

    Basic/OR systems return a report object (``.complete`` /
    ``.undetected_components``); the DDB system returns a bare
    ``(complete, undetected_components)`` tuple.
    """
    report = system.completeness_report()
    if isinstance(report, tuple):
        complete, undetected = report
        return bool(complete), len(undetected)
    return report.complete, len(report.undetected_components)


def build_initiation(policy: PolicySpec, model: str) -> Any:
    """Resolve ``policy`` into the model's initiation adapter.

    Each model package carries a thin adapter over the scheduling seam
    (``repro.<model>.initiation.from_policy_spec``); this is the one
    dispatch point runners share.  Raises a typed
    :class:`~repro.errors.ConfigurationError` when the policy cannot
    drive ``model``.
    """
    require_policy_model(policy, model)
    if model == "basic":
        from repro.basic.initiation import from_policy_spec
    elif model == "ddb":
        from repro.ddb.initiation import from_policy_spec
    elif model == "ormodel":
        from repro.ormodel.initiation import from_policy_spec
    else:  # pragma: no cover - registry models are closed over the three
        raise ConfigurationError(f"no initiation adapter for model {model!r}")
    return from_policy_spec(policy)


def attach_policy_feedback(
    system: Any, initiation: Any, *, n_vertices: int | None = None
) -> Any | None:
    """Stream probe-computation outcomes from the span engine to a policy.

    The adaptive policy learns from settled computations (fizzled vs
    deadlock, probe cost -- Ling et al.'s signals); this bridges the
    ``repro.obs`` streaming span engine onto the policy's
    ``on_computation_outcome`` hook.  A no-op (returns ``None``) for
    policies that do not ask for outcomes, so default runs attach no
    subscriber at all.
    """
    policy = getattr(initiation, "policy", None)
    if policy is None or not getattr(policy, "wants_outcomes", False):
        return None
    from repro.obs.spans import SCHEMAS_BY_MODEL
    from repro.obs.stream import StreamingSpanEngine

    model = system_model(system)
    schema = SCHEMAS_BY_MODEL.get(model)
    if schema is None:
        # The OR variant reports no probe taxonomy (its query/reply
        # computations are not section 4 probe computations), so its
        # adaptive policy learns from wait lifetimes alone.
        return None

    def feed(span: Any) -> None:
        policy.on_computation_outcome(
            ComputationOutcome(
                initiator=span.initiator,
                outcome=span.outcome.value,
                probes_sent=span.probes_sent,
                initiated_at=span.initiated_at,
                settled_at=span.end_time,
            )
        )

    engine = StreamingSpanEngine(
        schema,
        n_vertices=n_vertices if model == "basic" else None,
        on_span=feed,
    )
    engine.attach(system.transport.tracer)
    return engine


def system_model(system: Any) -> str:
    """The registry model a built system instance belongs to."""
    module = type(system).__module__
    if module.startswith("repro.ddb"):
        return "ddb"
    if module.startswith("repro.ormodel"):
        return "ormodel"
    return "basic"


@dataclass
class ProvisionedWorkload:
    """A built system with its workload scheduled, ready to run."""

    variant: DetectorVariant
    family: WorkloadFamily
    spec: WorkloadSpec
    system: Any
    #: whatever the family's ``schedule`` returned (driver object, edge
    #: list, ``None``); fed back to ``collect`` at summary time.
    handle: Any
    #: the resolved scheduling policy, when one was requested.
    policy: PolicySpec | None = None
    #: the span engine bridging outcomes to an adaptive policy (``None``
    #: unless the policy asked for outcome feedback).
    feedback: Any | None = field(default=None, repr=False)

    def run_to_quiescence(self, **kwargs: Any) -> None:
        self.system.run_to_quiescence(**kwargs)

    def extra(self) -> dict[str, Any]:
        """The family's declared extra outcome fields for this run."""
        if self.family.collect is None:
            return {}
        return self.family.collect(self.spec, self.system, self.handle)

    def summarize(self) -> ConformanceOutcome:
        complete, undetected = _completeness(self.system)
        return ConformanceOutcome(
            variant=self.variant.name,
            scenario=self.spec.family,
            declarations=len(self.system.declarations),
            soundness_violations=len(self.system.soundness_violations),
            complete=complete,
            undetected_components=undetected,
            first_declaration_at=(
                self.system.declarations[0].time
                if self.system.declarations
                else None
            ),
        )


def resolve_scenario_spec(
    variant: DetectorVariant,
    scenario: str,
    *,
    seed: int,
    n_vertices: int | None = None,
    duration: float | None = None,
) -> WorkloadSpec:
    """Turn a runner's scenario string into a concrete workload spec.

    ``random`` picks the variant's model's default randomized family;
    any other name must be a registered family capable of driving that
    model (typed :class:`~repro.errors.ConfigurationError` otherwise,
    naming the family and the models it does drive).  The family's
    example spec supplies the load parameters; ``seed`` always
    overrides, ``n_vertices`` / ``duration`` override when given.
    """
    model = variant.capabilities.model
    if scenario == "random":
        family = default_random_family(model)
    else:
        family = get_family(scenario)
        require_model(family, model)
    spec = family.example.with_seed(seed)
    if n_vertices is not None:
        spec = replace(spec, n=n_vertices)
    if duration is not None:
        spec = replace(spec, duration=duration)
    return spec


def provision_workload(
    variant: DetectorVariant,
    spec: WorkloadSpec,
    *,
    transport: Any | None = None,
    strict: bool = False,
    delay_model: Any | None = None,
    policy: PolicySpec | None = None,
) -> ProvisionedWorkload:
    """Build ``variant``'s system on ``transport`` and schedule ``spec``.

    ``strict`` defaults to ``False`` (runner semantics: violations are
    recorded, not raised) so completeness/soundness gating stays in the
    caller's report.  ``policy`` swaps the variant's default initiation
    scheduling for a registered :class:`PolicySpec`; when that policy
    learns from outcomes (``adaptive``), the span-feedback bridge is
    attached automatically and exposed as ``.feedback``.  Raises
    :class:`~repro.errors.ConfigurationError` when the family cannot
    drive the variant's model, the spec fails the family's own
    validation, or the policy cannot drive the model.
    """
    family = get_family(spec.family)
    model = variant.capabilities.model
    require_model(family, model)
    if family.validate is not None:
        family.validate(spec)
    if policy is not None and variant.capabilities.kind == "overlay":
        raise ConfigurationError(
            f"variant '{variant.name}' is an overlay bound to a host system; "
            "overlays have no initiation seam, so a scheduling policy "
            f"cannot apply (requested {policy.policy_id!r})"
        )
    initiation = None if policy is None else build_initiation(policy, model)
    policy_kwargs = {} if initiation is None else {"initiation": initiation}
    if family.build is not None:
        system = family.build(
            spec,
            transport=transport,
            strict=strict,
            delay_model=delay_model,
            **policy_kwargs,
        )
    else:
        system = variant.build(
            n_vertices=spec.n,
            seed=spec.seed,
            strict=strict,
            transport=transport,
            **({"delay_model": delay_model} if delay_model is not None else {}),
            **policy_kwargs,
        )
    feedback = (
        None
        if initiation is None
        else attach_policy_feedback(system, initiation, n_vertices=spec.n)
    )
    handle = family.schedule(spec, system)
    return ProvisionedWorkload(
        variant=variant,
        family=family,
        spec=spec,
        system=system,
        handle=handle,
        policy=policy,
        feedback=feedback,
    )
