"""Provision a (detector variant, workload spec) pair on any transport.

The one place the "build a system, schedule a workload onto it,
summarise the run" dance lives.  Runners that used to hard-code a model
check plus a workload class (the cluster's random lane, ad-hoc test
harnesses) call :func:`provision_workload` instead: it checks the
family's capability declaration against the variant's model (typed
:class:`~repro.errors.ConfigurationError` on mismatch, naming the
family), builds the system -- through the family's own factory when it
has one, else through the variant's -- schedules the workload, and
returns a handle whose ``summarize`` folds the finished run into the
standard :class:`~repro.core.conformance.ConformanceOutcome` plus the
family's declared extra outcome fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.conformance import ConformanceOutcome
from repro.core.registry import DetectorVariant
from repro.workloads.spec import (
    WorkloadFamily,
    WorkloadSpec,
    default_random_family,
    get_family,
    require_model,
)


def _completeness(system: Any) -> tuple[bool | None, int]:
    """Normalise the two completeness-report shapes the models use.

    Basic/OR systems return a report object (``.complete`` /
    ``.undetected_components``); the DDB system returns a bare
    ``(complete, undetected_components)`` tuple.
    """
    report = system.completeness_report()
    if isinstance(report, tuple):
        complete, undetected = report
        return bool(complete), len(undetected)
    return report.complete, len(report.undetected_components)


@dataclass
class ProvisionedWorkload:
    """A built system with its workload scheduled, ready to run."""

    variant: DetectorVariant
    family: WorkloadFamily
    spec: WorkloadSpec
    system: Any
    #: whatever the family's ``schedule`` returned (driver object, edge
    #: list, ``None``); fed back to ``collect`` at summary time.
    handle: Any

    def run_to_quiescence(self, **kwargs: Any) -> None:
        self.system.run_to_quiescence(**kwargs)

    def extra(self) -> dict[str, Any]:
        """The family's declared extra outcome fields for this run."""
        if self.family.collect is None:
            return {}
        return self.family.collect(self.spec, self.system, self.handle)

    def summarize(self) -> ConformanceOutcome:
        complete, undetected = _completeness(self.system)
        return ConformanceOutcome(
            variant=self.variant.name,
            scenario=self.spec.family,
            declarations=len(self.system.declarations),
            soundness_violations=len(self.system.soundness_violations),
            complete=complete,
            undetected_components=undetected,
            first_declaration_at=(
                self.system.declarations[0].time
                if self.system.declarations
                else None
            ),
        )


def resolve_scenario_spec(
    variant: DetectorVariant,
    scenario: str,
    *,
    seed: int,
    n_vertices: int | None = None,
    duration: float | None = None,
) -> WorkloadSpec:
    """Turn a runner's scenario string into a concrete workload spec.

    ``random`` picks the variant's model's default randomized family;
    any other name must be a registered family capable of driving that
    model (typed :class:`~repro.errors.ConfigurationError` otherwise,
    naming the family and the models it does drive).  The family's
    example spec supplies the load parameters; ``seed`` always
    overrides, ``n_vertices`` / ``duration`` override when given.
    """
    model = variant.capabilities.model
    if scenario == "random":
        family = default_random_family(model)
    else:
        family = get_family(scenario)
        require_model(family, model)
    spec = family.example.with_seed(seed)
    if n_vertices is not None:
        spec = replace(spec, n=n_vertices)
    if duration is not None:
        spec = replace(spec, duration=duration)
    return spec


def provision_workload(
    variant: DetectorVariant,
    spec: WorkloadSpec,
    *,
    transport: Any | None = None,
    strict: bool = False,
    delay_model: Any | None = None,
) -> ProvisionedWorkload:
    """Build ``variant``'s system on ``transport`` and schedule ``spec``.

    ``strict`` defaults to ``False`` (runner semantics: violations are
    recorded, not raised) so completeness/soundness gating stays in the
    caller's report.  Raises :class:`~repro.errors.ConfigurationError`
    when the family cannot drive the variant's model or the spec fails
    the family's own validation.
    """
    family = get_family(spec.family)
    require_model(family, variant.capabilities.model)
    if family.validate is not None:
        family.validate(spec)
    if family.build is not None:
        system = family.build(
            spec, transport=transport, strict=strict, delay_model=delay_model
        )
    else:
        system = variant.build(
            n_vertices=spec.n,
            seed=spec.seed,
            strict=strict,
            transport=transport,
            **({"delay_model": delay_model} if delay_model is not None else {}),
        )
    handle = family.schedule(spec, system)
    return ProvisionedWorkload(
        variant=variant, family=family, spec=spec, system=system, handle=handle
    )
