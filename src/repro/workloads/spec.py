"""The workload seam: frozen :class:`WorkloadSpec` values and the
:class:`WorkloadFamily` registry.

This module is the single place the stack resolves "what traffic do I
run" through, mirroring the :class:`~repro.core.registry.DetectorVariant`
registry on the detector side.  A :class:`WorkloadSpec` is a pure,
picklable value naming one workload (family + topology/load parameters +
seed + duration) with a canonical ``workload_id``; a
:class:`WorkloadFamily` declares which models it can drive, how to
schedule itself onto a built system, and which outcome fields it reports.
Every runner -- the sweep engine, the conformance/monitor seams, the live
asyncio runtime, the multi-process cluster, and the ``repro workloads``
CLI -- resolves families here instead of keeping its own stringly-typed
scenario table.

Layering: this file is an RPX004 *seam* module (like
:mod:`repro.core.transport`): it imports nothing above
:mod:`repro.errors`, so any tier -- including the core tier's variant
registrations -- may import specs and look families up.  The family
*implementations* (which import protocol systems) live in
:mod:`repro.workloads.families`, plain harness-tier code loaded lazily on
the first lookup, exactly like the variant registry loads its built-ins.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError

#: Extra workload parameters as a sorted tuple of (name, value) pairs --
#: tuples (unlike dicts) are hashable and order-canonical after sorting,
#: so they can sit inside a frozen spec and key caches.
Params = tuple[tuple[str, float], ...]


def make_params(**values: float) -> Params:
    """Canonical (sorted) params tuple from keyword arguments."""
    return tuple(sorted(values.items()))


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """One workload, as a pure picklable value.

    ``family`` names a registered :class:`WorkloadFamily`; ``n`` is the
    topology size in the family's own unit (vertices for basic-model
    families, sites for DDB families); ``seed`` feeds the family's named
    RNG stream so the generated schedule is a pure function of the spec;
    ``duration`` bounds open-ended (driver-style) families in virtual
    time; ``params`` carries family-specific load/topology knobs.

    The ``workload_id`` is part of the caching contract: sweep cells and
    result stores key on it, so its format must stay stable (guarded by
    a golden test).
    """

    family: str
    n: int
    seed: int = 0
    duration: float = 0.0
    params: Params = ()

    @property
    def workload_id(self) -> str:
        """Deterministic, human-readable identity (stable format)."""
        parts = [self.family, f"n={self.n}", f"seed={self.seed}"]
        if self.duration:
            parts.append(f"dur={self.duration:g}")
        parts.extend(f"{name}={value:g}" for name, value in self.params)
        return "/".join(parts)

    def param(self, name: str, default: float | None = None) -> float:
        """Look up one parameter; raise if absent and no default given."""
        for key, value in self.params:
            if key == name:
                return value
        if default is None:
            raise ConfigurationError(
                f"workload {self.workload_id} lacks parameter {name!r}"
            )
        return default

    def param_list(self, name: str) -> list[float]:
        """All values recorded under ``name`` (e.g. repeated ``tail``)."""
        return [value for key, value in self.params if key == name]

    def with_seed(self, seed: int) -> WorkloadSpec:
        """A copy of this spec under another seed (ensembles sweep seeds)."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class WorkloadFamily:
    """One registered workload family: generator + capability declaration.

    ``schedule(spec, system)`` schedules the workload onto an
    already-built system (any transport backend) and returns an opaque
    handle (or ``None``); the schedule must be a pure function of the
    spec -- all randomness through a stream named after the family, so
    the same spec yields a byte-identical schedule on every backend.
    ``build(spec, ...)`` constructs the family's default system for
    runners that do not build their own (the cluster random lane, the
    live workload lane); families whose model has a uniform constructor
    (``n_vertices``/``seed``) may leave it ``None`` and let the runner
    build through the detector variant's factory.
    ``collect(spec, system, handle)`` reduces a finished run to the
    family's extra outcome fields, whose names are declared up front in
    ``outcome_fields``.
    """

    name: str
    title: str
    description: str
    #: detector-variant models this family can drive (``"basic"``, ...).
    models: tuple[str, ...]
    #: can this family produce genuine deadlocks?
    deadlock_capable: bool
    #: does the generated schedule vary with ``spec.seed``?
    randomized: bool
    #: the source model in PAPERS.md this family reproduces (or "paper"
    #: for the source paper's own canned patterns).
    source: str
    schedule: Callable[[WorkloadSpec, Any], Any]
    #: a small, representative spec (used by determinism tests and demos).
    example: WorkloadSpec
    #: system factory for runners that do not build their own system;
    #: signature ``build(spec, *, transport=None, strict=True,
    #: delay_model=None)``.  ``None`` -> build through the variant.
    build: Callable[..., Any] | None = None
    #: names of the extra outcome fields ``collect`` reports.
    outcome_fields: tuple[str, ...] = ()
    collect: Callable[[WorkloadSpec, Any, Any], dict[str, Any]] | None = None
    #: optional spec validator (unknown extra params must be tolerated).
    validate: Callable[[WorkloadSpec], None] | None = None

    def supports_model(self, model: str) -> bool:
        return model in self.models


_REGISTRY: dict[str, WorkloadFamily] = {}
_builtins_loaded = False


def register_family(family: WorkloadFamily) -> WorkloadFamily:
    """Add a family to the registry; names are unique, order preserved.

    Returns the family so registration modules can expose the record as
    a module constant.  Registration order is observable (the default
    random family per model is the first randomized match), so built-ins
    register deterministically from :mod:`repro.workloads.families`.
    """
    if family.name in _REGISTRY:
        raise ConfigurationError(
            f"workload family {family.name!r} is already registered"
        )
    _REGISTRY[family.name] = family
    return family


def ensure_builtin_families() -> None:
    """Load the built-in registration module exactly once.

    Laziness matters for the same reason it does in the variant
    registry: the registration module imports protocol packages, and
    eager loading from this seam's import would drag protocol code into
    every tier that merely names a spec.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.workloads.families  # noqa: F401  (runs the register() calls)


def get_family(name: str) -> WorkloadFamily:
    """Look up one family by name."""
    ensure_builtin_families()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload family {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        ) from None


def all_families() -> tuple[WorkloadFamily, ...]:
    """Every registered family, in registration order."""
    ensure_builtin_families()
    return tuple(_REGISTRY.values())


def family_names() -> tuple[str, ...]:
    ensure_builtin_families()
    return tuple(_REGISTRY)


def families_for_model(model: str) -> tuple[WorkloadFamily, ...]:
    """Families declaring support for one detector-variant model."""
    return tuple(
        family for family in all_families() if family.supports_model(model)
    )


def require_model(family: WorkloadFamily, model: str) -> None:
    """Typed capability check: raise unless ``family`` can drive ``model``.

    Every runner routes model checks through here, so a mismatch always
    fails the same way -- a :class:`~repro.errors.ConfigurationError`
    naming the family and the models it *can* drive -- never a
    hard-coded model guard in a runner.
    """
    if not family.supports_model(model):
        raise ConfigurationError(
            f"workload family {family.name!r} cannot drive model {model!r}; "
            f"it drives: {', '.join(family.models)}"
        )


def default_random_family(model: str) -> WorkloadFamily:
    """The first registered randomized family that can drive ``model``.

    Used by runners whose ``random`` lane historically hard-coded the
    basic model; now any model with a randomized family gets one.
    """
    for family in all_families():
        if family.randomized and family.supports_model(model):
            return family
    raise ConfigurationError(
        f"no registered workload family drives random traffic on model "
        f"{model!r}; registered families: {', '.join(family_names())}"
    )
