"""Schedule bodies behind the registry's canned basic-model families.

These functions are the *implementations* the workload registry
(:mod:`repro.workloads.spec`, registrations in
:mod:`repro.workloads.families`) exposes as the ``cycle``, ``chain``,
``near-cycle``, ``cycle-with-tails``, ``ping-pong``, and
``figure-eight`` families: runners resolve a
:class:`~repro.workloads.spec.WorkloadSpec` to a family and the family
calls down here.  Each function schedules requests on a
:class:`~repro.basic.system.BasicSystem` and returns immediately; run
the system afterwards.  Vertex indices refer to the system's vertices,
so callers size the system to fit.  Direct calls remain supported for
tests and examples that want explicit vertex lists rather than specs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError


def schedule_cycle(
    system: BasicSystem,
    vertices: Sequence[int],
    start: float = 0.0,
    gap: float = 0.5,
) -> None:
    """Each vertex requests its successor; the last request closes the cycle.

    ``vertices[i]`` requests ``vertices[(i + 1) % k]`` at ``start + i*gap``.
    """
    if len(vertices) < 2:
        raise ConfigurationError("a cycle needs at least two vertices")
    k = len(vertices)
    for i, vertex in enumerate(vertices):
        system.schedule_request(start + i * gap, vertex, [vertices[(i + 1) % k]])


def schedule_chain(
    system: BasicSystem,
    vertices: Sequence[int],
    start: float = 0.0,
    gap: float = 0.5,
) -> None:
    """A straight waiting chain (no cycle): v0 -> v1 -> ... -> vk."""
    for i in range(len(vertices) - 1):
        system.schedule_request(start + i * gap, vertices[i], [vertices[i + 1]])


def schedule_near_cycle(
    system: BasicSystem,
    vertices: Sequence[int],
    start: float = 0.0,
    gap: float = 0.5,
) -> None:
    """A cycle with the closing request withheld: the adversarial near-miss.

    Issues the first ``k - 1`` requests of the standard k-cycle pattern
    (``vertices[i]`` requests ``vertices[i + 1]`` at ``start + i*gap``)
    and never the closing one, so the wait graph is the cycle's minus one
    edge.  The last vertex stays active, every wait eventually drains via
    replies, and any declaration is a QRP2 soundness violation -- which
    is the point: unlike :func:`schedule_chain` (a plain waiting chain),
    this pattern exists to present a detector with *almost* the deadlock
    it is tuned for.  It shares the cycle's precondition (at least two
    vertices) rather than the chain's tolerance of degenerate inputs.
    """
    if len(vertices) < 2:
        raise ConfigurationError("a near-cycle needs at least two vertices")
    for i in range(len(vertices) - 1):
        system.schedule_request(start + i * gap, vertices[i], [vertices[i + 1]])


def schedule_cycle_with_tails(
    system: BasicSystem,
    cycle: Sequence[int],
    tails: Sequence[Sequence[int]],
    start: float = 0.0,
    gap: float = 0.5,
) -> None:
    """A cycle plus chains waiting into it.

    Each tail is a vertex sequence whose last element requests the cycle's
    first vertex; tail vertices block forever but are never *on* the cycle
    (they must not declare -- the WFGD computation informs them).

    Scheduling is race-free by construction: the cycle is issued in the
    standard order (every vertex blocks on its own request before the
    predecessor's request would be serviced), and each tail is issued
    leaf-last -- its attachment edge into ``cycle[0]`` (blocked from the
    first instant) goes first, then the tail grows backwards, so every
    tail vertex is already blocked when a request reaches it.  Tail edges
    are therefore black well before the probe computation's declaration
    triggers the WFGD computation.
    """
    schedule_cycle(system, cycle, start=start, gap=gap)
    offset = len(cycle)
    for tail in tails:
        path = list(tail) + [cycle[0]]
        for i in reversed(range(len(path) - 1)):
            system.schedule_request(
                start + offset * gap, path[i], [path[i + 1]]
            )
            offset += 1


def schedule_ping_pong(
    system: BasicSystem,
    pairs: Sequence[tuple[int, int]],
    repetitions: int = 8,
    period: float = 6.0,
    offset: float = 2.6,
    start: float = 0.0,
) -> None:
    """Alternating opposite waits: A waits for B, resolves, then B for A.

    For each pair (a, b) and phase p: ``a`` requests ``b`` at
    ``start + p*period`` and ``b`` requests ``a`` at ``start + p*period +
    offset``.  With the default fixed network delay (1.0) and service
    delay (0.5) an edge lives ~2.5 time units, so ``offset=2.6`` ensures
    the two edges NEVER coexist -- no deadlock ever exists.  Yet any
    detector that combines observations from different instants (e.g.
    centralized snapshot collection) can see both edges "at once" and
    report a phantom cycle.  Used by experiment E8 and the phantom
    example.
    """
    for a, b in pairs:
        for p in range(repetitions):
            base = start + p * period
            system.schedule_request(base, a, [b])
            system.schedule_request(base + offset, b, [a])


def schedule_figure_eight(
    system: BasicSystem,
    shared: int,
    left: Sequence[int],
    right: Sequence[int],
    start: float = 0.0,
    gap: float = 0.5,
) -> None:
    """Two cycles sharing one vertex: shared -> left... -> shared and
    shared -> right... -> shared.

    The shared vertex issues one AND-request for both cycle entries, so it
    waits on both branches at once.
    """
    system.schedule_request(start, shared, [left[0], right[0]])
    offset = 1
    for path in (list(left), list(right)):
        chain = path + [shared]
        for i in range(len(chain) - 1):
            system.schedule_request(
                start + offset * gap, chain[i], [chain[i + 1]]
            )
            offset += 1
