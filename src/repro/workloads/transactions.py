"""Random transactional workload for the DDB model.

Generates transactions in the shape the paper's section 6 model covers:
each transaction starts at a home site, acquires resources *at its home
site* (with a configurable read ratio), computes between lock steps, then
optionally performs **one remote hop** -- a single-resource acquisition at
another site -- and commits.  Victims of deadlock resolution restart with
randomised exponential backoff, so contended workloads make progress.

Why the single-remote-hop shape?  The section 6 wait-for graph contains
intra-controller edges (requester -> local holder) and inter-controller
edges (waiting process -> its remote agent) only.  A cycle therefore
alternates "home process holding local resources while waiting remotely"
and "agent waiting locally" -- exactly the pattern section 6.7 describes
("any cycle ... must include an inter-controller edge directed towards a
constituent process").  A transaction that *holds* a resource through an
agent at one site while *waiting* at another is an idle holder: no edge
leaves the holding agent, so a transaction-level deadlock threaded through
it has no process-level cycle and is invisible to the paper's graph model.
(The authors' follow-up resource-model paper -- reference [1], the CACM/
TOCS "Distributed Deadlock Detection" -- closes this by modelling a
transaction as one logical process spanning sites.)  Restricting every
transaction to home acquisitions followed by at most one single-resource
remote acquisition makes every blocked transaction hold resources only at
the site where it is waiting, so *every* transaction-level deadlock is a
process-level dark cycle and the paper's completeness guarantee applies.
:func:`TransactionSpec`-level conformance is checkable with
:func:`is_single_hop`.

The generator collects the throughput/latency statistics the comparison
experiments (E7/E8) report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._ids import ResourceId, SiteId, TransactionId
from repro.ddb.locks import LockMode
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import (
    Acquire,
    Think,
    TransactionExecution,
    TransactionSpec,
)
from repro.errors import ConfigurationError


def is_single_hop(spec: TransactionSpec) -> bool:
    """True iff ``spec`` fits the section 6 model's representable shape.

    All acquisitions before the last Acquire must be of home-site
    resources is not checkable here (resource homes live in the system
    catalogue); this checks the *structural* half: at most one Acquire
    with a non-trivial batch... (full check in
    :meth:`TransactionWorkload.assert_representable`).
    """
    acquires = [op for op in spec.operations if isinstance(op, Acquire)]
    return all(len(op.items) == 1 for op in acquires)


@dataclass
class WorkloadParams:
    """Shape of a random DDB workload (single-remote-hop transactions)."""

    n_transactions: int = 20
    #: home-site resources acquired per transaction (uniform in [min, max])
    min_local: int = 1
    max_local: int = 2
    #: probability of the final single-resource remote acquisition
    remote_probability: float = 0.8
    #: probability that an acquisition is a read (shared) lock
    read_ratio: float = 0.5
    #: probability that the remote hop targets the hotspot subset
    hotspot_probability: float = 0.0
    #: number of resources forming the hotspot (the first in sorted order)
    hotspot_size: int = 2
    #: Zipf exponent for remote-hop resource popularity: the k-th
    #: resource in global sorted order is picked with weight 1/k**s.
    #: 0 keeps the uniform pick (and its exact RNG draw sequence).
    zipf_s: float = 0.0
    #: mean think time between lock steps
    mean_think: float = 1.0
    #: arrival: transactions begin uniformly over [0, arrival_window]
    arrival_window: float = 20.0
    #: restart victims of deadlock resolution?
    restart_aborted: bool = True
    #: mean of the exponential restart backoff
    mean_backoff: float = 5.0
    #: stop restarting after this virtual time (bounds the run)
    restart_horizon: float = float("inf")

    def validate(self) -> None:
        if self.n_transactions < 1:
            raise ConfigurationError("need at least one transaction")
        if not 0 <= self.min_local <= self.max_local:
            raise ConfigurationError("need 0 <= min_local <= max_local")
        if not 0 <= self.remote_probability <= 1:
            raise ConfigurationError("remote_probability must be in [0, 1]")
        if not 0 <= self.read_ratio <= 1:
            raise ConfigurationError("read_ratio must be in [0, 1]")
        if not 0 <= self.hotspot_probability <= 1:
            raise ConfigurationError("hotspot_probability must be in [0, 1]")
        if self.zipf_s < 0:
            raise ConfigurationError(
                f"zipf_s must be non-negative, got {self.zipf_s}"
            )
        if self.mean_think < 0 or self.mean_backoff <= 0:
            raise ConfigurationError("think/backoff parameters out of range")


@dataclass
class WorkloadStats:
    """Aggregate outcome of one workload run."""

    commits: int = 0
    aborts: int = 0
    response_times: list[float] = field(default_factory=list)

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            raise ValueError("no transaction committed")
        return sum(self.response_times) / len(self.response_times)


class TransactionWorkload:
    """Generate and drive random transactions on a :class:`DdbSystem`."""

    def __init__(self, system: DdbSystem, params: WorkloadParams | None = None) -> None:
        self.system = system
        self.params = params if params is not None else WorkloadParams()
        self.params.validate()
        if not system.resource_home:
            raise ConfigurationError("the system has no resources")
        self._rng = system.transport.rng.stream("workload.transactions")
        self.stats = WorkloadStats()
        self._started_at: dict[TransactionId, float] = {}
        self._by_site: dict[SiteId, list[ResourceId]] = {}
        for resource, site in sorted(system.resource_home.items()):
            self._by_site.setdefault(site, []).append(resource)
        #: global popularity rank (0 = most popular): resources in sorted
        #: order, matching the hotspot's "first in sorted order" rule.
        self._zipf_rank = {
            resource: rank
            for rank, resource in enumerate(sorted(system.resource_home))
        }

    # ------------------------------------------------------------------

    def _mode(self) -> LockMode:
        return (
            LockMode.SHARED
            if self._rng.random() < self.params.read_ratio
            else LockMode.EXCLUSIVE
        )

    def generate_spec(self, tid: int) -> TransactionSpec:
        """Build one random single-remote-hop transaction program."""
        params = self.params
        sites_with_resources = sorted(self._by_site)
        home = self._rng.choice(sites_with_resources)
        local_pool = self._by_site[home]
        count = min(
            self._rng.randint(params.min_local, params.max_local), len(local_pool)
        )
        picked = self._rng.sample(local_pool, count) if count else []

        operations: list[Acquire | Think] = []
        for resource in picked:
            operations.append(Acquire(items=((resource, self._mode()),)))
            if params.mean_think > 0:
                operations.append(Think(self._rng.expovariate(1.0 / params.mean_think)))

        remote_pool = [
            resource
            for resource, site in sorted(self.system.resource_home.items())
            if site != home
        ]
        if remote_pool and self._rng.random() < params.remote_probability:
            hotspot = [
                resource
                for resource in sorted(self.system.resource_home)[: params.hotspot_size]
                if self.system.resource_home[resource] != home
            ]
            if hotspot and self._rng.random() < params.hotspot_probability:
                remote = self._rng.choice(hotspot)
            elif params.zipf_s > 0:
                weights = [
                    (self._zipf_rank[resource] + 1) ** -params.zipf_s
                    for resource in remote_pool
                ]
                remote = self._rng.choices(remote_pool, weights=weights, k=1)[0]
            else:
                remote = self._rng.choice(remote_pool)
            operations.append(Acquire(items=((remote, self._mode()),)))
        return TransactionSpec(
            tid=TransactionId(tid), home=home, operations=tuple(operations)
        )

    def assert_representable(self, spec: TransactionSpec) -> None:
        """Raise if ``spec`` leaves the section 6 representable class:
        home-site acquisitions (any number) followed by at most one
        single-resource remote acquisition as the final Acquire."""
        acquires = [op for op in spec.operations if isinstance(op, Acquire)]
        for op in acquires:
            if len(op.items) != 1:
                raise ConfigurationError(f"multi-item acquire in T{spec.tid}")
        remote_seen = False
        for op in acquires:
            resource = op.items[0][0]
            if self.system.resource_home[resource] != spec.home:
                if remote_seen:
                    raise ConfigurationError(
                        f"T{spec.tid} has more than one remote acquisition"
                    )
                remote_seen = True
            elif remote_seen:
                raise ConfigurationError(
                    f"T{spec.tid} acquires locally after its remote hop"
                )

    def start(self) -> None:
        """Admit all transactions and hook commit/abort handling."""
        self.system.finished_callback = self._on_finished
        for tid in range(1, self.params.n_transactions + 1):
            arrival = self._rng.uniform(0.0, self.params.arrival_window)
            spec = self.generate_spec(tid)
            self.assert_representable(spec)
            self._started_at[spec.tid] = arrival
            self.system.begin(spec, at=arrival)

    # ------------------------------------------------------------------

    def _on_finished(self, execution: TransactionExecution, aborted: bool) -> None:
        tid = execution.spec.tid
        if aborted:
            self.stats.aborts += 1
            if (
                self.params.restart_aborted
                and self.system.now < self.params.restart_horizon
            ):
                backoff = self._rng.expovariate(1.0 / self.params.mean_backoff)
                self.system.restart(tid, delay=backoff)
            return
        self.stats.commits += 1
        self.stats.response_times.append(self.system.now - self._started_at[tid])
