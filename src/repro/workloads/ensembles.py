"""Random wait-graph ensembles over the basic and DDB models.

The generators here realise the graph-structured resource-sharing models
from Barbosa, "The combinatorics of resource sharing", and Oliveira &
Barbosa, "Revisiting deadlock prevention: a probabilistic approach"
(PAPERS.md): a workload is a random directed wait graph drawn from a
named ensemble, and the quantity of interest is how deadlock probability
and time-to-deadlock scale with the ensemble's load factor.

Two graph ensembles drive the basic (AND) model:

* **Erdős–Rényi** ``G(n, p)``: every ordered pair ``(i, j)``, ``i != j``,
  carries a wait edge independently with probability ``p``.  The expected
  out-degree ``p * (n - 1)`` is the load factor; directed cycles (and so
  deadlock) appear with sharply rising probability once it crosses 1.
* **Barabási–Albert** scale-free: vertices attach ``m`` edges each by
  preferential attachment, then every undirected edge is oriented by a
  fair coin.  Hubs concentrate waits the way hot resources do, so the
  deadlock probability at equal mean degree differs from the ER curve --
  that contrast is experiment E9's point.

A third ensemble drives the DDB model: a **hot-resource transaction
mix** where ``load`` transactions per resource contend, a tunable
fraction of remote hops targeting a small hotspot -- the classic
database contention pattern from the Menasce-Muntz line of work.

Every draw is a pure function of the :class:`~repro.workloads.spec.
WorkloadSpec`: graph randomness comes from ``random.Random`` seeded via
:func:`~repro.sim.rng.derive_seed` on the spec's seed and the family
name, never from the transport, so the same spec yields the identical
wait graph on the simulator, the asyncio backend, and the cluster.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed

#: A directed wait edge: requester index -> holder index.
Edge = tuple[int, int]


def spec_rng(seed: int, family: str) -> random.Random:
    """Graph RNG for one (seed, family) pair -- transport-independent."""
    return random.Random(derive_seed(seed, f"workload.{family}"))


def erdos_renyi_edges(n: int, p: float, rng: random.Random) -> list[Edge]:
    """Directed ``G(n, p)``: each ordered pair is an edge with prob. ``p``.

    Pairs are visited in canonical ``(i, j)`` order so the draw sequence
    -- and therefore the graph -- is a pure function of the RNG state.
    """
    if n < 2:
        raise ConfigurationError(f"an ER ensemble needs n >= 2, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    return [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and rng.random() < p
    ]


def barabasi_albert_edges(n: int, m: int, rng: random.Random) -> list[Edge]:
    """Scale-free wait graph: BA growth, then a fair-coin orientation.

    Growth is the standard repeated-endpoints trick: the seed clique is
    ``m + 1`` vertices, and every later vertex draws ``m`` distinct
    neighbours from the multiset of all prior edge endpoints (degree-
    proportional).  Orientation is drawn per undirected edge so cycles
    through hubs can form -- an always-toward-the-hub orientation would
    be acyclic and deadlock-free by construction.
    """
    if m < 1:
        raise ConfigurationError(f"BA attachment needs m >= 1, got {m}")
    if n < m + 2:
        raise ConfigurationError(
            f"a BA ensemble needs n >= m + 2 (got n={n}, m={m})"
        )
    undirected: list[Edge] = []
    # Multiset of endpoints; each edge contributes both ends, so drawing
    # uniformly from it is degree-proportional attachment.
    endpoints: list[int] = []
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            undirected.append((i, j))
            endpoints.extend((i, j))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(endpoints))
        for target in sorted(targets):
            undirected.append((v, target))
            endpoints.extend((v, target))
    oriented: list[Edge] = []
    for u, v in undirected:
        oriented.append((u, v) if rng.random() < 0.5 else (v, u))
    return oriented


def requests_from_edges(n: int, edges: Iterable[Edge]) -> list[tuple[int, list[int]]]:
    """Fold a directed edge list into one AND-request batch per requester.

    Returns ``(vertex, sorted targets)`` pairs in vertex order; vertices
    with no out-edges issue nothing and stay active (they are what lets
    sub-critical graphs drain).  In the AND model one vertex's waits form
    a single batch, so the whole graph is realised with at most ``n``
    requests.
    """
    out: dict[int, set[int]] = {}
    for requester, holder in edges:
        if not 0 <= requester < n or not 0 <= holder < n:
            raise ConfigurationError(
                f"edge ({requester}, {holder}) is outside the vertex range 0..{n - 1}"
            )
        if requester != holder:
            out.setdefault(requester, set()).add(holder)
    return [
        (vertex, sorted(out[vertex])) for vertex in sorted(out)
    ]
