"""Built-in workload family registrations.

Loaded lazily by :func:`repro.workloads.spec.ensure_builtin_families`;
importing this module registers every shipped family.  Three groups:

* canned basic-model patterns (cycle, chain, near-cycle, chain-waves,
  dense, cycle-with-tails, figure-eight, ping-pong) -- the paper's own
  §2-4 shapes, previously re-implemented inline by each runner;
* randomized drivers (``random`` on the basic model, ``ddb-mix`` /
  ``ddb-hot`` on the DDB model) wrapping the existing workload classes;
* graph ensembles (``er``, ``ba``) from :mod:`repro.workloads.ensembles`;
* the ``bursty`` storms-then-quiet workload behind the E10 scheduling
  study (static-T curves vs the adaptive controller).

Registration order is part of the contract:
:func:`~repro.workloads.spec.default_random_family` picks the *first*
randomized family per model, so ``random`` (basic) and ``ddb-mix`` (DDB)
must register before their siblings.

Schedule bodies for the families the sweep grids already run reproduce
the historical builders exactly -- same request times, same RNG stream
names, same parameter defaults -- so the e1-e8 shape hashes are
byte-identical across the refactor (guarded by ``repro bench check``).
"""

from __future__ import annotations

from typing import Any

from repro._ids import ResourceId, SiteId, TransactionId
from repro.basic.system import BasicSystem
from repro.ddb.locks import LockMode
from repro.ddb.resolution import AbortLowestTransactionInCycle, NoResolution
from repro.ddb.system import DdbSystem, uniform_resources
from repro.ddb.transaction import Think, TransactionSpec, acquire
from repro.errors import ConfigurationError
from repro.ormodel.system import OrSystem
from repro.workloads import ensembles, scenarios
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.spec import (
    WorkloadFamily,
    WorkloadSpec,
    make_params,
    register_family,
)
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

# ----------------------------------------------------------------------
# canned basic-model patterns


def _schedule_cycle(spec: WorkloadSpec, system: BasicSystem) -> None:
    scenarios.schedule_cycle(system, list(range(spec.n)))


def _schedule_chain(spec: WorkloadSpec, system: BasicSystem) -> None:
    scenarios.schedule_chain(system, list(range(spec.n)))


def _schedule_near_cycle(spec: WorkloadSpec, system: BasicSystem) -> None:
    scenarios.schedule_near_cycle(system, list(range(spec.n)))


def _schedule_chain_waves(spec: WorkloadSpec, system: BasicSystem) -> None:
    period = spec.param("period", 15.0)
    for wave in range(int(spec.param("waves", 1))):
        scenarios.schedule_chain(
            system, list(range(spec.n)), start=wave * period, gap=0.2
        )


def _schedule_dense(spec: WorkloadSpec, system: BasicSystem) -> None:
    fan_out = int(spec.param("fan_out"))
    for i in range(spec.n):
        targets = sorted({(i + d) % spec.n for d in range(1, fan_out + 1)} - {i})
        system.schedule_request(0.1 * i, i, targets)


def _schedule_tails(spec: WorkloadSpec, system: BasicSystem) -> None:
    cycle_size = int(spec.param("cycle"))
    offset = cycle_size
    tail_ids: list[list[int]] = []
    for length in (int(v) for v in spec.param_list("tail")):
        tail_ids.append(list(range(offset, offset + length)))
        offset += length
    scenarios.schedule_cycle_with_tails(system, list(range(cycle_size)), tail_ids)


def _schedule_figure_eight(spec: WorkloadSpec, system: BasicSystem) -> None:
    if spec.n < 3:
        raise ConfigurationError(
            f"a figure-eight needs n >= 3 (shared vertex + two loops), got {spec.n}"
        )
    half = (spec.n - 1) // 2
    left = list(range(1, 1 + half))
    right = list(range(1 + half, spec.n))
    scenarios.schedule_figure_eight(system, 0, left, right)


def _schedule_ping_pong(spec: WorkloadSpec, system: BasicSystem) -> None:
    pairs = [(2 * i, 2 * i + 1) for i in range(spec.n // 2)]
    scenarios.schedule_ping_pong(
        system,
        pairs,
        repetitions=int(spec.param("repetitions", 8)),
        period=spec.param("period", 6.0),
        offset=spec.param("offset", 2.6),
    )


# ----------------------------------------------------------------------
# randomized basic-model driver


def _schedule_random(spec: WorkloadSpec, system: BasicSystem) -> RandomRequestWorkload:
    workload = RandomRequestWorkload(
        system,
        mean_think=spec.param("mean_think", 2.0),
        max_targets=int(spec.param("max_targets", 2)),
        duration=spec.duration,
        request_probability=spec.param("request_probability", 0.8),
    )
    workload.start()
    return workload


def _collect_random(
    spec: WorkloadSpec, system: BasicSystem, handle: Any
) -> dict[str, Any]:
    return {
        "avoided": system.metrics.counter_value("basic.computations.avoided"),
    }


# ----------------------------------------------------------------------
# graph ensembles (basic + OR models)
#
# Both system wrappers expose the same ``schedule_request(time, source,
# targets)`` surface; the per-vertex batch becomes an AND-request on the
# basic model and an any-of dependent set on the OR model.  Each vertex
# requests at most once (one batch per requester at its own instant), so
# the OR model's "may not request while blocked" rule is never tripped.


def _schedule_er(
    spec: WorkloadSpec, system: BasicSystem | OrSystem
) -> list[ensembles.Edge]:
    rng = ensembles.spec_rng(spec.seed, "er")
    edges = ensembles.erdos_renyi_edges(spec.n, spec.param("p"), rng)
    for vertex, targets in ensembles.requests_from_edges(spec.n, edges):
        system.schedule_request(0.1 * vertex, vertex, targets)
    return edges


def _schedule_ba(
    spec: WorkloadSpec, system: BasicSystem | OrSystem
) -> list[ensembles.Edge]:
    rng = ensembles.spec_rng(spec.seed, "ba")
    edges = ensembles.barabasi_albert_edges(
        spec.n, int(spec.param("m", 2)), rng
    )
    for vertex, targets in ensembles.requests_from_edges(spec.n, edges):
        system.schedule_request(0.1 * vertex, vertex, targets)
    return edges


def _collect_ensemble(
    spec: WorkloadSpec, system: BasicSystem | OrSystem, handle: Any
) -> dict[str, Any]:
    edges = handle if isinstance(handle, list) else []
    requesters = {requester for requester, _ in edges}
    return {"graph_edges": len(edges), "graph_requesters": len(requesters)}


# ----------------------------------------------------------------------
# bursty load (the E10 scheduling study)


def _bursty_layout(spec: WorkloadSpec) -> tuple[list[int], list[int], list[int]]:
    """Partition the vertex range into (storm pool, servers, planted cycle)."""
    if spec.n < 9:
        raise ConfigurationError(
            f"the bursty family needs n >= 9 (a storm pool of at least "
            f"four, two servers, and the planted 3-cycle), got {spec.n}"
        )
    cycle = list(range(spec.n - 3, spec.n))
    servers = [spec.n - 5, spec.n - 4]
    pool = list(range(spec.n - 5))
    return pool, servers, cycle


def _validate_bursty(spec: WorkloadSpec) -> None:
    _bursty_layout(spec)


def _schedule_bursty(spec: WorkloadSpec, system: BasicSystem) -> dict[str, float]:
    """Contention storms, a quiet tail, then one planted deadlock.

    Three phases on disjoint vertex roles:

    * **Quiet lead-in and tail**: sparse single requests against two
      always-active server vertices -- short ~3-unit waits bracketing
      the storms.  The lead-in gives an adaptive policy its baseline
      lifetime estimate before the first burst; the tail pulls the
      estimate back down after the storms.
    * **Storms**: every `period`, the storm pool is shuffled (seeded)
      and partitioned into waiting chains of `chain_len`; every chain
      drains on its own well before the next burst, so the long waits
      are churn, never deadlock.
    * **Planted cycle**: the standard 3-cycle on vertices no other phase
      touches, closing at the returned ``cycle_closed_at`` so E10 can
      measure detection latency from the instant the deadlock exists.
    """
    pool, servers, cycle = _bursty_layout(spec)
    rng = ensembles.spec_rng(spec.seed, "bursty")
    bursts = int(spec.param("bursts", 6))
    period = spec.param("period", 40.0)
    chain_len = max(2, int(spec.param("chain_len", 6)))
    lead = int(spec.param("lead", 2))
    quiet = int(spec.param("quiet", 16))
    quiet_gap = spec.param("quiet_gap", 6.0)

    def trickle(start: float, count: int, offset: int) -> float:
        for q in range(count):
            client = pool[(offset + q) % len(pool)]
            server = servers[(offset + q) % len(servers)]
            system.schedule_request(start + q * quiet_gap, client, [server])
        return start + count * quiet_gap

    storms_start = trickle(0.0, lead, 0)
    for burst in range(bursts):
        order = list(pool)
        rng.shuffle(order)
        start = storms_start + burst * period
        for i in range(0, len(order) - chain_len + 1, chain_len):
            scenarios.schedule_chain(
                system, order[i : i + chain_len], start=start, gap=0.2
            )
    cycle_start = trickle(storms_start + bursts * period, quiet, lead)
    scenarios.schedule_cycle(system, cycle, start=cycle_start, gap=0.5)
    return {"cycle_closed_at": cycle_start + (len(cycle) - 1) * 0.5}


def _collect_bursty(
    spec: WorkloadSpec, system: BasicSystem, handle: Any
) -> dict[str, Any]:
    return {
        "cycle_closed_at": handle["cycle_closed_at"],
        "avoided": system.metrics.counter_value("basic.computations.avoided"),
    }


# ----------------------------------------------------------------------
# DDB-model families


def _ddb_resolution(spec: WorkloadSpec) -> NoResolution | AbortLowestTransactionInCycle:
    return (
        AbortLowestTransactionInCycle()
        if spec.param("resolve", 0.0)
        else NoResolution()
    )


def _build_ddb(
    spec: WorkloadSpec,
    *,
    transport: Any | None = None,
    strict: bool = True,
    delay_model: Any | None = None,
    initiation: Any | None = None,
) -> DdbSystem:
    if spec.n < 2:
        raise ConfigurationError(
            f"a DDB workload needs at least two sites, got {spec.n}"
        )
    n_resources = int(spec.param("resources", 3.0 * spec.n))
    return DdbSystem(
        n_sites=spec.n,
        resources=uniform_resources(n_resources, spec.n),
        seed=spec.seed,
        delay_model=delay_model,
        resolution=_ddb_resolution(spec),
        strict=strict,
        transport=transport,
        **({"initiation": initiation} if initiation is not None else {}),
    )


def _ddb_workload_params(spec: WorkloadSpec, hot_default: float) -> WorkloadParams:
    n_resources = int(spec.param("resources", 3.0 * spec.n))
    load = spec.param("load", 1.0)
    horizon = spec.duration if spec.duration else float("inf")
    return WorkloadParams(
        n_transactions=max(1, round(load * n_resources)),
        min_local=int(spec.param("min_local", 1)),
        max_local=int(spec.param("max_local", 2)),
        remote_probability=spec.param("remote", 0.9),
        read_ratio=spec.param("read_ratio", 0.2),
        hotspot_probability=spec.param("hot", hot_default),
        hotspot_size=int(spec.param("hot_size", 2)),
        zipf_s=spec.param("zipf_s", 0.0),
        mean_think=spec.param("think", 1.0),
        arrival_window=spec.param("window", 20.0),
        restart_aborted=bool(spec.param("resolve", 0.0)),
        restart_horizon=horizon,
    )


def _schedule_ddb_mix(spec: WorkloadSpec, system: DdbSystem) -> TransactionWorkload:
    workload = TransactionWorkload(system, _ddb_workload_params(spec, hot_default=0.0))
    workload.start()
    return workload


def _schedule_ddb_hot(spec: WorkloadSpec, system: DdbSystem) -> TransactionWorkload:
    workload = TransactionWorkload(system, _ddb_workload_params(spec, hot_default=0.8))
    workload.start()
    return workload


def _collect_ddb(spec: WorkloadSpec, system: DdbSystem, handle: Any) -> dict[str, Any]:
    stats = handle.stats
    return {"commits": stats.commits, "aborts": stats.aborts}


def _two_site_operations(deadlock: bool) -> tuple[tuple[Any, ...], ...]:
    X = LockMode.EXCLUSIVE
    if deadlock:
        # T1 holds r0 and wants r1; T2 holds r1 and wants r0.
        return (
            (acquire(("r0", X)), Think(1.0), acquire(("r1", X))),
            (acquire(("r1", X)), Think(1.0), acquire(("r0", X))),
        )
    # Disjoint lock sets: both transactions commit without waiting.
    return (
        (acquire(("r0", X)), Think(1.0)),
        (acquire(("r1", X)), Think(1.0)),
    )


def _build_two_site(
    spec: WorkloadSpec,
    *,
    transport: Any | None = None,
    strict: bool = True,
    delay_model: Any | None = None,
    initiation: Any | None = None,
) -> DdbSystem:
    resources = {ResourceId("r0"): SiteId(0), ResourceId("r1"): SiteId(1)}
    return DdbSystem(
        n_sites=2,
        resources=resources,
        seed=spec.seed,
        delay_model=delay_model,
        strict=strict,
        transport=transport,
        **({"initiation": initiation} if initiation is not None else {}),
    )


def _schedule_two_site(deadlock: bool, system: DdbSystem) -> None:
    for index, steps in enumerate(_two_site_operations(deadlock)):
        system.begin(
            TransactionSpec(
                tid=TransactionId(index + 1),
                home=SiteId(index),
                operations=steps,
            ),
            at=0.1 * index,
        )


def _schedule_ddb_cross(spec: WorkloadSpec, system: DdbSystem) -> None:
    _schedule_two_site(True, system)


def _schedule_ddb_disjoint(spec: WorkloadSpec, system: DdbSystem) -> None:
    _schedule_two_site(False, system)


# ----------------------------------------------------------------------
# OR-model families


def _schedule_or_knot(spec: WorkloadSpec, system: OrSystem) -> None:
    # The §7 knot: p0 waits any{p1, p2}, both wait any{p0}.
    system.schedule_request(0.0, 1, [0])
    system.schedule_request(0.3, 2, [0])
    system.schedule_request(0.6, 0, [1, 2])


def _schedule_or_clean(spec: WorkloadSpec, system: OrSystem) -> None:
    # One OR-request against an active vertex: granted, no deadlock.
    system.schedule_request(0.0, 1, [0])


# ----------------------------------------------------------------------
# registrations (order is observable -- see the module docstring)

CYCLE = register_family(
    WorkloadFamily(
        name="cycle",
        title="k-cycle (the paper's standard deadlock)",
        description=(
            "Vertex i requests vertex (i+1) mod k at 0.5*i; the last "
            "request closes the cycle and the whole ring is deadlocked."
        ),
        models=("basic",),
        deadlock_capable=True,
        randomized=False,
        source="paper §2-4",
        schedule=_schedule_cycle,
        example=WorkloadSpec(family="cycle", n=4),
    )
)

CHAIN = register_family(
    WorkloadFamily(
        name="chain",
        title="straight waiting chain (drains clean)",
        description=(
            "v0 -> v1 -> ... -> vk with no closing edge; the tail vertex "
            "stays active so replies drain the whole chain."
        ),
        models=("basic",),
        deadlock_capable=False,
        randomized=False,
        source="paper §2-4",
        schedule=_schedule_chain,
        example=WorkloadSpec(family="chain", n=4),
    )
)

NEAR_CYCLE = register_family(
    WorkloadFamily(
        name="near-cycle",
        title="cycle with the closing edge withheld",
        description=(
            "The k-cycle request pattern minus its final closing request: "
            "the last vertex stays active, so any declaration is a "
            "soundness violation.  Distinct from `chain` by intent -- it "
            "is the adversarial near-miss of `cycle`, sharing its "
            "timing, and requires k >= 2 like a cycle does."
        ),
        models=("basic",),
        deadlock_capable=False,
        randomized=False,
        source="paper §3 (QRP2 near-miss)",
        schedule=_schedule_near_cycle,
        example=WorkloadSpec(family="near-cycle", n=4),
    )
)

CHAIN_WAVES = register_family(
    WorkloadFamily(
        name="chain-waves",
        title="repeated chain waves (churn without deadlock)",
        description=(
            "`waves` copies of the n-chain issued every `period` time "
            "units (gap 0.2): continuous edge churn that must never "
            "produce a declaration."
        ),
        models=("basic",),
        deadlock_capable=False,
        randomized=False,
        source="paper §2-4",
        schedule=_schedule_chain_waves,
        example=WorkloadSpec(
            family="chain-waves", n=6, params=make_params(waves=2, period=15.0)
        ),
    )
)

DENSE = register_family(
    WorkloadFamily(
        name="dense",
        title="dense circulant graph (max probe amplification)",
        description=(
            "Every vertex AND-requests its next `fan_out` successors "
            "around the ring at 0.1*i: the densest wait graph the §4 "
            "bound analysis covers."
        ),
        models=("basic",),
        deadlock_capable=True,
        randomized=False,
        source="paper §4 (cost bounds)",
        schedule=_schedule_dense,
        example=WorkloadSpec(family="dense", n=8, params=make_params(fan_out=3)),
    )
)

CYCLE_WITH_TAILS = register_family(
    WorkloadFamily(
        name="cycle-with-tails",
        title="cycle plus chains waiting into it (WFGD workload)",
        description=(
            "A `cycle`-sized ring plus `tail` chains attached to its "
            "first vertex, issued leaf-last so every tail edge is black "
            "before detection; tail vertices deadlock without being on "
            "the cycle (the §5 WFGD computation informs them)."
        ),
        models=("basic",),
        deadlock_capable=True,
        randomized=False,
        source="paper §5 (WFGD)",
        schedule=_schedule_tails,
        example=WorkloadSpec(
            family="cycle-with-tails",
            n=8,
            params=(("cycle", 3.0), ("tail", 2.0), ("tail", 3.0)),
        ),
    )
)

FIGURE_EIGHT = register_family(
    WorkloadFamily(
        name="figure-eight",
        title="two cycles sharing one vertex",
        description=(
            "Vertex 0 AND-requests the entries of two loops that both "
            "return to it: two overlapping deadlocked cycles through one "
            "shared vertex."
        ),
        models=("basic",),
        deadlock_capable=True,
        randomized=False,
        source="paper §2-4",
        schedule=_schedule_figure_eight,
        example=WorkloadSpec(family="figure-eight", n=5),
    )
)

PING_PONG = register_family(
    WorkloadFamily(
        name="ping-pong",
        title="alternating opposite waits (phantom-deadlock bait)",
        description=(
            "Paired vertices alternate opposite waits timed so the two "
            "edges never coexist: no deadlock ever exists, but detectors "
            "that mix observations from different instants see a phantom "
            "cycle (experiment E8's discriminator)."
        ),
        models=("basic",),
        deadlock_capable=False,
        randomized=False,
        source="Gray et al. phantom-deadlock critique (PAPERS.md)",
        schedule=_schedule_ping_pong,
        example=WorkloadSpec(family="ping-pong", n=4),
    )
)

RANDOM = register_family(
    WorkloadFamily(
        name="random",
        title="random AND-request churn (basic model)",
        description=(
            "Every vertex alternates exponential think time with an "
            "AND-request to a random vertex subset until `duration`; "
            "deadlocks form at random and everything else drains."
        ),
        models=("basic",),
        deadlock_capable=True,
        randomized=True,
        source="paper §4.3 (delayed-T regime)",
        schedule=_schedule_random,
        example=WorkloadSpec(family="random", n=10, duration=60.0),
        outcome_fields=("avoided",),
        collect=_collect_random,
    )
)

ERDOS_RENYI = register_family(
    WorkloadFamily(
        name="er",
        title="Erdős–Rényi wait-graph ensemble G(n, p)",
        description=(
            "Each ordered vertex pair waits independently with "
            "probability `p`; expected out-degree p*(n-1) is the load "
            "factor, and deadlock probability rises sharply past load 1. "
            "On the OR model each batch is an any-of dependent set."
        ),
        models=("basic", "ormodel"),
        deadlock_capable=True,
        randomized=True,
        source="Barbosa, combinatorics of resource sharing (PAPERS.md)",
        schedule=_schedule_er,
        example=WorkloadSpec(family="er", n=16, params=make_params(p=0.1)),
        outcome_fields=("graph_edges", "graph_requesters"),
        collect=_collect_ensemble,
    )
)

BARABASI_ALBERT = register_family(
    WorkloadFamily(
        name="ba",
        title="Barabási–Albert scale-free wait-graph ensemble",
        description=(
            "Preferential-attachment growth with `m` edges per vertex "
            "and fair-coin orientation: hub vertices concentrate waits "
            "the way hot resources do. On the OR model each batch is an "
            "any-of dependent set."
        ),
        models=("basic", "ormodel"),
        deadlock_capable=True,
        randomized=True,
        source="Oliveira & Barbosa, probabilistic deadlock prevention (PAPERS.md)",
        schedule=_schedule_ba,
        example=WorkloadSpec(family="ba", n=16, params=make_params(m=2)),
        outcome_fields=("graph_edges", "graph_requesters"),
        collect=_collect_ensemble,
    )
)

BURSTY = register_family(
    WorkloadFamily(
        name="bursty",
        title="contention storms + quiet tail + one planted deadlock",
        description=(
            "Periodic bursts of seeded waiting chains that always drain, "
            "a quiet stretch of short server waits, then a planted "
            "3-cycle on untouched vertices: the E10 workload where "
            "static-T initiation pays for the storms on every burst "
            "while the adaptive controller learns them once."
        ),
        models=("basic",),
        deadlock_capable=True,
        randomized=True,
        source="Ling, Chen & Chiang detection scheduling (PAPERS.md)",
        schedule=_schedule_bursty,
        example=WorkloadSpec(family="bursty", n=17),
        outcome_fields=("cycle_closed_at", "avoided"),
        collect=_collect_bursty,
        validate=_validate_bursty,
    )
)

DDB_CROSS = register_family(
    WorkloadFamily(
        name="ddb-cross",
        title="cross-site exclusive-lock deadlock (DDB)",
        description=(
            "Two transactions on two sites acquire {r0, r1} in opposite "
            "orders: the §6 controller model's standard deadlock."
        ),
        models=("ddb",),
        deadlock_capable=True,
        randomized=False,
        source="paper §6 (Menasce-Muntz controllers)",
        schedule=_schedule_ddb_cross,
        example=WorkloadSpec(family="ddb-cross", n=2),
        build=_build_two_site,
    )
)

DDB_DISJOINT = register_family(
    WorkloadFamily(
        name="ddb-disjoint",
        title="disjoint lock sets (DDB, drains clean)",
        description=(
            "Two transactions lock disjoint resources and commit without "
            "ever waiting: the DDB clean-run scenario."
        ),
        models=("ddb",),
        deadlock_capable=False,
        randomized=False,
        source="paper §6 (Menasce-Muntz controllers)",
        schedule=_schedule_ddb_disjoint,
        example=WorkloadSpec(family="ddb-disjoint", n=2),
        build=_build_two_site,
    )
)

DDB_MIX = register_family(
    WorkloadFamily(
        name="ddb-mix",
        title="random single-remote-hop transaction mix (DDB)",
        description=(
            "`load` transactions per resource acquire home-site locks "
            "then one optional remote hop (the §6 representable shape); "
            "detection-only by default (`resolve=1` turns on victim "
            "abort + restart)."
        ),
        models=("ddb",),
        deadlock_capable=True,
        randomized=True,
        source="paper §6 + Menasce-Muntz line (PAPERS.md)",
        schedule=_schedule_ddb_mix,
        example=WorkloadSpec(
            family="ddb-mix", n=3, params=make_params(load=1.0)
        ),
        build=_build_ddb,
        outcome_fields=("commits", "aborts"),
        collect=_collect_ddb,
    )
)

DDB_HOT = register_family(
    WorkloadFamily(
        name="ddb-hot",
        title="hot-resource transaction mix with victim recovery (DDB)",
        description=(
            "The `ddb-mix` shape with most remote hops landing on a "
            "small hotspot and victim resolution on by default: sustained "
            "contention churn exercising abort, backoff, and restart. "
            "`zipf_s` > 0 skews the non-hotspot remote picks by Zipf "
            "popularity rank (seed-deterministic; 0 keeps them uniform)."
        ),
        models=("ddb",),
        deadlock_capable=True,
        randomized=True,
        source="Oliveira & Barbosa, probabilistic deadlock prevention (PAPERS.md)",
        schedule=_schedule_ddb_hot,
        example=WorkloadSpec(
            family="ddb-hot",
            n=3,
            duration=200.0,
            params=make_params(load=1.5, resolve=1.0),
        ),
        build=_build_ddb,
        outcome_fields=("commits", "aborts"),
        collect=_collect_ddb,
    )
)

OR_KNOT = register_family(
    WorkloadFamily(
        name="or-knot",
        title="OR-model knot (every path blocked)",
        description=(
            "p0 waits any{p1, p2} while both wait any{p0}: a knot, so "
            "the OR model's deadlock criterion holds for all three."
        ),
        models=("ormodel",),
        deadlock_capable=True,
        randomized=False,
        source="paper §7 (communication model)",
        schedule=_schedule_or_knot,
        example=WorkloadSpec(family="or-knot", n=3),
    )
)

OR_CLEAN = register_family(
    WorkloadFamily(
        name="or-clean",
        title="single OR-request against an active vertex",
        description=(
            "One OR-request that is granted immediately: the OR model's "
            "clean-run scenario."
        ),
        models=("ormodel",),
        deadlock_capable=False,
        randomized=False,
        source="paper §7 (communication model)",
        schedule=_schedule_or_clean,
        example=WorkloadSpec(family="or-clean", n=3),
    )
)
