"""Random request/reply driver for the basic model.

Every vertex alternates between *thinking* (exponentially distributed) and
issuing an AND-request to a random set of other vertices.  Requests that
land on a cycle deadlock permanently (auto-reply vertices obey G3 and
never reply while blocked); everything else churns -- edges are created
and resolve continuously, which is precisely the regime that stresses
soundness (probes racing replies) and the delayed-T initiation tradeoff.

The driver stops issuing new requests after ``duration``; the system then
drains to quiescence except for deadlocked vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._ids import VertexId
from repro.basic.system import BasicSystem
from repro.basic.vertex import VertexProcess
from repro.errors import ConfigurationError


@dataclass
class RandomRequestWorkload:
    """Drive a :class:`BasicSystem` with random AND-requests.

    Parameters
    ----------
    system:
        The system to drive (its seed controls this workload's RNG).
    mean_think:
        Mean exponential think time between a vertex's request batches.
    max_targets:
        Maximum AND-fan-out per request batch (uniform in 1..max_targets).
    duration:
        Virtual time after which no further requests are issued.
    request_probability:
        Per think-wakeup probability of actually issuing a request batch.
    """

    system: BasicSystem
    mean_think: float = 2.0
    max_targets: int = 2
    duration: float = 100.0
    request_probability: float = 0.8

    def __post_init__(self) -> None:
        if self.mean_think <= 0:
            raise ConfigurationError("mean_think must be positive")
        if not 1 <= self.max_targets < len(self.system.vertices):
            raise ConfigurationError(
                "max_targets must be in [1, n_vertices - 1] "
                f"(got {self.max_targets} for {len(self.system.vertices)} vertices)"
            )
        if not 0 < self.request_probability <= 1:
            raise ConfigurationError("request_probability must be in (0, 1]")
        self._rng = self.system.transport.rng.stream("workload.basic_random")
        self.requests_issued = 0

    def start(self) -> None:
        """Schedule the first wake-up of every vertex and hook unblocking."""
        for vertex in self.system.vertices.values():
            vertex.unblocked_callback = self._on_unblocked
            self._schedule_wakeup(vertex)

    # ------------------------------------------------------------------

    def _schedule_wakeup(self, vertex: VertexProcess) -> None:
        delay = self._rng.expovariate(1.0 / self.mean_think)
        if self.system.now + delay > self.duration:
            return
        self.system.transport.schedule(
            delay,
            lambda: self._act(vertex),
            name=f"workload wakeup v{vertex.vertex_id}",
        )

    def _act(self, vertex: VertexProcess) -> None:
        if vertex.blocked:
            # Still waiting; it will be rescheduled when it unblocks.
            return
        if self._rng.random() < self.request_probability:
            others = [
                VertexId(i)
                for i in range(len(self.system.vertices))
                if VertexId(i) != vertex.vertex_id
            ]
            count = self._rng.randint(1, self.max_targets)
            targets = self._rng.sample(others, count)
            vertex.request(targets)
            self.requests_issued += 1
            if vertex.blocked:
                return  # wake again on unblock
        self._schedule_wakeup(vertex)

    def _on_unblocked(self, vertex: VertexProcess) -> None:
        self._schedule_wakeup(vertex)
