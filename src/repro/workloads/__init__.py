"""Workload generators for the basic and DDB models.

* :mod:`repro.workloads.scenarios` -- canned basic-model request patterns
  (k-cycles, chains, near-cycles, figure-eights) used across tests,
  examples, and benchmarks.
* :mod:`repro.workloads.basic_random` -- a random request/reply driver for
  the basic model, producing both churn (edges that resolve) and genuine
  deadlocks, with tunable rates.
* :mod:`repro.workloads.transactions` -- a random transactional workload
  for the DDB model (sites, resource hotspots, read ratios, think times,
  abort/restart with randomised backoff).
"""

from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import (
    schedule_chain,
    schedule_cycle,
    schedule_cycle_with_tails,
    schedule_figure_eight,
    schedule_near_cycle,
)
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

__all__ = [
    "RandomRequestWorkload",
    "TransactionWorkload",
    "WorkloadParams",
    "schedule_chain",
    "schedule_cycle",
    "schedule_cycle_with_tails",
    "schedule_figure_eight",
    "schedule_near_cycle",
]
