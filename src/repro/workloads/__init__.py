"""The workload layer: a registry of workload families behind frozen specs.

Workloads are resolved the way detectors are: a frozen, picklable
:class:`~repro.workloads.spec.WorkloadSpec` names one workload (family +
topology/load params + seed + duration, canonical ``workload_id``), and
a :class:`~repro.workloads.spec.WorkloadFamily` registry -- mirroring
:class:`~repro.core.registry.DetectorVariant` -- declares which models
each family can drive, how to schedule it onto a built system, and what
outcome fields it reports.  Every runner (sweep, cluster, live, monitor,
the ``repro workloads`` CLI) resolves through this registry.

* :mod:`repro.workloads.spec` -- the seam: specs, families, and the
  registry (importable from any tier; see lint rule RPX004).
* :mod:`repro.workloads.families` -- built-in registrations: the canned
  §2-4 patterns, the randomized basic/DDB drivers, and the graph
  ensembles.
* :mod:`repro.workloads.ensembles` -- Erdős–Rényi and Barabási–Albert
  wait-graph generators plus the hot-resource DDB mix parameters.
* :mod:`repro.workloads.provision` -- build + schedule + summarise one
  (variant, spec) pair on any transport backend.
* :mod:`repro.workloads.scenarios` -- the schedule bodies behind the
  canned basic-model families (also callable directly with explicit
  vertex lists).
* :mod:`repro.workloads.basic_random` -- the random request/reply driver
  behind the ``random`` family.
* :mod:`repro.workloads.transactions` -- the single-remote-hop DDB
  transaction generator behind ``ddb-mix`` / ``ddb-hot``.

This ``__init__`` only loads the seam eagerly; everything that imports
protocol systems resolves lazily (PEP 562), so core-tier modules can
``import repro.workloads.spec`` without dragging protocol packages --
or a circular import -- through the package initialiser.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

from repro.workloads.spec import (
    WorkloadFamily,
    WorkloadSpec,
    all_families,
    default_random_family,
    families_for_model,
    family_names,
    get_family,
    register_family,
    require_model,
)

#: Lazily resolved exports: name -> (module, attribute).  These modules
#: import protocol systems, so loading them from the package initialiser
#: would defeat the seam (and cycle back through ``repro.basic``).
_LAZY_EXPORTS: dict[str, tuple[str, str]] = {
    "ProvisionedWorkload": ("repro.workloads.provision", "ProvisionedWorkload"),
    "provision_workload": ("repro.workloads.provision", "provision_workload"),
    "RandomRequestWorkload": ("repro.workloads.basic_random", "RandomRequestWorkload"),
    "TransactionWorkload": ("repro.workloads.transactions", "TransactionWorkload"),
    "WorkloadParams": ("repro.workloads.transactions", "WorkloadParams"),
    "schedule_chain": ("repro.workloads.scenarios", "schedule_chain"),
    "schedule_cycle": ("repro.workloads.scenarios", "schedule_cycle"),
    "schedule_cycle_with_tails": (
        "repro.workloads.scenarios",
        "schedule_cycle_with_tails",
    ),
    "schedule_figure_eight": ("repro.workloads.scenarios", "schedule_figure_eight"),
    "schedule_near_cycle": ("repro.workloads.scenarios", "schedule_near_cycle"),
}

__all__ = [
    "ProvisionedWorkload",
    "RandomRequestWorkload",
    "TransactionWorkload",
    "WorkloadFamily",
    "WorkloadParams",
    "WorkloadSpec",
    "all_families",
    "default_random_family",
    "families_for_model",
    "family_names",
    "get_family",
    "provision_workload",
    "register_family",
    "require_model",
    "schedule_chain",
    "schedule_cycle",
    "schedule_cycle_with_tails",
    "schedule_figure_eight",
    "schedule_near_cycle",
]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(import_module(module_name), attribute)


def __dir__() -> list[str]:
    return sorted(__all__)
