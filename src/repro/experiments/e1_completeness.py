"""E1 -- Theorem 1 (QRP1): every true deadlock is detected.

Two workload families:

1. **Structured cycles**: k-cycles for k in a sweep, each under several
   seeds and exponential message delays.  The vertex that closes the cycle
   initiates on a dark cycle (section 4.2 rule), so detection must follow.
2. **Random dynamics**: the random request workload; at quiescence every
   cyclic dark SCC must contain a declaring vertex.

The table reports, per configuration: deadlock components formed, detected,
and missed (the paper predicts 0 missed -- and measures 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.core.registry import get_variant
from repro.sim.network import ExponentialDelay
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import schedule_cycle

#: Sweep axes.  ``repro.sweep.grids`` re-expresses this experiment as a
#: declarative grid over the same axes, so the numbers stay in one place.
CYCLE_SIZES = (2, 3, 4, 8, 16, 32)
QUICK_CYCLE_SIZES = (2, 3, 4, 8)
CYCLE_SEEDS = (0, 1, 2)
QUICK_CYCLE_SEEDS = (0, 1)
RANDOM_SEEDS = tuple(range(8))
QUICK_RANDOM_SEEDS = (0, 1)
RANDOM_N_VERTICES = 10
RANDOM_DURATION = 60.0


@dataclass
class E1Result:
    label: str
    components_formed: int
    components_detected: int

    @property
    def missed(self) -> int:
        return self.components_formed - self.components_detected


def run_cycles(
    sizes: tuple[int, ...] = CYCLE_SIZES,
    seeds: tuple[int, ...] = CYCLE_SEEDS,
) -> list[E1Result]:
    results: list[E1Result] = []
    for k in sizes:
        formed = detected = 0
        for seed in seeds:
            system = get_variant("basic").build(
                n_vertices=k, seed=seed, delay_model=ExponentialDelay(mean=1.0)
            )
            schedule_cycle(system, list(range(k)))
            system.run_to_quiescence()
            system.assert_soundness()
            report = system.completeness_report()
            total = len(system._dark_sccs())
            formed += total
            detected += total - len(report.undetected_components)
        results.append(
            E1Result(
                label=f"{k}-cycle", components_formed=formed, components_detected=detected
            )
        )
    return results


def run_random(
    n_vertices: int = RANDOM_N_VERTICES,
    seeds: tuple[int, ...] = RANDOM_SEEDS,
    duration: float = RANDOM_DURATION,
) -> list[E1Result]:
    formed = detected = 0
    for seed in seeds:
        system = get_variant("basic").build(
            n_vertices=n_vertices,
            seed=seed,
            delay_model=ExponentialDelay(mean=1.0),
            service_delay=0.5,
        )
        workload = RandomRequestWorkload(
            system, mean_think=2.0, max_targets=2, duration=duration
        )
        workload.start()
        system.run_to_quiescence(max_events=500_000)
        system.assert_soundness()
        report = system.completeness_report()
        total = len(system._dark_sccs())
        formed += total
        detected += total - len(report.undetected_components)
    return [
        E1Result(
            label=f"random n={n_vertices}",
            components_formed=formed,
            components_detected=detected,
        )
    ]


def run(quick: bool = False) -> tuple[Table, list[E1Result]]:
    sizes = QUICK_CYCLE_SIZES if quick else CYCLE_SIZES
    seeds = QUICK_CYCLE_SEEDS if quick else CYCLE_SEEDS
    results = run_cycles(sizes=sizes, seeds=seeds)
    results += run_random(seeds=QUICK_RANDOM_SEEDS if quick else RANDOM_SEEDS)
    table = Table(
        "E1 (Theorem 1): completeness -- every true deadlock detected",
        ["workload", "deadlock components", "detected", "missed"],
    )
    for result in results:
        table.add_row(
            result.label,
            result.components_formed,
            result.components_detected,
            result.missed,
        )
    return table, results
