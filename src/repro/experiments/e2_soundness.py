"""E2 -- Theorem 2 (QRP2): deadlocks are never reported falsely.

Soundness is a per-history property, so the experiment piles up histories
designed to tempt a lesser detector into phantom reports:

* heavy churn (requests racing replies under exponential delays),
* near-cycles that resolve just before closing,
* random workloads where genuine deadlocks and churn coexist -- every
  declaration is checked against the oracle *at the instant it is made*.

The table reports declarations made vs declarations that were unsound
(the paper predicts 0 -- and measures 0), per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.basic.system import BasicSystem
from repro.sim.network import ExponentialDelay, UniformDelay
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import schedule_chain


@dataclass
class E2Result:
    label: str
    declarations: int
    unsound: int


def run_churn(seeds: tuple[int, ...]) -> E2Result:
    declarations = unsound = 0
    for seed in seeds:
        system = BasicSystem(
            n_vertices=8,
            seed=seed,
            delay_model=UniformDelay(0.1, 3.0),
            service_delay=0.2,
            strict=False,
        )
        workload = RandomRequestWorkload(
            system, mean_think=1.0, max_targets=1, duration=40.0
        )
        workload.start()
        system.run_to_quiescence(max_events=500_000)
        declarations += len(system.declarations)
        unsound += len(system.soundness_violations)
    return E2Result("churn (fan-out 1)", declarations, unsound)


def run_mixed(seeds: tuple[int, ...]) -> E2Result:
    declarations = unsound = 0
    for seed in seeds:
        system = BasicSystem(
            n_vertices=10,
            seed=seed,
            delay_model=ExponentialDelay(mean=1.5),
            service_delay=0.5,
            strict=False,
        )
        workload = RandomRequestWorkload(
            system, mean_think=1.5, max_targets=3, duration=50.0
        )
        workload.start()
        system.run_to_quiescence(max_events=500_000)
        declarations += len(system.declarations)
        unsound += len(system.soundness_violations)
    return E2Result("mixed churn + deadlocks (fan-out 3)", declarations, unsound)


def run_near_cycles(seeds: tuple[int, ...]) -> E2Result:
    declarations = unsound = 0
    for seed in seeds:
        system = BasicSystem(
            n_vertices=6,
            seed=seed,
            delay_model=UniformDelay(0.5, 2.0),
            service_delay=0.3,
            strict=False,
        )
        for wave in range(8):
            schedule_chain(system, list(range(6)), start=wave * 15.0, gap=0.2)
        system.run_to_quiescence(max_events=500_000)
        declarations += len(system.declarations)
        unsound += len(system.soundness_violations)
    return E2Result("near-cycle chains", declarations, unsound)


def run(quick: bool = False) -> tuple[Table, list[E2Result]]:
    seeds = tuple(range(3)) if quick else tuple(range(10))
    results = [run_churn(seeds), run_mixed(seeds), run_near_cycles(seeds)]
    table = Table(
        "E2 (Theorem 2): soundness -- no false deadlock reports",
        ["workload", "declarations", "unsound declarations"],
    )
    for result in results:
        table.add_row(result.label, result.declarations, result.unsound)
    return table, results
