"""E2 -- Theorem 2 (QRP2): deadlocks are never reported falsely.

Soundness is a per-history property, so the experiment piles up histories
designed to tempt a lesser detector into phantom reports:

* heavy churn (requests racing replies under exponential delays),
* near-cycles that resolve just before closing,
* random workloads where genuine deadlocks and churn coexist -- every
  declaration is checked against the oracle *at the instant it is made*.

The table reports declarations made vs declarations that were unsound
(the paper predicts 0 -- and measures 0), per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.core.registry import get_variant
from repro.sim.network import ExponentialDelay, UniformDelay
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import schedule_chain

#: Sweep axes (shared with the declarative grid in ``repro.sweep.grids``).
SEEDS = tuple(range(10))
QUICK_SEEDS = tuple(range(3))
CHURN_N_VERTICES = 8
CHURN_DURATION = 40.0
MIXED_N_VERTICES = 10
MIXED_DURATION = 50.0
NEAR_CYCLE_N_VERTICES = 6
NEAR_CYCLE_WAVES = 8
NEAR_CYCLE_PERIOD = 15.0


@dataclass
class E2Result:
    label: str
    declarations: int
    unsound: int


def run_churn(seeds: tuple[int, ...]) -> E2Result:
    declarations = unsound = 0
    for seed in seeds:
        system = get_variant("basic").build(
            n_vertices=CHURN_N_VERTICES,
            seed=seed,
            delay_model=UniformDelay(0.1, 3.0),
            service_delay=0.2,
            strict=False,
        )
        workload = RandomRequestWorkload(
            system, mean_think=1.0, max_targets=1, duration=CHURN_DURATION
        )
        workload.start()
        system.run_to_quiescence(max_events=500_000)
        declarations += len(system.declarations)
        unsound += len(system.soundness_violations)
    return E2Result("churn (fan-out 1)", declarations, unsound)


def run_mixed(seeds: tuple[int, ...]) -> E2Result:
    declarations = unsound = 0
    for seed in seeds:
        system = get_variant("basic").build(
            n_vertices=MIXED_N_VERTICES,
            seed=seed,
            delay_model=ExponentialDelay(mean=1.5),
            service_delay=0.5,
            strict=False,
        )
        workload = RandomRequestWorkload(
            system, mean_think=1.5, max_targets=3, duration=MIXED_DURATION
        )
        workload.start()
        system.run_to_quiescence(max_events=500_000)
        declarations += len(system.declarations)
        unsound += len(system.soundness_violations)
    return E2Result("mixed churn + deadlocks (fan-out 3)", declarations, unsound)


def run_near_cycles(seeds: tuple[int, ...]) -> E2Result:
    declarations = unsound = 0
    for seed in seeds:
        system = get_variant("basic").build(
            n_vertices=NEAR_CYCLE_N_VERTICES,
            seed=seed,
            delay_model=UniformDelay(0.5, 2.0),
            service_delay=0.3,
            strict=False,
        )
        for wave in range(NEAR_CYCLE_WAVES):
            schedule_chain(
                system,
                list(range(NEAR_CYCLE_N_VERTICES)),
                start=wave * NEAR_CYCLE_PERIOD,
                gap=0.2,
            )
        system.run_to_quiescence(max_events=500_000)
        declarations += len(system.declarations)
        unsound += len(system.soundness_violations)
    return E2Result("near-cycle chains", declarations, unsound)


def run(quick: bool = False) -> tuple[Table, list[E2Result]]:
    seeds = QUICK_SEEDS if quick else SEEDS
    results = [run_churn(seeds), run_mixed(seeds), run_near_cycles(seeds)]
    table = Table(
        "E2 (Theorem 2): soundness -- no false deadlock reports",
        ["workload", "declarations", "unsound declarations"],
    )
    for result in results:
        table.add_row(result.label, result.declarations, result.unsound)
    return table, results
