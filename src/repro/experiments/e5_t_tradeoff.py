"""E5 -- section 4.3: the delayed-initiation parameter T.

"The basic tradeoff is that if T is too small too many probe computations
are initiated and if T is too large the time taken to detect deadlock
(which is at least T) is too large."

The experiment runs the same random workload (same seeds) under a sweep of
T values and reports, per T:

* probe computations initiated (should fall monotonically with T),
* probe computations avoided by edges resolving before T,
* probe messages sent,
* mean detection latency over genuinely formed deadlocks (should grow,
  bounded below by T),
* deadlock components formed vs detected (completeness is preserved for
  every T -- dark edges persist, so their timers always fire).

This regenerates the tradeoff *curve* the paper argues about (and defers
optimising to its reference [6]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.basic.initiation import DelayedInitiation, ImmediateInitiation
from repro.core.registry import get_variant
from repro.sim.network import ExponentialDelay
from repro.workloads.basic_random import RandomRequestWorkload

#: Sweep axes (shared with the declarative grid in ``repro.sweep.grids``).
#: ``None`` means the batch-level immediate-initiation rule (reference row);
#: T=0 is the proper left end of the per-edge delayed-rule sweep.
T_SWEEP: tuple[float | None, ...] = (None, 0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
QUICK_T_SWEEP: tuple[float | None, ...] = (None, 0.0, 1.0, 4.0, 16.0)
SEEDS = tuple(range(8))
QUICK_SEEDS = tuple(range(3))
N_VERTICES = 10
DURATION = 60.0


@dataclass
class E5Result:
    timeout: float | None  # None = immediate initiation (T = 0 rule)
    computations: int
    avoided: int
    probes: int
    components_formed: int
    components_detected: int
    mean_latency: float | None

    @property
    def label(self) -> str:
        return "immediate (batch)" if self.timeout is None else f"T={self.timeout:g}"


def run_config(
    timeout: float | None,
    seeds: tuple[int, ...],
    n_vertices: int = N_VERTICES,
    duration: float = DURATION,
) -> E5Result:
    computations = avoided = probes = formed = detected = 0
    latencies: list[float] = []
    for seed in seeds:
        initiation = (
            ImmediateInitiation() if timeout is None else DelayedInitiation(timeout)
        )
        system = get_variant("basic").build(
            n_vertices=n_vertices,
            seed=seed,
            delay_model=ExponentialDelay(mean=1.0),
            service_delay=0.5,
            initiation=initiation,
        )
        workload = RandomRequestWorkload(
            system, mean_think=2.0, max_targets=2, duration=duration
        )
        workload.start()
        system.run_to_quiescence(max_events=500_000)
        system.assert_soundness()
        computations += system.metrics.counter_value("basic.computations.initiated")
        avoided += system.metrics.counter_value("basic.computations.avoided")
        probes += system.metrics.counter_value("basic.probes.sent")
        report = system.completeness_report()
        total = len(system._dark_sccs())
        formed += total
        detected += total - len(report.undetected_components)
        histogram = system.metrics.histograms.get("basic.detection.latency")
        if histogram is not None and histogram.count:
            latencies.extend(histogram.values)
    return E5Result(
        timeout=timeout,
        computations=computations,
        avoided=avoided,
        probes=probes,
        components_formed=formed,
        components_detected=detected,
        mean_latency=mean(latencies) if latencies else None,
    )


def run(quick: bool = False) -> tuple[Table, list[E5Result]]:
    seeds = QUICK_SEEDS if quick else SEEDS
    sweep = QUICK_T_SWEEP if quick else T_SWEEP
    results = [run_config(timeout, seeds) for timeout in sweep]
    table = Table(
        "E5 (section 4.3): the T initiation-delay tradeoff",
        [
            "rule",
            "computations",
            "avoided",
            "probe msgs",
            "deadlocks formed",
            "detected",
            "mean latency",
        ],
    )
    for result in results:
        table.add_row(
            result.label,
            result.computations,
            result.avoided,
            result.probes,
            result.components_formed,
            result.components_detected,
            "-" if result.mean_latency is None else result.mean_latency,
        )
    return table, results
