"""E3 -- section 4.3 message complexity.

Claims measured:

* "For a given probe computation, a vertex sends only one probe on any
  outgoing edge.  Hence, there can be at most N probes in a single probe
  computation" (on a cycle of N vertices; in general at most one probe
  per edge, i.e. at most E probes).
* Probe volume therefore scales linearly in cycle length.

The table sweeps cycle sizes and dense random graphs, reporting the
maximum probes observed in any single computation against the bound, and
the per-edge maximum (always 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.tables import Table
from repro.basic.initiation import ManualInitiation
from repro.core.registry import get_variant
from repro.sim import categories
from repro.workloads.scenarios import schedule_cycle

if TYPE_CHECKING:
    from repro.basic.system import BasicSystem

#: Sweep axes (shared with the declarative grid in ``repro.sweep.grids``).
CYCLE_SIZES = (4, 8, 16, 32, 64, 128)
QUICK_CYCLE_SIZES = (4, 8, 16, 32)
DENSE_CONFIGS = ((16, 3), (32, 4), (64, 5))
QUICK_DENSE_CONFIGS = ((16, 3), (32, 4))


@dataclass
class E3Result:
    label: str
    bound: int
    max_probes_per_computation: int
    max_probes_per_edge: int

    @property
    def within_bound(self) -> bool:
        return (
            self.max_probes_per_computation <= self.bound
            and self.max_probes_per_edge <= 1
        )


def _per_edge_max(system: BasicSystem) -> int:
    per_edge: dict[tuple, int] = {}
    for event in system.simulator.tracer.events(categories.BASIC_PROBE_SENT):
        key = (event["tag"], event["source"], event["target"])
        per_edge[key] = per_edge.get(key, 0) + 1
    return max(per_edge.values(), default=0)


def run_cycle(k: int, seed: int = 0) -> E3Result:
    system = get_variant("basic").build(n_vertices=k, seed=seed)
    schedule_cycle(system, list(range(k)))
    system.run_to_quiescence()
    max_probes = max(system.probes_per_computation.values(), default=0)
    return E3Result(
        label=f"{k}-cycle",
        bound=k,
        max_probes_per_computation=max_probes,
        max_probes_per_edge=_per_edge_max(system),
    )


def run_dense(n: int, fan_out: int, seed: int = 0) -> E3Result:
    """A dense blocked graph: every vertex AND-waits on ``fan_out`` others
    arranged so a giant cycle exists; one manual computation probes it."""
    system = get_variant("basic").build(n_vertices=n, seed=seed, initiation=ManualInitiation())
    edge_count = 0
    for i in range(n):
        targets = sorted({(i + d) % n for d in range(1, fan_out + 1)} - {i})
        system.schedule_request(0.1 * i, i, targets)
        edge_count += len(targets)
    system.run_to_quiescence()
    system.simulator.schedule(1.0, system.vertex(0).initiate_probe_computation)
    system.run_to_quiescence()
    max_probes = max(system.probes_per_computation.values(), default=0)
    return E3Result(
        label=f"dense n={n} fan-out={fan_out} ({edge_count} edges)",
        bound=edge_count,
        max_probes_per_computation=max_probes,
        max_probes_per_edge=_per_edge_max(system),
    )


def run(quick: bool = False) -> tuple[Table, list[E3Result]]:
    sizes = QUICK_CYCLE_SIZES if quick else CYCLE_SIZES
    results = [run_cycle(k) for k in sizes]
    dense = QUICK_DENSE_CONFIGS if quick else DENSE_CONFIGS
    results += [run_dense(n, fan_out) for n, fan_out in dense]
    table = Table(
        "E3 (section 4.3): probe-message complexity",
        [
            "workload",
            "bound (edges)",
            "max probes/computation",
            "max probes/edge",
            "within bound",
        ],
    )
    for result in results:
        table.add_row(
            result.label,
            result.bound,
            result.max_probes_per_computation,
            result.max_probes_per_edge,
            "yes" if result.within_bound else "NO",
        )
    return table, results
