"""The experiment harness: one module per paper claim (E1-E10).

The paper (PODC '82) publishes theorems and complexity claims rather than
numbered tables; DESIGN.md assigns each quantitative claim an experiment
id.  Every module here exposes ``run(...)`` returning an
:class:`~repro.analysis.tables.Table` plus a raw-results payload; the
pytest benchmarks under ``benchmarks/`` and the CLI both call these, so
the numbers in EXPERIMENTS.md are regenerable from either entry point.

| id | claim | module |
|----|-------|--------|
| E1 | Theorem 1: every true deadlock detected           | e1_completeness |
| E2 | Theorem 2: no false deadlocks, ever               | e2_soundness |
| E3 | §4.3: ≤ 1 probe/edge/computation; ≤ N on a cycle  | e3_messages |
| E4 | §4.3: per-vertex state O(N)                       | e4_state |
| E5 | §4.3: the T tradeoff (computations vs latency)    | e5_t_tradeoff |
| E6 | §5: WFGD informs all deadlocked vertices          | e6_wfgd |
| E7 | §6.7: Q-initiation beats naive per-process scans  | e7_q_optimization |
| E8 | §1: correctness/cost vs 1980-era baselines        | e8_baselines |
| E9 | §4 bounds on random wait-graph ensembles          | e9_ensembles |
| E10 | §4.3 T-scheduling: static curve vs adaptive      | e10_scheduling |
"""

from repro.experiments import (
    e1_completeness,
    e2_soundness,
    e3_messages,
    e4_state,
    e5_t_tradeoff,
    e6_wfgd,
    e7_q_optimization,
    e8_baselines,
    e9_ensembles,
    e10_scheduling,
)

ALL_EXPERIMENTS = {
    "E1": e1_completeness,
    "E2": e2_soundness,
    "E3": e3_messages,
    "E4": e4_state,
    "E5": e5_t_tradeoff,
    "E6": e6_wfgd,
    "E7": e7_q_optimization,
    "E8": e8_baselines,
    "E9": e9_ensembles,
    "E10": e10_scheduling,
}

__all__ = ["ALL_EXPERIMENTS"]
