"""E6 -- section 5: the WFGD computation.

Claims measured:

* every vertex with a permanent black path leading from it learns *all*
  such paths (checked edge-for-edge against the oracle's ground truth);
* the computation terminates (a vertex never sends the same edge set
  twice to the same target), with bounded message volume.

The workload family is a k-cycle plus attached waiting tails of varying
shapes -- the tails are deadlocked but not on the cycle, so only WFGD can
inform them (they never declare, by Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._ids import VertexId
from repro.analysis.tables import Table
from repro.core.registry import get_variant
from repro.workloads.scenarios import schedule_cycle_with_tails

#: Sweep axes (shared with the declarative grid in ``repro.sweep.grids``).
#: Each config is ``(cycle_size, tail lengths)``; a tail of length L is a
#: chain of L extra vertices waiting into the cycle.
QUICK_CONFIGS: tuple[tuple[int, tuple[int, ...]], ...] = (
    (3, ()),
    (3, (1,)),
    (4, (1, 2)),
    (5, (3,)),
)
CONFIGS: tuple[tuple[int, tuple[int, ...]], ...] = QUICK_CONFIGS + (
    (8, (2, 1, 3)),
    (12, (5,)),
)


@dataclass
class E6Result:
    label: str
    deadlocked_vertices: int
    informed_vertices: int
    exact_path_sets: int
    wfgd_messages: int

    @property
    def all_informed_exactly(self) -> bool:
        return (
            self.informed_vertices == self.deadlocked_vertices
            and self.exact_path_sets == self.deadlocked_vertices
        )


def run_config(cycle_size: int, tails: tuple[int, ...], seed: int = 0) -> E6Result:
    """Run one config; ``tails`` gives the length of each attached tail."""
    n = cycle_size + sum(tails)
    cycle = list(range(cycle_size))
    offset = cycle_size
    tail_ids: list[list[int]] = []
    for length in tails:
        tail_ids.append(list(range(offset, offset + length)))
        offset += length
    system = get_variant("basic").build(n_vertices=n, seed=seed, wfgd_on_declare=True)
    schedule_cycle_with_tails(system, cycle, tail_ids)
    system.run_to_quiescence()
    system.assert_soundness()

    permanently_blocked = [
        v
        for v in range(n)
        if system.oracle.permanent_black_edges_from(VertexId(v))
    ]
    informed = exact = 0
    for v in permanently_blocked:
        vertex = system.vertex(v)
        if vertex.deadlocked:
            informed += 1
        expected = system.oracle.permanent_black_edges_from(VertexId(v))
        if vertex.wfgd.paths == expected:
            exact += 1
    return E6Result(
        label=f"{cycle_size}-cycle + tails {[len(t) for t in tail_ids]}",
        deadlocked_vertices=len(permanently_blocked),
        informed_vertices=informed,
        exact_path_sets=exact,
        wfgd_messages=system.metrics.counter_value("basic.wfgd.sent"),
    )


def run(quick: bool = False) -> tuple[Table, list[E6Result]]:
    configs = QUICK_CONFIGS if quick else CONFIGS
    results = [run_config(cycle_size, tails) for cycle_size, tails in configs]
    table = Table(
        "E6 (section 5): WFGD propagation to all deadlocked vertices",
        [
            "workload",
            "deadlocked vertices",
            "informed",
            "exact path sets",
            "WFGD messages",
        ],
    )
    for result in results:
        table.add_row(
            result.label,
            result.deadlocked_vertices,
            result.informed_vertices,
            result.exact_path_sets,
            result.wfgd_messages,
        )
    return table, results
