"""E10 -- initiation scheduling: static-T curves vs the adaptive controller.

Section 4.3 leaves the delayed-initiation window T as a manual knob and
only bounds its two failure modes: a small T probes short-lived waits
that would have resolved on their own, a large T sits on a real deadlock
for the whole window.  Ling, Chen & Chiang (PAPERS.md) close the loop
analytically -- the cost-optimal detection interval is
``T* = sqrt(2c / lambda)`` for detection cost ``c`` and deadlock rate
``lambda`` -- and the ``adaptive`` scheduling policy implements that
controller online, per system, from observed wait lifetimes and probe
computation outcomes.

This experiment puts the controller on the ``bursty`` workload (periodic
contention storms that always drain, a quiet stretch, then one planted
cycle) and sweeps a static-T axis next to it, measuring per policy:

1. **Probe traffic**: total probes and computations over the run.  A
   static T below the storm lifetimes re-pays the storm on every burst;
   the adaptive policy pays once, while its lifetime estimate learns the
   storm, then arms above it.
2. **Detection latency**: first declaration minus the instant the
   planted cycle closed.  A static T above the storms is safe but slow;
   the adaptive policy decays back down through the quiet stretch.
3. **The Pareto check** (machine-asserted): the adaptive policy must
   strictly beat at least one static setting on probes at
   equal-or-better detection latency.
4. **Section 4 bounds**: every probe computation span is checked with
   :meth:`~repro.obs.spans.ProbeComputationSpan.check_bounds`; the
   experiment asserts zero violations and zero unsound declarations.

Every run must detect its planted deadlock (completeness is asserted,
not sampled), so the latency column is never empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.core.registry import get_variant
from repro.core.scheduling import parse_policy_spec
from repro.errors import BoundViolation
from repro.obs.spans import build_spans
from repro.workloads.provision import provision_workload
from repro.workloads.spec import WorkloadSpec

#: Sweep axes.  ``repro.sweep.grids`` re-expresses this experiment as a
#: declarative grid over the same axes, so the numbers stay in one place.
#: The workload itself (n, storm shape) is never shrunk for quick mode:
#: the Pareto structure lives in the storm timing, so quick mode trims
#: seeds and the static axis instead.
N_VERTICES = 17
#: Static delayed-T settings bracketing the bursty workload's wait
#: lifetimes (quiet waits ~3, storm chains up to ~11 virtual units).
STATIC_TS = (2.0, 4.0, 8.0, 10.0, 16.0)
QUICK_STATIC_TS = (4.0, 10.0)
SEEDS = tuple(range(5))
QUICK_SEEDS = (0, 1)
ADAPTIVE_POLICY = "adaptive"


def policy_axis(quick: bool = False) -> tuple[str, ...]:
    """The experiment's policy ids: the static-T curve, then adaptive."""
    statics = QUICK_STATIC_TS if quick else STATIC_TS
    return tuple(f"delayed/T={t:g}" for t in statics) + (ADAPTIVE_POLICY,)


@dataclass
class E10Result:
    """One initiation policy aggregated over the bursty workload's seeds."""

    policy: str
    runs: int
    mean_probes: float
    mean_computations: float
    #: computations the delay window avoided (wait resolved before the
    #: timer fired), averaged over seeds.
    mean_avoided: float
    #: mean virtual time from cycle close to first declaration.
    mean_latency: float
    #: section 4 bound breaches across every span (the claim: always 0).
    bound_violations: int

    @property
    def is_adaptive(self) -> bool:
        return self.policy == ADAPTIVE_POLICY

    def dominates(self, other: E10Result) -> bool:
        """Strictly fewer probes at equal-or-better detection latency."""
        return (
            self.mean_probes < other.mean_probes
            and self.mean_latency <= other.mean_latency
        )


def run_policy(
    policy: str,
    n: int = N_VERTICES,
    seeds: tuple[int, ...] = SEEDS,
) -> E10Result:
    """Run the bursty workload under one policy over its seeds."""
    variant = get_variant("basic")
    spec_policy = parse_policy_spec(policy)
    probes: list[float] = []
    computations: list[float] = []
    avoided: list[float] = []
    latencies: list[float] = []
    violations = 0
    for seed in seeds:
        spec = WorkloadSpec(family="bursty", n=n, seed=seed)
        run = provision_workload(variant, spec, policy=spec_policy)
        run.run_to_quiescence(max_events=2_000_000)
        outcome = run.summarize()
        assert outcome.soundness_violations == 0, (
            f"unsound declaration under {policy} in {spec.workload_id}"
        )
        assert outcome.complete, (
            f"missed the planted deadlock under {policy} in {spec.workload_id}"
        )
        assert outcome.declarations and outcome.first_declaration_at is not None
        extra = run.extra()
        latencies.append(outcome.first_declaration_at - extra["cycle_closed_at"])
        avoided.append(extra["avoided"])
        metrics = run.system.metrics
        probes.append(metrics.counter_value("basic.probes.sent"))
        computations.append(metrics.counter_value("basic.computations.initiated"))
        for span in build_spans(run.system.simulator.tracer):
            try:
                span.check_bounds(n_vertices=n)
            except BoundViolation:
                violations += 1
    return E10Result(
        policy=policy,
        runs=len(seeds),
        mean_probes=mean(probes),
        mean_computations=mean(computations),
        mean_avoided=mean(avoided),
        mean_latency=mean(latencies),
        bound_violations=violations,
    )


def run(quick: bool = False) -> tuple[Table, list[E10Result]]:
    seeds = QUICK_SEEDS if quick else SEEDS
    results = [run_policy(policy, seeds=seeds) for policy in policy_axis(quick)]

    assert all(result.bound_violations == 0 for result in results), (
        "section 4 bound violated under a scheduling policy"
    )
    adaptive = next(result for result in results if result.is_adaptive)
    dominated = [
        result
        for result in results
        if not result.is_adaptive and adaptive.dominates(result)
    ]
    assert dominated, (
        "adaptive policy failed to Pareto-dominate any static T: "
        + "; ".join(
            f"{r.policy} probes={r.mean_probes:.1f} latency={r.mean_latency:.2f}"
            for r in results
        )
    )

    table = Table(
        "E10: static-T initiation vs the adaptive controller (bursty load)",
        [
            "policy",
            "mean probes",
            "mean computations",
            "mean avoided",
            "mean latency",
            "bound violations",
            "pareto",
        ],
    )
    dominated_ids = {result.policy for result in dominated}
    for result in results:
        if result.is_adaptive:
            marker = "dominates " + ", ".join(sorted(dominated_ids))
        else:
            marker = "dominated" if result.policy in dominated_ids else "-"
        table.add_row(
            result.policy,
            f"{result.mean_probes:.1f}",
            f"{result.mean_computations:.1f}",
            f"{result.mean_avoided:.1f}",
            f"{result.mean_latency:.2f}",
            result.bound_violations,
            marker,
        )
    return table, results
