"""E9 -- deadlock probability and probe cost over workload ensembles.

The paper's §4 bounds (at most one probe per edge per computation, at
most |E| probes per computation) are claimed for *any* wait graph; the
e1-e8 grids only exercise canned shapes.  This experiment draws wait
graphs from the registered random ensembles and measures, per load
level:

1. **Deadlock probability**: the fraction of seeds whose graph contains
   a dark cycle (declared deadlock).  Random-graph theory (Barbosa;
   Oliveira & Barbosa -- PAPERS.md) predicts a sharp rise once the mean
   out-degree crosses 1; the scale-free ensemble reaches the same mean
   degree with hub-concentrated waits, shifting the curve.
2. **Time to deadlock**: virtual time of the first declaration among
   deadlocked runs (detection latency under ensemble traffic).
3. **§4 probe bounds**: every probe computation's span is machine-checked
   with :meth:`~repro.obs.spans.ProbeComputationSpan.check_bounds`; the
   experiment asserts zero violations across the whole ensemble.
4. **Victim recovery** (DDB lane): the hot-resource transaction mix runs
   with victim resolution on, and every run must end with no deadlock
   remaining and all transactions committed -- detection plus recovery
   under sustained contention churn.

Three lanes: Erdős–Rényi ``G(n, p)`` swept over the load factor
``p * (n - 1)``, Barabási–Albert swept over the attachment count ``m``,
and the DDB ``ddb-hot`` family swept over transactions-per-resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.core.registry import get_variant
from repro.errors import BoundViolation
from repro.obs.spans import build_spans
from repro.workloads.provision import provision_workload
from repro.workloads.spec import WorkloadSpec, make_params

#: Sweep axes.  ``repro.sweep.grids`` re-expresses this experiment as a
#: declarative grid over the same axes, so the numbers stay in one place.
ENSEMBLE_N = 24
QUICK_ENSEMBLE_N = 16
#: ER load factors: mean out-degree p * (n - 1).
LOAD_FACTORS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
QUICK_LOAD_FACTORS = (0.5, 1.0, 2.0)
#: BA attachment counts (mean degree ~ 2m).
BA_ATTACHMENTS = (1, 2, 3)
QUICK_BA_ATTACHMENTS = (1, 2)
SEEDS = tuple(range(12))
QUICK_SEEDS = (0, 1, 2, 3)
#: DDB hot-resource lane: sites, transactions-per-resource levels, and
#: the virtual-time horizon after which victims stop restarting.
DDB_N_SITES = 3
DDB_LOADS = (0.5, 1.0, 2.0)
QUICK_DDB_LOADS = (0.5, 1.5)
DDB_DURATION = 400.0
DDB_SEEDS = tuple(range(8))
QUICK_DDB_SEEDS = (0, 1, 2)


def er_probability(load: float, n: int) -> float:
    """The ER edge probability realising mean out-degree ``load``."""
    return round(load / (n - 1), 6)


@dataclass
class E9Result:
    """One ensemble configuration aggregated over its seeds."""

    family: str
    label: str
    #: the lane's load metric (mean out-degree, m, or txns/resource).
    load: float
    runs: int
    deadlocked: int
    #: mean virtual time of the first declaration (deadlocked runs only).
    mean_time_to_deadlock: float | None
    #: largest probes-per-computation observed anywhere in the lane.
    max_probes_per_computation: int
    #: section 4 bound breaches across every span (the claim: always 0).
    bound_violations: int
    #: DDB lane only: transactions committed / aborted across the runs.
    commits: int = 0
    aborts: int = 0

    @property
    def deadlock_probability(self) -> float:
        return self.deadlocked / self.runs


def _run_graph_config(
    family: str, n: int, params: tuple[tuple[str, float], ...], seeds: tuple[int, ...]
) -> tuple[int, list[float], int, int]:
    """Run one basic-model ensemble config over its seeds.

    Returns (deadlocked runs, first-declaration times, max probes per
    computation, bound violations).  Soundness is asserted per run --
    an unsound declaration fails the experiment, not just a counter.
    """
    variant = get_variant("basic")
    deadlocked = 0
    first_times: list[float] = []
    max_probes = 0
    violations = 0
    for seed in seeds:
        spec = WorkloadSpec(family=family, n=n, seed=seed, params=params)
        run = provision_workload(variant, spec)
        run.run_to_quiescence(max_events=2_000_000)
        outcome = run.summarize()
        assert outcome.soundness_violations == 0, (
            f"unsound declaration in {spec.workload_id}"
        )
        assert outcome.complete, f"missed deadlock in {spec.workload_id}"
        if outcome.declarations:
            deadlocked += 1
            assert outcome.first_declaration_at is not None
            first_times.append(outcome.first_declaration_at)
        for span in build_spans(run.system.simulator.tracer):
            max_probes = max(max_probes, span.probes_sent)
            try:
                span.check_bounds(n_vertices=n)
            except BoundViolation:
                violations += 1
    return deadlocked, first_times, max_probes, violations


def run_er(
    n: int = ENSEMBLE_N,
    loads: tuple[float, ...] = LOAD_FACTORS,
    seeds: tuple[int, ...] = SEEDS,
) -> list[E9Result]:
    results: list[E9Result] = []
    for load in loads:
        params = make_params(p=er_probability(load, n))
        deadlocked, times, max_probes, violations = _run_graph_config(
            "er", n, params, seeds
        )
        results.append(
            E9Result(
                family="er",
                label=f"ER n={n} load={load:g}",
                load=load,
                runs=len(seeds),
                deadlocked=deadlocked,
                mean_time_to_deadlock=mean(times) if times else None,
                max_probes_per_computation=max_probes,
                bound_violations=violations,
            )
        )
    return results


def run_ba(
    n: int = ENSEMBLE_N,
    attachments: tuple[int, ...] = BA_ATTACHMENTS,
    seeds: tuple[int, ...] = SEEDS,
) -> list[E9Result]:
    results: list[E9Result] = []
    for m in attachments:
        deadlocked, times, max_probes, violations = _run_graph_config(
            "ba", n, make_params(m=m), seeds
        )
        results.append(
            E9Result(
                family="ba",
                label=f"BA n={n} m={m}",
                load=float(m),
                runs=len(seeds),
                deadlocked=deadlocked,
                mean_time_to_deadlock=mean(times) if times else None,
                max_probes_per_computation=max_probes,
                bound_violations=violations,
            )
        )
    return results


def run_ddb_hot(
    n_sites: int = DDB_N_SITES,
    loads: tuple[float, ...] = DDB_LOADS,
    seeds: tuple[int, ...] = DDB_SEEDS,
    duration: float = DDB_DURATION,
) -> list[E9Result]:
    """The hot-resource mix with victim resolution: churn + recovery."""
    variant = get_variant("ddb")
    results: list[E9Result] = []
    for load in loads:
        deadlocked = 0
        first_times: list[float] = []
        commits = aborts = 0
        for seed in seeds:
            spec = WorkloadSpec(
                family="ddb-hot",
                n=n_sites,
                seed=seed,
                duration=duration,
                params=make_params(load=load, resolve=1.0),
            )
            run = provision_workload(variant, spec)
            run.run_to_quiescence(max_events=2_000_000)
            outcome = run.summarize()
            assert outcome.soundness_violations == 0, (
                f"unsound declaration in {spec.workload_id}"
            )
            # Victim resolution must fully recover: nothing deadlocked
            # remains and (within the horizon) everything commits.
            run.system.assert_no_deadlock_remains()
            extra = run.extra()
            commits += extra["commits"]
            aborts += extra["aborts"]
            if outcome.declarations:
                deadlocked += 1
                assert outcome.first_declaration_at is not None
                first_times.append(outcome.first_declaration_at)
        results.append(
            E9Result(
                family="ddb-hot",
                label=f"DDB hot n_sites={n_sites} load={load:g}",
                load=load,
                runs=len(seeds),
                deadlocked=deadlocked,
                mean_time_to_deadlock=mean(first_times) if first_times else None,
                max_probes_per_computation=0,
                bound_violations=0,
                commits=commits,
                aborts=aborts,
            )
        )
    return results


def run(quick: bool = False) -> tuple[Table, list[E9Result]]:
    n = QUICK_ENSEMBLE_N if quick else ENSEMBLE_N
    seeds = QUICK_SEEDS if quick else SEEDS
    results = run_er(
        n=n, loads=QUICK_LOAD_FACTORS if quick else LOAD_FACTORS, seeds=seeds
    )
    results += run_ba(
        n=n,
        attachments=QUICK_BA_ATTACHMENTS if quick else BA_ATTACHMENTS,
        seeds=seeds,
    )
    results += run_ddb_hot(
        loads=QUICK_DDB_LOADS if quick else DDB_LOADS,
        seeds=QUICK_DDB_SEEDS if quick else DDB_SEEDS,
    )
    table = Table(
        "E9: deadlock probability and probe cost over workload ensembles",
        [
            "ensemble",
            "load",
            "P(deadlock)",
            "mean t(deadlock)",
            "max probes/comp",
            "bound violations",
            "commits",
            "aborts",
        ],
    )
    for result in results:
        table.add_row(
            result.label,
            f"{result.load:g}",
            f"{result.deadlock_probability:.2f}",
            (
                "-"
                if result.mean_time_to_deadlock is None
                else f"{result.mean_time_to_deadlock:.1f}"
            ),
            result.max_probes_per_computation,
            result.bound_violations,
            result.commits,
            result.aborts,
        )
    return table, results
