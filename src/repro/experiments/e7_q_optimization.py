"""E7 -- section 6.7: avoiding a probe computation per constituent process.

"When a controller wishes to determine if any of its processes are
deadlocked it initiates Q separate probe computations where Q is the
number of constituent processes with incoming, black, inter-controller
edges" -- after first checking for a purely local intra-controller cycle.

The experiment runs identical DDB workloads under periodic controller
scans in *naive* mode (one computation per blocked constituent process)
and *optimised* mode (local-cycle check + Q computations), reporting
computations initiated, probes sent, and detection outcome.  Both modes
must detect every deadlock; the optimised mode must do so with fewer
computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._ids import ResourceId, SiteId
from repro.analysis.tables import Table
from repro.core.registry import get_variant
from repro.ddb.initiation import DdbPeriodicInitiation
from repro.ddb.transaction import Think, TransactionSpec, acquire
from repro.ddb.locks import LockMode
from repro._ids import TransactionId

if TYPE_CHECKING:
    from repro.ddb.system import DdbSystem

#: Sweep axes (shared with the declarative grid in ``repro.sweep.grids``).
#: Each config is ``(n_sites, extra_local)``.
CONFIGS = ((3, 2), (4, 4), (6, 6), (8, 8))
QUICK_CONFIGS = ((3, 2), (4, 4))


@dataclass
class E7Result:
    label: str
    mode: str
    computations: int
    probes: int
    scans: int
    detected: bool


def ring_system(n_sites: int, extra_local: int, optimized: bool, seed: int) -> DdbSystem:
    """An n-site ring deadlock plus ``extra_local`` harmless blocked
    processes per site (they inflate the naive scan's candidate count)."""
    resources: dict[ResourceId, SiteId] = {}
    for i in range(n_sites):
        resources[ResourceId(f"ring{i}")] = SiteId(i)
        resources[ResourceId(f"hot{i}")] = SiteId(i)
    system = get_variant("ddb").build(
        n_sites=n_sites,
        resources=resources,
        seed=seed,
        initiation=DdbPeriodicInitiation(period=4.0, optimized=optimized, horizon=80.0),
    )
    X = LockMode.EXCLUSIVE
    tid = 1
    for i in range(n_sites):
        system.begin(
            TransactionSpec(
                tid=TransactionId(tid),
                home=SiteId(i),
                operations=(
                    acquire((f"ring{i}", X)),
                    Think(1.0),
                    acquire((f"ring{(i + 1) % n_sites}", X)),
                ),
            ),
            at=0.05 * i,
        )
        tid += 1
    # Local blockers: one holder per site sits on hot{i} for a long think,
    # and ``extra_local`` local transactions queue behind it.
    for i in range(n_sites):
        system.begin(
            TransactionSpec(
                tid=TransactionId(tid),
                home=SiteId(i),
                operations=(acquire((f"hot{i}", X)), Think(70.0)),
            ),
            at=0.2,
        )
        tid += 1
        for j in range(extra_local):
            system.begin(
                TransactionSpec(
                    tid=TransactionId(tid),
                    home=SiteId(i),
                    operations=(acquire((f"hot{i}", X)),),
                ),
                at=1.0 + 0.1 * j,
            )
            tid += 1
    return system


def run_config(n_sites: int, extra_local: int, optimized: bool, seed: int = 0) -> E7Result:
    system = ring_system(n_sites, extra_local, optimized, seed)
    system.run_to_quiescence(max_events=1_000_000)
    system.assert_soundness()
    complete, _ = system.completeness_report()
    return E7Result(
        label=f"{n_sites}-site ring + {extra_local} local blockers/site",
        mode="6.7 optimised" if optimized else "naive",
        computations=system.metrics.counter_value("ddb.computations.initiated"),
        probes=system.metrics.counter_value("ddb.probes.sent"),
        scans=system.metrics.counter_value("ddb.scans"),
        detected=bool(system.declarations) and complete,
    )


def run(quick: bool = False) -> tuple[Table, list[E7Result]]:
    configs = QUICK_CONFIGS if quick else CONFIGS
    results: list[E7Result] = []
    for n_sites, extra_local in configs:
        for optimized in (False, True):
            results.append(run_config(n_sites, extra_local, optimized))
    table = Table(
        "E7 (section 6.7): Q-initiation vs naive per-process initiation",
        ["workload", "mode", "scans", "computations", "probes", "deadlock detected"],
    )
    for result in results:
        table.add_row(
            result.label,
            result.mode,
            result.scans,
            result.computations,
            result.probes,
            "yes" if result.detected else "NO",
        )
    return table, results
