"""E4 -- section 4.3 state bound: per-vertex detector state is O(N).

"If probe computation (i, n) is initiated, all probe computations (i, k)
with k < n may be ignored.  Therefore, every vertex need only keep track
of one, (the latest) probe computation initiated by each vertex.  Hence
every process must keep track of N probe computations where N is the
number of vertices in the graph."

The experiment has every vertex of a standing N-cycle initiate R rounds of
computations, then inspects every vertex's engine: the number of tracked
records must never exceed N, no matter how large R grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.basic.initiation import ManualInitiation
from repro.core.registry import get_variant
from repro.workloads.scenarios import schedule_cycle

#: Sweep axes (shared with the declarative grid in ``repro.sweep.grids``).
CONFIGS = ((4, 5), (8, 10), (16, 20), (32, 20))
QUICK_CONFIGS = ((4, 5), (8, 10))


@dataclass
class E4Result:
    n_vertices: int
    computations_initiated: int
    max_tracked_records: int

    @property
    def within_bound(self) -> bool:
        return self.max_tracked_records <= self.n_vertices


def run_config(n: int, rounds: int, seed: int = 0) -> E4Result:
    system = get_variant("basic").build(n_vertices=n, seed=seed, initiation=ManualInitiation())
    schedule_cycle(system, list(range(n)))
    system.run_to_quiescence()
    for round_index in range(rounds):
        for i in range(n):
            system.simulator.schedule(
                10.0 * (round_index + 1) + 0.01 * i,
                system.vertex(i).initiate_probe_computation,
            )
    system.run_to_quiescence()
    system.assert_soundness()
    max_tracked = max(
        vertex.engine.tracked_computations for vertex in system.vertices.values()
    )
    return E4Result(
        n_vertices=n,
        computations_initiated=system.metrics.counter_value(
            "basic.computations.initiated"
        ),
        max_tracked_records=max_tracked,
    )


def run(quick: bool = False) -> tuple[Table, list[E4Result]]:
    configs = QUICK_CONFIGS if quick else CONFIGS
    results = [run_config(n, rounds) for n, rounds in configs]
    table = Table(
        "E4 (section 4.3): per-vertex detector state is O(N)",
        [
            "N (vertices)",
            "computations initiated",
            "max records at any vertex",
            "bound (N)",
            "within bound",
        ],
    )
    for result in results:
        table.add_row(
            result.n_vertices,
            result.computations_initiated,
            result.max_tracked_records,
            result.n_vertices,
            "yes" if result.within_bound else "NO",
        )
    return table, results
