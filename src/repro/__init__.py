"""repro -- a production-quality reproduction of Chandy & Misra (PODC 1982),
"A Distributed Algorithm for Detecting Resource Deadlocks in Distributed
Systems".

The library implements the paper end to end:

* the **basic model** (coloured wait-for graphs, axioms G1-G4 / P1-P4) and
  its probe computation A0/A1/A2 (:mod:`repro.basic`),
* the **WFGD computation** of section 5 (:mod:`repro.basic.wfgd`),
* the **Menasce-Muntz DDB model** of section 6 with controllers,
  transactions, and a read/write lock manager (:mod:`repro.ddb`),
* the initiation policies and performance machinery of section 4,
* **baseline detectors** (centralized, path-pushing, timeout) for the
  comparison experiments (:mod:`repro.baselines`),
* a deterministic **discrete-event simulator** providing exactly the
  paper's communication assumptions (:mod:`repro.sim`),
* **verification** tooling: a global oracle, axiom invariant checkers, and
  an exhaustive small-scope model checker (:mod:`repro.verification`),
* **workload generators** and **analysis** helpers used by the examples
  and the benchmark harness.

Quickstart::

    from repro import BasicSystem

    system = BasicSystem(n_vertices=3)
    system.schedule_request(0.0, 0, [1])
    system.schedule_request(0.5, 1, [2])
    system.schedule_request(1.0, 2, [0])   # closes the cycle 0 -> 1 -> 2 -> 0
    system.run_to_quiescence()
    assert system.declarations                  # deadlock was detected ...
    assert not system.soundness_violations      # ... and never falsely.
"""

from repro._ids import ProbeTag, ProcessId, ResourceId, SiteId, TransactionId, VertexId
from repro.basic import (
    BasicSystem,
    DelayedInitiation,
    EdgeColor,
    ImmediateInitiation,
    ManualInitiation,
    VertexProcess,
    WaitForGraph,
)
from repro.ormodel import OrSystem
from repro.errors import (
    AxiomViolation,
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    TransactionAborted,
)
from repro.sim import (
    ExponentialDelay,
    FixedDelay,
    Network,
    Simulator,
    UniformDelay,
)

__version__ = "1.0.0"

__all__ = [
    "AxiomViolation",
    "BasicSystem",
    "ConfigurationError",
    "DelayedInitiation",
    "EdgeColor",
    "ExponentialDelay",
    "FixedDelay",
    "ImmediateInitiation",
    "ManualInitiation",
    "Network",
    "OrSystem",
    "ProbeTag",
    "ProcessId",
    "ProtocolError",
    "ReproError",
    "ResourceId",
    "SimulationError",
    "Simulator",
    "SiteId",
    "TransactionAborted",
    "TransactionId",
    "UniformDelay",
    "VertexId",
    "VertexProcess",
    "WaitForGraph",
    "__version__",
]
