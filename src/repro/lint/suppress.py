"""Per-line suppression comments: ``# repro-lint: disable=RPX001[,RPX002]``."""

from __future__ import annotations

import re

from repro.lint.diagnostics import Diagnostic

_DISABLE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def suppressions_by_line(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of suppressed rule ids ('ALL' for all).

    The comment must sit on the same physical line the diagnostic is
    reported on (for multi-line calls: the line of the flagged argument).
    """
    result: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _DISABLE.search(line)
        if match is None:
            continue
        rules = {part.strip().upper() for part in match.group(1).split(",") if part.strip()}
        if rules:
            result[lineno] = rules
    return result


def filter_suppressed(
    diagnostics: list[Diagnostic], lines: list[str]
) -> list[Diagnostic]:
    """Drop diagnostics whose line carries a matching disable comment."""
    table = suppressions_by_line(lines)
    if not table:
        return diagnostics
    kept = []
    for diagnostic in diagnostics:
        suppressed = table.get(diagnostic.line, set())
        if "ALL" in suppressed or diagnostic.rule in suppressed:
            continue
        kept.append(diagnostic)
    return kept
