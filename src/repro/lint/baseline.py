"""Committed lint baseline: ``repro lint --baseline`` record/check.

Mirrors the ``repro bench`` baseline contract (:mod:`repro.sweep.baseline`):
``--record`` writes the canonical document, a plain run with ``--baseline``
compares against it and fails CI on any drift, and the escape hatch for a
deliberate change is re-recording (or a ``[lint-baseline-reset]`` commit
message, the CI-side equivalent of ``[bench-reset]``).

The baseline is a *ratchet*, not a suppression mechanism: the repo's own
baseline stays empty (new findings are fixed, not recorded), but the
machinery lets a downstream consumer adopt the linter on a dirty tree and
tighten from there.  Drift in EITHER direction fails the check — a fixed
finding must be re-recorded too, so the committed file always states the
exact known debt.

The document is canonical JSON (sorted keys, 2-space indent, trailing
newline): record/check round-trips are byte-identical, which is what the
CI job diffs on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.lint.diagnostics import Diagnostic

SCHEMA = "repro.lint-baseline/1"


class BaselineError(Exception):
    """Raised by :func:`check` when the run drifts from the baseline."""


def canonical_document(diagnostics: list[Diagnostic]) -> str:
    """The byte-stable baseline text for one set of findings."""
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "count": len(diagnostics),
        "findings": [diagnostic.to_json() for diagnostic in sorted(diagnostics)],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def record(path: Path, diagnostics: list[Diagnostic]) -> None:
    """Write the baseline document for ``diagnostics`` to ``path``."""
    path.write_text(canonical_document(diagnostics), encoding="utf-8")


def _load(path: Path) -> set[tuple[str, int, int, str, str]]:
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != SCHEMA:
        raise BaselineError(f"unrecognised baseline schema in {path}")
    findings = document.get("findings")
    if not isinstance(findings, list):
        raise BaselineError(f"malformed baseline (no findings array) in {path}")
    known: set[tuple[str, int, int, str, str]] = set()
    for entry in findings:
        try:
            known.add(
                (
                    str(entry["path"]),
                    int(entry["line"]),
                    int(entry["col"]),
                    str(entry["rule"]),
                    str(entry["message"]),
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise BaselineError(f"malformed baseline entry in {path}: {entry!r}") from error
    return known


def check(path: Path, diagnostics: list[Diagnostic]) -> list[str]:
    """Compare ``diagnostics`` against the committed baseline.

    Returns human-readable report lines; raises :class:`BaselineError`
    (after comparing everything) when findings appeared that the baseline
    does not record, or recorded findings no longer occur.
    """
    known = _load(path)
    current = {
        (d.path, d.line, d.col, d.rule, d.message): d for d in diagnostics
    }
    lines: list[str] = []
    new = [d for key, d in sorted(current.items()) if key not in known]
    fixed = sorted(key for key in known if key not in current)
    for diagnostic in new:
        lines.append(f"new finding: {diagnostic.format_text()}")
    for key in fixed:
        lines.append(f"fixed finding no longer occurs: {key[0]}:{key[1]}: {key[3]}")
    lines.append(
        f"baseline: {len(known)} recorded, {len(current)} current, "
        f"{len(new)} new, {len(fixed)} fixed"
    )
    if new or fixed:
        raise BaselineError(
            f"{len(new)} new and {len(fixed)} fixed finding(s) vs baseline "
            f"{path.name} -- fix the new findings, or re-record with "
            "'repro lint --baseline ... --record' (CI: push with "
            "[lint-baseline-reset]); report:\n" + "\n".join(lines)
        )
    return lines
