"""Project-specific static analysis (`repro lint`).

A stdlib-``ast`` lint pass enforcing the proof-carrying conventions the
verification layer depends on.  Each rule is mapped to a paper axiom or
simulator invariant (see ``repro lint --explain RPXnnn`` and DESIGN.md):

========  ==========================================================
RPX001    no unseeded / process-global randomness outside sim/rng.py
RPX002    no wall-clock reads in sim/, basic/, ddb/, ormodel/
RPX003    message dataclasses in */messages.py must be frozen=True
RPX004    protocol packages never import the harness layers
RPX005    trace categories come from repro.sim.categories, not literals
RPX006    handlers never mutate another process's state
========  ==========================================================

Suppress a finding in place with ``# repro-lint: disable=RPXnnn`` on the
flagged line.  ``RPX000`` is reserved for files that fail to parse.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import iter_python_files, lint_file, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, RULES_BY_ID, Rule, get_rule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Diagnostic",
    "Rule",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
