"""Project-specific static analysis (`repro lint`).

A stdlib-``ast`` lint pass enforcing the proof-carrying conventions the
verification layer depends on.  Each rule is mapped to a paper axiom or
simulator invariant (see ``repro lint --explain RPXnnn`` and DESIGN.md):

========  ==========================================================
RPX001    no unseeded / process-global randomness outside sim/rng.py
RPX002    no wall-clock reads in sim/, basic/, ddb/, ormodel/
RPX003    message dataclasses in */messages.py must be frozen=True
RPX004    protocol packages never import the harness layers
RPX005    trace categories come from repro.sim.categories, not literals
RPX006    handlers never mutate another process's state
RPX007    protocol code never binds to a concrete transport backend
RPX008    handler message flow conforms to the registered taxonomies
RPX009    frozen message instances are never mutated after construction
RPX010    no shared module state / wall clock reachable from handlers
========  ==========================================================

RPX001-007 check one file at a time; RPX008-010 are *project* rules
running over a whole-tree analysis (:mod:`repro.lint.project`) that
resolves each variant's registered ``MessageTaxonomy`` statically —
no protocol module is imported.

Suppress a finding in place with ``# repro-lint: disable=RPXnnn`` on the
flagged line.  ``RPX000`` is reserved for files that fail to read/parse.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    LintRun,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project_sources,
    lint_source,
    run_project,
)
from repro.lint.project import ProjectAnalysis
from repro.lint.rules import (
    ALL_RULES,
    PER_FILE_RULES,
    PROJECT_RULES,
    RULES_BY_ID,
    ProjectRule,
    Rule,
    get_rule,
)

__all__ = [
    "ALL_RULES",
    "PER_FILE_RULES",
    "PROJECT_RULES",
    "RULES_BY_ID",
    "Diagnostic",
    "LintRun",
    "ProjectAnalysis",
    "ProjectRule",
    "Rule",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "run_project",
]
