"""Diagnostic records produced by the lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a source location.

    Ordering is ``(path, line, col, rule, message)`` so reports and the
    JSON output are deterministic regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_text(self) -> str:
        """ruff/flake8-style ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """Stable machine-readable form (`repro lint --format json`)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
