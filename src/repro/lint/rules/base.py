"""Rule base class shared by all RPX rules."""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from repro.lint.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.lint.context import FileContext


class Rule:
    """One project-specific static check.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` scopes path-dependent rules (default: every file).
    ``explanation`` is the ``repro lint --explain RPXnnn`` text and must
    name the paper axiom / simulator invariant the rule guards.
    """

    rule_id: ClassVar[str]
    title: ClassVar[str]
    explanation: ClassVar[str]

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, ctx: FileContext, node: object, message: str) -> Diagnostic:
        return ctx.diagnostic(self.rule_id, node, message)  # type: ignore[arg-type]
