"""Rule base class shared by all RPX rules."""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from repro.lint.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.lint.context import FileContext
    from repro.lint.project import ProjectAnalysis, SourceRef


class Rule:
    """One project-specific static check.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` scopes path-dependent rules (default: every file).
    ``explanation`` is the ``repro lint --explain RPXnnn`` text and must
    name the paper axiom / simulator invariant the rule guards.
    """

    rule_id: ClassVar[str]
    title: ClassVar[str]
    explanation: ClassVar[str]

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, ctx: FileContext, node: object, message: str) -> Diagnostic:
        return ctx.diagnostic(self.rule_id, node, message)  # type: ignore[arg-type]


class ProjectRule(Rule):
    """A cross-file check over the whole-project analysis (RPX008+).

    Project rules never see individual files: the engine builds one
    :class:`~repro.lint.project.ProjectAnalysis` from every collected
    file and calls :meth:`check_project` once per rule.  They only run
    when the analyzed set includes the category registry
    (``repro/sim/categories.py``) — a partial file set cannot support
    sound cross-file conclusions, so single-file invocations skip them.
    """

    def applies_to(self, ctx: FileContext) -> bool:
        return False

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        return []

    def check_project(self, analysis: ProjectAnalysis) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic_at(self, ref: SourceRef, message: str) -> Diagnostic:
        return Diagnostic(
            path=ref.path,
            line=ref.line,
            col=ref.col,
            rule=self.rule_id,
            message=message,
        )
