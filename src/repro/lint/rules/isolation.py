"""RPX006: no shared-memory cheating between simulated processes."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule

#: attribute names through which code reaches OTHER process objects
PEER_ACCESS_ATTRS = frozenset({"network", "processes", "vertices", "controllers", "peers"})
#: method names that reach a process registry
PEER_ACCESS_CALLS = frozenset({"process", "controller"})
#: container / object mutators — calling one on a peer chain is a write
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)
_HANDLER_PREFIXES = ("on_", "_on_")


class _ChainInfo:
    """Summary of an attribute/subscript/call access chain."""

    __slots__ = ("root", "attrs", "reaches_peer")

    def __init__(self, root: str | None, attrs: set[str], reaches_peer: bool) -> None:
        self.root = root
        self.attrs = attrs
        self.reaches_peer = reaches_peer


def _unroll(node: ast.AST) -> _ChainInfo:
    """Walk an access chain down to its root Name.

    ``self.network.process(j).pending_in`` ->
    root="self", attrs={network, process, pending_in}, reaches_peer=True.
    """
    attrs: set[str] = set()
    reaches_peer = False
    while True:
        if isinstance(node, ast.Attribute):
            attrs.add(node.attr)
            if node.attr in PEER_ACCESS_ATTRS:
                reaches_peer = True
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr in PEER_ACCESS_CALLS:
                reaches_peer = True
            node = node.func
        else:
            break
    root = node.id if isinstance(node, ast.Name) else None
    return _ChainInfo(root, attrs, reaches_peer)


def _is_process_class(node: ast.ClassDef) -> bool:
    """Heuristic: the class (transitively) subclasses sim.process.Process."""
    for base in node.bases:
        text = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if "Process" in text or text == "Controller":
            return True
    return False


class ProcessIsolationRule(Rule):
    """RPX006: a process only ever mutates its own state."""

    rule_id = "RPX006"
    title = "message handlers must not mutate another process's attributes"
    explanation = (
        "Axiom P3: a process decides using local knowledge only — its own\n"
        "edges, its own detector state — plus the messages it receives.  In\n"
        "a single-address-space simulation nothing physically prevents\n"
        "vertex j from reaching through the network registry and flipping\n"
        "vertex k's pending_in, which would fabricate exactly the global\n"
        "knowledge the distributed algorithm is proved not to need.  This\n"
        "rule flags, inside Process subclasses, (a) any write through a\n"
        "peer-reaching chain (.network / .vertices / .controllers /\n"
        ".process(...)), and (b) handler methods (on_message / _on_*)\n"
        "mutating their received arguments — in-flight messages are frozen\n"
        "(RPX003) and must stay that way."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_packages("basic", "ddb", "ormodel")

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_process_class(node):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        diagnostics.extend(self._check_method(ctx, item))
        return diagnostics

    def _check_method(
        self, ctx: FileContext, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        is_handler = method.name == "on_message" or method.name.startswith(_HANDLER_PREFIXES)
        params = {arg.arg for arg in method.args.args} - {"self"}
        #: local names bound to expressions that reach peer processes
        peer_vars: set[str] = set()

        def chain_is_foreign(info: _ChainInfo) -> str | None:
            if info.reaches_peer or (info.root is not None and info.root in peer_vars):
                return "another process's state"
            if is_handler and info.root is not None and info.root in params:
                return f"its received argument '{info.root}'"
            return None

        for stmt in ast.walk(method):
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        why = chain_is_foreign(_unroll(target))
                        if why is not None:
                            diagnostics.append(
                                self.diagnostic(
                                    ctx,
                                    target,
                                    f"handler '{method.name}' writes {why} "
                                    "directly; communicate via messages instead",
                                )
                            )
                    elif isinstance(target, ast.Name) and isinstance(stmt, ast.Assign):
                        info = _unroll(stmt.value)
                        if info.reaches_peer or (info.root in peer_vars):
                            peer_vars.add(target.id)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        why = chain_is_foreign(_unroll(target))
                        if why is not None:
                            diagnostics.append(
                                self.diagnostic(
                                    ctx,
                                    target,
                                    f"handler '{method.name}' deletes {why}",
                                )
                            )
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
                    why = chain_is_foreign(_unroll(func.value))
                    if why is not None:
                        diagnostics.append(
                            self.diagnostic(
                                ctx,
                                stmt,
                                f"handler '{method.name}' calls mutator "
                                f".{func.attr}() on {why}; only a process's "
                                "own state may be mutated",
                            )
                        )
        return diagnostics
