"""RPX007: protocol code speaks the transport seam, never a backend."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule
from repro.lint.rules.layering import CORE_TIER_MODULES

#: packages whose node/handler code must stay backend-neutral.  ``sim``
#: itself is excluded (it *is* the simulator backend) and so are the
#: ``system.py`` assemblers (core tier: they build the runtime).
CHECKED_PACKAGES = frozenset({"basic", "ddb", "ormodel", "baselines"})
#: concrete backend modules protocol code must not name.  The seam
#: (``repro.core.transport``) is the only runtime surface they may know.
BACKEND_MODULES = frozenset(
    {
        ("repro", "sim", "simulator"),
        ("repro", "sim", "network"),
        ("repro", "live", "transport"),
        ("repro", "cluster", "transport"),
    }
)


class BackendNeutralityRule(Rule):
    """RPX007: no direct backend imports from protocol packages.

    Vertices, controllers, initiation policies, and the baseline
    detectors act only through :class:`~repro.core.transport.NodeContext`
    / :class:`~repro.core.transport.Transport`; importing
    ``repro.sim.simulator``, ``repro.sim.network``, or
    ``repro.live.transport``, or ``repro.cluster.transport`` pins them
    to one runtime.
    """

    rule_id = "RPX007"
    title = "protocol code must not import a concrete transport backend"
    explanation = (
        "The paper's processes know nothing about how messages move: axiom\n"
        "P4 promises reliable per-channel-FIFO delivery and says nothing\n"
        "else.  The codebase mirrors that with the transport seam --\n"
        "repro.core.transport defines the structural NodeContext/Transport\n"
        "protocols, and the same vertex/controller code runs unchanged on\n"
        "the deterministic simulator (repro.sim), the wall-clock asyncio\n"
        "backend (repro.live), and the multi-process cluster backend\n"
        "(repro.cluster).  A protocol module importing repro.sim.simulator\n"
        "or repro.sim.network (or repro.live.transport or\n"
        "repro.cluster.transport) re-welds that seam shut: the node would\n"
        "compile against one\n"
        "backend's concrete surface and silently stop being portable, and\n"
        "the live-vs-sim conformance suite would no longer be testing the\n"
        "same code.  The system.py assemblers are exempt -- they are\n"
        "core-tier wiring and legitimately name backend types (DelayModel,\n"
        "Network) when building the runtime."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_packages(*CHECKED_PACKAGES) and ctx.parts not in CORE_TIER_MODULES

    def _flag(self, ctx: FileContext, node: ast.AST, module: str) -> Diagnostic:
        return self.diagnostic(
            ctx,
            node,
            f"protocol module '{'.'.join(ctx.package)}' imports concrete "
            f"backend module '{module}'; speak the seam "
            "(repro.core.transport NodeContext/Transport) instead",
        )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = tuple(alias.name.split("."))
                    if parts in BACKEND_MODULES:
                        diagnostics.append(self._flag(ctx, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                parts = tuple(node.module.split("."))
                if parts in BACKEND_MODULES:
                    diagnostics.append(self._flag(ctx, node, node.module))
                else:
                    # ``from repro.sim import network``-style module import
                    for alias in node.names:
                        if (*parts, alias.name) in BACKEND_MODULES:
                            diagnostics.append(
                                self._flag(ctx, node, f"{node.module}.{alias.name}")
                            )
        return diagnostics
