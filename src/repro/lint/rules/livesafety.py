"""RPX010: live-backend safety — no shared state, no reachable wall clock."""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectAnalysis
from repro.lint.rules.base import ProjectRule


class LiveBackendSafetyRule(ProjectRule):
    """RPX010: handlers stay safe under the live (asyncio) transport."""

    rule_id = "RPX010"
    title = "no shared module-level mutable state; no wall clock reachable from handlers"
    explanation = (
        "Under the deterministic simulator every handler runs on one thread\n"
        "of one process, so shared module state and blocking calls merely\n"
        "break replayability.  Under the live asyncio transport (PR 5) the\n"
        "same handler code runs concurrently across nodes: module-level\n"
        "mutable state becomes a cross-node channel that violates the\n"
        "paper's no-shared-memory system model (section 2), and a\n"
        "time.sleep() stalls the event loop, breaking the FIFO delivery\n"
        "bound every liveness argument (section 4) leans on.\n"
        "\n"
        "This rule complements RPX002/RPX007's per-file pattern matching\n"
        "with project-wide reachability:\n"
        "\n"
        "* a module-level list/dict/set (or collection factory call) in a\n"
        "  protocol package that any function body reads is flagged as\n"
        "  shared handler state — move it onto the process instance, or\n"
        "  make it an immutable constant (tuple / frozenset / Mapping);\n"
        "* a wall-clock or sleep call reachable from any message-handler\n"
        "  entry point (on_message / on_* / _on_* methods, timer callbacks)\n"
        "  through the conservative call graph is flagged at the handler,\n"
        "  with the call path — even when the primitive itself sits in a\n"
        "  helper module a per-file rule would scope out."
    )

    def check_project(self, analysis: ProjectAnalysis) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for state in analysis.module_state:
            diagnostics.append(
                self.diagnostic_at(
                    state.ref,
                    f"module-level mutable {state.kind} '{state.name}' is read "
                    "from handler code; under the live backend this is state "
                    "shared across nodes — keep per-process state on the "
                    "process instance (system model, section 2)",
                )
            )
        seen: set[tuple[str, str, int]] = set()
        for entry in analysis.handler_entry_points():
            for info, (primitive, line), path in analysis.clock_reachability(entry):
                key = (entry.qualname, info.ref.path, line)
                if key in seen:
                    continue
                seen.add(key)
                if len(path) == 1:
                    via = ""
                else:
                    via = f" via {' -> '.join(path[1:])}"
                diagnostics.append(
                    self.diagnostic_at(
                        entry.ref,
                        f"handler '{entry.name}' can reach wall-clock call "
                        f"{primitive} at {info.ref.path}:{line}{via}; live "
                        "handlers must never block or read host time",
                    )
                )
        return sorted(diagnostics)
