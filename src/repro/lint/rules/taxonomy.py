"""RPX008: handler message flow must match the registered taxonomies."""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectAnalysis, TaxonomyInfo, _module_name
from repro.lint.rules.base import ProjectRule

#: per-lifecycle-field detail keys a trace call must carry, mirroring
#: what ``repro.obs.spans.schema_from_taxonomy`` reads off each event:
#: sent events carry the endpoints and the edge label, received events
#: the edge label, declarations the declarer.  Every lifecycle event
#: additionally carries the probe ``tag`` (step A0 identity).
_FIELD_KEY_SOURCES = {
    "initiated": (),
    "probe_sent": ("endpoint_keys", "edge_keys"),
    "probe_received": ("edge_keys",),
    "declared": ("declared_by_key",),
}


def _required_keys(taxonomy: TaxonomyInfo, field: str) -> set[str]:
    required = {"tag"}
    for source in _FIELD_KEY_SOURCES[field]:
        value = getattr(taxonomy, source)
        if isinstance(value, str):
            required.add(value)
        elif value is not None:
            required.update(value)
    return required


class TaxonomyConformanceRule(ProjectRule):
    """RPX008: sends, dispatches and traces agree with the registry."""

    rule_id = "RPX008"
    title = "handler message flow must conform to the registered MessageTaxonomy"
    explanation = (
        "The paper's correctness argument (soundness QRP2, completeness QRP1)\n"
        "assumes every vertex speaks exactly the declared probe protocol.  In\n"
        "this codebase that declaration is the MessageTaxonomy each variant\n"
        "registers in repro.core.registry: obs.spans folds traces with it, the\n"
        "oracle checks declarations against it, and sweep trusts it.  This\n"
        "rule closes the loop statically, from the parsed ASTs alone (no\n"
        "protocol module is imported):\n"
        "\n"
        "* every lifecycle category a taxonomy declares resolves to a\n"
        "  registered repro.sim.categories constant AND is actually traced by\n"
        "  the model's handler code — a dead taxonomy entry means spans would\n"
        "  silently reconstruct nothing;\n"
        "* every trace call recording a lifecycle category carries the detail\n"
        "  keys the taxonomy promises (endpoint_keys on sends, edge_keys on\n"
        "  sends/receives, declared_by_key on declarations, tag everywhere),\n"
        "  so span reconstruction never KeyErrors at analysis time;\n"
        "* every message class a handler sends is a frozen dataclass declared\n"
        "  in the package's messages.py (undeclared sends are errors), is\n"
        "  dispatched on by some handler, and conversely every declared\n"
        "  message class is actually used (dead declarations are errors)."
    )

    def check_project(self, analysis: ProjectAnalysis) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(self._check_taxonomies(analysis))
        diagnostics.extend(self._check_message_flow(analysis))
        return diagnostics

    # -- taxonomy side ---------------------------------------------------

    def _check_taxonomies(self, analysis: ProjectAnalysis) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        registered = set(analysis.category_values.values())
        for taxonomy in analysis.taxonomies:
            for field, category in sorted(taxonomy.categories.items()):
                raw = taxonomy.raw.get(field, "<missing>")
                if category is None:
                    diagnostics.append(
                        self.diagnostic_at(
                            taxonomy.ref,
                            f"taxonomy of variant '{taxonomy.variant}': field "
                            f"'{field}' ({raw}) does not resolve to a "
                            "repro.sim.categories constant",
                        )
                    )
                    continue
                if category not in registered:
                    diagnostics.append(
                        self.diagnostic_at(
                            taxonomy.ref,
                            f"taxonomy of variant '{taxonomy.variant}': field "
                            f"'{field}' names unregistered category "
                            f"'{category}'",
                        )
                    )
            package = analysis.package_for_model(taxonomy.model)
            if package is None:
                continue
            diagnostics.extend(self._check_package(analysis, taxonomy, package))
        return diagnostics

    def _check_package(
        self, analysis: ProjectAnalysis, taxonomy: TaxonomyInfo, package: str
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        sites = analysis.package_trace_sites(package)
        traced = {site.category for site in sites if site.category is not None}
        for field, category in sorted(taxonomy.categories.items()):
            if category is None:
                continue
            if category not in traced:
                diagnostics.append(
                    self.diagnostic_at(
                        taxonomy.ref,
                        f"dead taxonomy entry: variant '{taxonomy.variant}' "
                        f"declares {field}='{category}' but no handler in "
                        f"repro/{package}/ ever traces it",
                    )
                )
                continue
            required = _required_keys(taxonomy, field)
            for site in sites:
                if site.category != category:
                    continue
                missing = sorted(required - set(site.keywords))
                if missing:
                    diagnostics.append(
                        self.diagnostic_at(
                            site.ref,
                            f"trace of lifecycle category '{category}' "
                            f"({field}) is missing detail key(s) "
                            f"{', '.join(missing)} promised by the "
                            f"'{taxonomy.variant}' taxonomy",
                        )
                    )
        return diagnostics

    # -- message-class side ----------------------------------------------

    def _check_message_flow(self, analysis: ProjectAnalysis) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        dispatched = analysis.dispatched_classes()
        sent = analysis.sent_classes()
        flagged_defs: set[tuple[tuple[str, ...], str]] = set()
        for site in sorted(
            analysis.send_sites, key=lambda s: (s.ref.path, s.ref.line, s.ref.col)
        ):
            cls = site.message_class
            if cls is None:
                continue
            key = (_module_name(cls.module), cls.name)
            if not cls.frozen:
                diagnostics.append(
                    self.diagnostic_at(
                        site.ref,
                        f"undeclared message send: '{cls.name}' is not a "
                        "frozen dataclass; in-flight messages must be "
                        "immutable values (frozen-message atomicity)",
                    )
                )
            if (
                not cls.in_messages_module
                and analysis.package_has_messages_module(cls.package)
                and key not in flagged_defs
            ):
                flagged_defs.add(key)
                diagnostics.append(
                    self.diagnostic_at(
                        cls.ref,
                        f"undeclared message send: handlers send '{cls.name}' "
                        f"but it is not declared in repro/{cls.package}/"
                        "messages.py, where the package's wire protocol lives",
                    )
                )
            if key not in dispatched and key not in flagged_defs:
                flagged_defs.add(key)
                diagnostics.append(
                    self.diagnostic_at(
                        cls.ref,
                        f"message class '{cls.name}' is sent but no handler "
                        "dispatches on it (isinstance); the message would be "
                        "silently dropped on delivery",
                    )
                )
        for key, cls in sorted(analysis.message_classes.items()):
            if not (cls.in_messages_module and cls.frozen):
                continue
            if key in sent or key in dispatched:
                continue
            if key in analysis.referenced_classes:
                continue
            diagnostics.append(
                self.diagnostic_at(
                    cls.ref,
                    f"dead message declaration: '{cls.name}' in "
                    f"repro/{cls.package}/messages.py is never sent, "
                    "dispatched on, or otherwise referenced",
                )
            )
        return diagnostics
