"""RPX005: trace categories come from the central registry, never literals."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule
from repro.sim import categories as registry

#: methods whose (first) string argument is a trace category
#: (``trace`` is NodeContext.trace, the seam nodes record through)
_PRODUCER_METHODS = frozenset({"trace_now", "trace", "events"})


class TraceCategoryRule(Rule):
    """RPX005: no raw trace-category string literals in ``repro`` source."""

    rule_id = "RPX005"
    title = "trace categories must come from repro.sim.categories"
    explanation = (
        "The invariant checkers (verification/invariants.py) and the system\n"
        "observers select trace events by exact category string: check_fifo\n"
        "matches net.sent/net.delivered pairs, check_probe_edge_darkness\n"
        "replays basic.request.*/basic.probe.* to re-establish the P1\n"
        "consequence Theorem 2's proof uses.  A typo'd literal on either the\n"
        "recording or the matching side makes a checker silently vacuous —\n"
        "it sees no events and reports no violations.  Referencing constants\n"
        "from repro.sim.categories turns that typo into an AttributeError,\n"
        "and this rule keeps literals from creeping back in (Tracer.record /\n"
        "trace_now / events arguments and event.category comparisons)."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.parts[:1] != ("repro",):
            return False
        # the registry itself is the one place the literals live
        return not ctx.is_module("repro", "sim", "categories.py")

    def _literal(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def _flag(self, ctx: FileContext, node: ast.AST, value: str) -> Diagnostic:
        constant = registry.constant_name_for(value)
        if constant is not None:
            hint = f"use repro.sim.categories.{constant}"
        else:
            hint = "register it in repro.sim.categories and reference the constant"
        return self.diagnostic(
            ctx, node, f"raw trace-category literal '{value}'; {hint}"
        )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                candidates: list[ast.expr] = []
                if method in _PRODUCER_METHODS and node.args:
                    candidates.append(node.args[0])
                elif method == "record":
                    # Tracer.record(time, category, ...); histograms use
                    # record(value) with numeric args, never str literals.
                    candidates.extend(node.args[:2])
                for arg in candidates:
                    value = self._literal(arg)
                    if value is not None:
                        diagnostics.append(self._flag(ctx, arg, value))
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    continue
                left = node.left
                is_category = (
                    isinstance(left, ast.Attribute) and left.attr == "category"
                ) or (isinstance(left, ast.Name) and left.id == "category")
                if not is_category:
                    continue
                value = self._literal(node.comparators[0])
                if value is not None:
                    diagnostics.append(self._flag(ctx, node.comparators[0], value))
        return diagnostics
