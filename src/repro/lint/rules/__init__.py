"""Rule registry: every RPX rule, in id order."""

from __future__ import annotations

from repro.lint.rules.backend import BackendNeutralityRule
from repro.lint.rules.base import Rule
from repro.lint.rules.categories_rule import TraceCategoryRule
from repro.lint.rules.determinism import UnseededRandomnessRule, WallClockRule
from repro.lint.rules.isolation import ProcessIsolationRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.messages import FrozenMessagesRule

ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomnessRule(),
    WallClockRule(),
    FrozenMessagesRule(),
    LayeringRule(),
    TraceCategoryRule(),
    ProcessIsolationRule(),
    BackendNeutralityRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}


def get_rule(rule_id: str) -> Rule | None:
    return RULES_BY_ID.get(rule_id.upper())


__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "get_rule",
]
