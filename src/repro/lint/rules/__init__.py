"""Rule registry: every RPX rule, in id order.

Per-file rules (RPX001-007) check one AST at a time; project rules
(RPX008-010) run once over the whole-project analysis built by
:mod:`repro.lint.project` and only when the collected file set includes
the category registry (see :class:`repro.lint.rules.base.ProjectRule`).
"""

from __future__ import annotations

from repro.lint.rules.backend import BackendNeutralityRule
from repro.lint.rules.base import ProjectRule, Rule
from repro.lint.rules.categories_rule import TraceCategoryRule
from repro.lint.rules.determinism import UnseededRandomnessRule, WallClockRule
from repro.lint.rules.immutability import MessageImmutabilityRule
from repro.lint.rules.isolation import ProcessIsolationRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.livesafety import LiveBackendSafetyRule
from repro.lint.rules.messages import FrozenMessagesRule
from repro.lint.rules.taxonomy import TaxonomyConformanceRule

PER_FILE_RULES: tuple[Rule, ...] = (
    UnseededRandomnessRule(),
    WallClockRule(),
    FrozenMessagesRule(),
    LayeringRule(),
    TraceCategoryRule(),
    ProcessIsolationRule(),
    BackendNeutralityRule(),
)

PROJECT_RULES: tuple[ProjectRule, ...] = (
    TaxonomyConformanceRule(),
    MessageImmutabilityRule(),
    LiveBackendSafetyRule(),
)

ALL_RULES: tuple[Rule, ...] = (*PER_FILE_RULES, *PROJECT_RULES)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}


def get_rule(rule_id: str) -> Rule | None:
    return RULES_BY_ID.get(rule_id.upper())


__all__ = [
    "ALL_RULES",
    "PER_FILE_RULES",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES_BY_ID",
    "Rule",
    "get_rule",
]
