"""RPX001 / RPX002: determinism rules — seeded randomness, virtual time."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic

# The wall-clock primitive sets live in repro.lint.project (their
# canonical home, shared with the RPX010 reachability analysis) and are
# re-exported here for RPX002 and its consumers.
from repro.lint.project import (
    WALL_CLOCK_DATETIME_METHODS,
    WALL_CLOCK_TIME_FUNCTIONS,
)
from repro.lint.rules.base import Rule

#: ``random`` module functions that draw from the process-global RNG.
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "uniform",
        "triangular",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "vonmisesvariate",
        "betavariate",
        "binomialvariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "setstate",
        "getstate",
    }
)


#: The RPX002 allowlist: modules inside the scoped packages that may read
#: the wall clock.  Deliberately a closed set of exact module paths, not a
#: pattern.  ``repro/obs/profile.py`` is the simulator profiler: it times
#: event handlers with ``time.perf_counter`` to report events/sec and
#: per-handler wall time.  Its readings never flow back into the
#: simulation (no delay, schedule, or protocol decision depends on them),
#: and everything it records into shared state (time series, trace
#: events) is stamped with virtual time -- see that module's docstring
#: for the full discipline.  Any new entry here needs the same argument.
WALL_CLOCK_ALLOWED_MODULES = frozenset(
    {
        ("repro", "obs", "profile.py"),
    }
)


class _ModuleAliases(ast.NodeVisitor):
    """Track what local names refer to the modules a rule cares about."""

    def __init__(self, modules: frozenset[str]) -> None:
        self._modules = modules
        #: local name -> dotted module it refers to (e.g. "rnd" -> "random")
        self.aliases: dict[str, str] = {}
        #: (local name, module, original name) for from-imports
        self.from_imports: list[tuple[ast.ImportFrom, str, str, str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if alias.name in self._modules or root in self._modules:
                self.aliases[alias.asname or root] = alias.name if alias.asname else root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.module in self._modules:
            for alias in node.names:
                self.from_imports.append(
                    (node, node.module, alias.name, alias.asname or alias.name)
                )
        self.generic_visit(node)


def _attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when the chain has calls/subscripts."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        chain.reverse()
        return chain
    return None


class UnseededRandomnessRule(Rule):
    """RPX001: all randomness flows through seeded, named RNG streams."""

    rule_id = "RPX001"
    title = "no unseeded or process-global randomness outside sim/rng.py"
    explanation = (
        "Experiment results must be bit-reproducible from one root seed: the\n"
        "paper's claims are checked by replaying traces, and the named-stream\n"
        "discipline in repro.sim.rng isolates consumers of randomness from one\n"
        "another.  Calling the random module's global functions (random.random,\n"
        "random.shuffle, ...), constructing an unseeded random.Random(), or\n"
        "touching numpy.random bypasses that discipline and silently breaks\n"
        "determinism.  Draw from Simulator.rng.stream(name) instead.  Using\n"
        "random.Random purely as a type annotation, or accepting an rng\n"
        "parameter, is fine — only calls are flagged."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_module("repro", "sim", "rng.py")

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        aliases = _ModuleAliases(frozenset({"random", "numpy", "numpy.random"}))
        aliases.visit(ctx.tree)

        random_names = {name for name, mod in aliases.aliases.items() if mod == "random"}
        numpy_names = {name for name, mod in aliases.aliases.items() if mod.startswith("numpy")}
        numpy_random_names = {
            name for name, mod in aliases.aliases.items() if mod == "numpy.random"
        }
        unseeded_class_names: set[str] = set()
        for node, module, original, local in aliases.from_imports:
            if module == "random" and original in GLOBAL_RANDOM_FUNCTIONS:
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        f"'from random import {original}' uses the process-global "
                        "RNG; draw from a named stream (repro.sim.rng) instead",
                    )
                )
            elif module == "random" and original == "Random":
                unseeded_class_names.add(local)
            elif module == "numpy" and original == "random":
                numpy_random_names.add(local)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if chain is None:
                continue
            root, rest = chain[0], chain[1:]
            if root in random_names and rest and rest[-1] in GLOBAL_RANDOM_FUNCTIONS:
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        f"call to global-RNG function random.{rest[-1]}(); use a "
                        "seeded named stream from repro.sim.rng",
                    )
                )
            elif (
                (root in random_names and rest == ["Random"])
                or (not rest and root in unseeded_class_names)
            ) and not node.args and not node.keywords:
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        "unseeded random.Random() is nondeterministic; pass an "
                        "explicit seed or use repro.sim.rng",
                    )
                )
            elif (root in numpy_names and "random" in rest) or (
                root in numpy_random_names and rest
            ):
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        "numpy.random bypasses the seeded named-stream registry; "
                        "use repro.sim.rng streams",
                    )
                )
        return diagnostics


class WallClockRule(Rule):
    """RPX002: protocol and simulator code runs on virtual time only."""

    rule_id = "RPX002"
    title = "no wall-clock reads in sim/, basic/, ddb/, ormodel/, obs/"
    explanation = (
        "All temporal reasoning in the reproduction — FIFO delivery order,\n"
        "detection latency, the 'black cycle at the time the probe is\n"
        "received' condition of Theorem 2 — happens in virtual time owned by\n"
        "sim.clock.Clock.  A time.time()/monotonic() read or datetime.now()\n"
        "in protocol or simulator code couples results to the host machine\n"
        "and makes traces non-replayable.  Use Simulator.now (and schedule()\n"
        "instead of sleep()).\n"
        "\n"
        "One documented exception (WALL_CLOCK_ALLOWED_MODULES):\n"
        "repro/obs/profile.py, the opt-in simulator profiler, measures\n"
        "handler wall time by design.  It may read the wall clock because\n"
        "its readings never feed back into the simulation and everything it\n"
        "records into shared state is virtual-time stamped."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.parts in WALL_CLOCK_ALLOWED_MODULES:
            return False
        return ctx.in_packages("sim", "basic", "ddb", "ormodel", "obs")

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        aliases = _ModuleAliases(frozenset({"time", "datetime"}))
        aliases.visit(ctx.tree)

        time_names = {name for name, mod in aliases.aliases.items() if mod == "time"}
        datetime_module_names = {
            name for name, mod in aliases.aliases.items() if mod == "datetime"
        }
        datetime_class_names: set[str] = set()
        for node, module, original, local in aliases.from_imports:
            if module == "time" and original in WALL_CLOCK_TIME_FUNCTIONS:
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        f"'from time import {original}' reads the wall clock; "
                        "protocol code must use virtual time (Simulator.now)",
                    )
                )
            elif module == "datetime" and original in {"datetime", "date"}:
                datetime_class_names.add(local)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if chain is None:
                continue
            root, rest = chain[0], chain[1:]
            if root in time_names and rest and rest[-1] in WALL_CLOCK_TIME_FUNCTIONS:
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        f"wall-clock call time.{rest[-1]}(); use the virtual "
                        "Clock via Simulator.now / Simulator.schedule",
                    )
                )
            elif (
                root in datetime_module_names
                and len(rest) == 2
                and rest[0] in {"datetime", "date"}
                and rest[1] in WALL_CLOCK_DATETIME_METHODS
            ) or (
                root in datetime_class_names
                and len(rest) == 1
                and rest[0] in WALL_CLOCK_DATETIME_METHODS
            ):
                diagnostics.append(
                    self.diagnostic(
                        ctx,
                        node,
                        "wall-clock datetime constructor; simulations must be "
                        "replayable from virtual time alone",
                    )
                )
        return diagnostics
