"""RPX004: one-way layering between protocol, harness, and driver tiers."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule

#: packages implementing the paper's models + the simulation substrate
PROTOCOL_PACKAGES = frozenset({"basic", "ddb", "ormodel", "sim"})
#: harness layers that may depend on protocol code, never the reverse.
#: ``obs`` belongs here: it folds traces into spans and profiles the
#: engine from outside; the simulator exposes only a structural
#: ProfileHook protocol so it never needs to import obs.
HARNESS_PACKAGES = frozenset(
    {"experiments", "analysis", "verification", "workloads", "obs"}
)
#: the driver tier sits on top of everything: ``sweep`` fans experiment
#: grids out across processes and may import both protocol and harness
#: packages -- but nothing below it may import the driver back, or the
#: experiments would no longer be runnable (or reasoned about) standalone.
DRIVER_PACKAGES = frozenset({"sweep"})


class LayeringRule(Rule):
    """RPX004: imports must point strictly down the tier stack.

    protocol (basic/ddb/ormodel/sim) < harness (experiments/analysis/
    verification/workloads/obs) < driver (sweep).  A file in a tier may
    import same-tier and lower-tier packages only.
    """

    rule_id = "RPX004"
    title = "layer tiers import strictly downward (protocol < harness < driver)"
    explanation = (
        "The protocol packages (basic/, ddb/, ormodel/) and the simulation\n"
        "substrate (sim/) are the trusted core the paper's proofs map onto;\n"
        "experiments/, analysis/, verification/, workloads/ and obs/ observe\n"
        "that core from outside (black-box monitoring, like the oracle layer),\n"
        "and sweep/ is the driver tier that fans the harness out across worker\n"
        "processes.  A protocol->harness import would let verification state\n"
        "leak into protocol decisions — exactly the shared-knowledge cheating\n"
        "axiom P3 forbids — and a harness->driver import would make single\n"
        "experiments depend on the multiprocessing machinery that runs them,\n"
        "so neither tier could be refactored (sharding, multi-process\n"
        "backends, remote workers) without touching the tiers below.  The\n"
        "simulator's profiling hook is a structural Protocol for this reason:\n"
        "obs implements it without sim ever importing obs."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_packages(*PROTOCOL_PACKAGES, *HARNESS_PACKAGES)

    def _forbidden(self, ctx: FileContext) -> frozenset[str]:
        """Packages the current file's tier must not import."""
        if ctx.in_packages(*PROTOCOL_PACKAGES):
            return HARNESS_PACKAGES | DRIVER_PACKAGES
        return DRIVER_PACKAGES

    def _resolve_relative(self, ctx: FileContext, node: ast.ImportFrom) -> list[str]:
        """Absolute module parts for a ``from . import x``-style node."""
        base = list(ctx.package)
        drop = node.level - 1
        if drop:
            base = base[:-drop] if drop < len(base) else []
        if node.module:
            base.extend(node.module.split("."))
        return base

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        forbidden = self._forbidden(ctx)
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if len(parts) >= 2 and parts[0] == "repro" and parts[1] in forbidden:
                        diagnostics.append(self._violation(ctx, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = self._resolve_relative(ctx, node)
                else:
                    parts = node.module.split(".") if node.module else []
                if len(parts) >= 2 and parts[0] == "repro" and parts[1] in forbidden:
                    diagnostics.append(self._violation(ctx, node, ".".join(parts)))
                elif parts == ["repro"]:
                    for alias in node.names:
                        if alias.name in forbidden:
                            diagnostics.append(
                                self._violation(ctx, node, f"repro.{alias.name}")
                            )
        return diagnostics

    def _violation(self, ctx: FileContext, node: ast.AST, module: str) -> Diagnostic:
        tier = "protocol" if ctx.in_packages(*PROTOCOL_PACKAGES) else "harness"
        return self.diagnostic(
            ctx,
            node,
            f"{tier} package '{'.'.join(ctx.package)}' imports higher-tier "
            f"module '{module}' (one-way layering: protocol < harness < "
            "driver; imports must point strictly downward)",
        )
