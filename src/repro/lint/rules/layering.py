"""RPX004: one-way layering between protocol packages and the harness."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule

#: packages implementing the paper's models + the simulation substrate
PROTOCOL_PACKAGES = frozenset({"basic", "ddb", "ormodel", "sim"})
#: harness layers that may depend on protocol code, never the reverse.
#: ``obs`` belongs here: it folds traces into spans and profiles the
#: engine from outside; the simulator exposes only a structural
#: ProfileHook protocol so it never needs to import obs.
HARNESS_PACKAGES = frozenset(
    {"experiments", "analysis", "verification", "workloads", "obs"}
)


class LayeringRule(Rule):
    """RPX004: protocol packages never import the harness layers."""

    rule_id = "RPX004"
    title = "protocol packages must not import experiments/analysis/verification/workloads/obs"
    explanation = (
        "The protocol packages (basic/, ddb/, ormodel/) and the simulation\n"
        "substrate (sim/) are the trusted core the paper's proofs map onto;\n"
        "experiments/, analysis/, verification/, workloads/ and obs/ observe\n"
        "that core from outside (black-box monitoring, like the oracle layer).\n"
        "A protocol->harness import would let verification state leak into\n"
        "protocol decisions — exactly the shared-knowledge cheating axiom P3\n"
        "forbids — and blocks future refactors (sharding, multi-process\n"
        "backends) that need the core to stand alone.  The simulator's\n"
        "profiling hook is a structural Protocol for this reason: obs\n"
        "implements it without sim ever importing obs."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_packages(*PROTOCOL_PACKAGES)

    def _resolve_relative(self, ctx: FileContext, node: ast.ImportFrom) -> list[str]:
        """Absolute module parts for a ``from . import x``-style node."""
        base = list(ctx.package)
        drop = node.level - 1
        if drop:
            base = base[:-drop] if drop < len(base) else []
        if node.module:
            base.extend(node.module.split("."))
        return base

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if len(parts) >= 2 and parts[0] == "repro" and parts[1] in HARNESS_PACKAGES:
                        diagnostics.append(self._violation(ctx, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = self._resolve_relative(ctx, node)
                else:
                    parts = node.module.split(".") if node.module else []
                if len(parts) >= 2 and parts[0] == "repro" and parts[1] in HARNESS_PACKAGES:
                    diagnostics.append(self._violation(ctx, node, ".".join(parts)))
                elif parts == ["repro"]:
                    for alias in node.names:
                        if alias.name in HARNESS_PACKAGES:
                            diagnostics.append(
                                self._violation(ctx, node, f"repro.{alias.name}")
                            )
        return diagnostics

    def _violation(self, ctx: FileContext, node: ast.AST, module: str) -> Diagnostic:
        return self.diagnostic(
            ctx,
            node,
            f"protocol package '{'.'.join(ctx.package)}' imports harness "
            f"module '{module}' (one-way layering: protocol code must not "
            "depend on experiments/analysis/verification/workloads)",
        )
