"""RPX004: one-way layering between protocol, core, harness, and driver tiers."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule

#: packages implementing the paper's models + the simulation substrate
PROTOCOL_PACKAGES = frozenset({"basic", "ddb", "ormodel", "sim"})
#: the protocol-engine layer: shared system assembly, declaration/oracle
#: bookkeeping, and the detector-variant registry (``core``), plus the
#: 1980-era comparison detectors that overlay a host system
#: (``baselines``).  Core may import protocol code; protocol logic
#: (vertices, controllers, probes) must never import core back, or the
#: proofs would no longer be about a standalone protocol.
CORE_PACKAGES = frozenset({"core", "baselines"})
#: protocol-package modules that belong to the *core* tier: the system
#: assemblers.  They wire vertices/controllers to the shared runtime and
#: record declarations through :mod:`repro.core.engine`, so they sit one
#: tier above the protocol logic that surrounds them on disk.
CORE_TIER_MODULES = frozenset(
    {
        ("repro", "basic", "system.py"),
        ("repro", "ddb", "system.py"),
        ("repro", "ormodel", "system.py"),
    }
)
#: harness layers that may depend on protocol and core code, never the
#: reverse.  ``obs`` belongs here: it folds traces into spans and profiles
#: the engine from outside; the simulator exposes only a structural
#: ProfileHook protocol so it never needs to import obs.
HARNESS_PACKAGES = frozenset(
    {"experiments", "analysis", "verification", "workloads", "obs"}
)
#: the driver tier sits on top of everything: ``sweep`` fans experiment
#: grids out across processes, ``live`` hosts nodes on the wall-clock
#: asyncio backend, ``cluster`` spawns one worker OS process per node;
#: all three may import protocol, core, and harness packages -- but
#: nothing below may import the drivers back, or the experiments would
#: no longer be runnable (or reasoned about) standalone.
DRIVER_PACKAGES = frozenset({"sweep", "live", "cluster"})
#: interface-only seam modules that any tier may import.  The transport
#: seam (``repro.core.transport``) defines the structural NodeContext /
#: Transport protocols and imports nothing above the protocol tier, so a
#: protocol module importing it gains no access to core machinery -- the
#: whole point of the seam is that protocol code names the contract, not
#: a backend.  The workload seam (``repro.workloads.spec``) is the same
#: shape one tier up: frozen WorkloadSpec values and the WorkloadFamily
#: registry, importing nothing above ``repro.errors``, so core-tier
#: variant registrations may *name* workloads while the generator
#: implementations (``repro.workloads.families``, loaded lazily by the
#: registry) stay harness-tier.  The scheduling seam
#: (``repro.core.scheduling``) completes the trio: the InitiationPolicy
#: protocol and the frozen PolicySpec / SchedulingPolicy registry import
#: nothing above ``repro.errors``, so protocol-tier initiation adapters
#: and driver-tier CLIs alike may name a policy without pulling in the
#: tiers between them.  Judged at full-module granularity, unlike
#: ordinary targets.
SEAM_MODULES = frozenset(
    {
        ("repro", "core", "transport"),
        ("repro", "core", "scheduling"),
        ("repro", "workloads", "spec"),
    }
)


class LayeringRule(Rule):
    """RPX004: imports must point strictly down the tier stack.

    protocol (basic/ddb/ormodel/sim) < core (core/baselines + the
    ``system.py`` assemblers) < harness (experiments/analysis/
    verification/workloads/obs) < driver (sweep).  A file in a tier may
    import same-tier and lower-tier packages only.
    """

    rule_id = "RPX004"
    title = (
        "layer tiers import strictly downward (protocol < core < harness < driver)"
    )
    explanation = (
        "The protocol packages (basic/, ddb/, ormodel/) and the simulation\n"
        "substrate (sim/) are the trusted base the paper's proofs map onto;\n"
        "core/ and baselines/ form the protocol-engine tier above them (system\n"
        "assembly, declaration recording, the detector-variant registry --\n"
        "the system.py assemblers inside the protocol packages belong to this\n"
        "tier too); experiments/, analysis/, verification/, workloads/ and\n"
        "obs/ observe those tiers from outside (black-box monitoring, like\n"
        "the oracle layer), and sweep/, live/ and cluster/ form the driver\n"
        "tier that runs everything -- experiment grids across processes, the\n"
        "asyncio runtime, one worker OS process per node.  A protocol->core\n"
        "import would\n"
        "let harness bookkeeping leak into protocol decisions -- exactly the\n"
        "shared-knowledge cheating axiom P3 forbids -- and a harness->driver\n"
        "import would make single experiments depend on the multiprocessing\n"
        "machinery that runs them, so neither tier could be refactored\n"
        "(sharding, multi-process backends, remote workers) without touching\n"
        "the tiers below.  The simulator's profiling hook is a structural\n"
        "Protocol for this reason: obs implements it without sim ever\n"
        "importing obs.  Three modules are exempt as seams: repro.core.transport\n"
        "is interface-only (structural NodeContext/Transport protocols, no\n"
        "runtime imports above the protocol tier), so any tier may name it --\n"
        "that is how protocol code stays portable across the simulator and\n"
        "the live asyncio backend without importing either -- and\n"
        "repro.workloads.spec is the workload registry's interface (frozen\n"
        "WorkloadSpec values + family lookup, importing nothing above\n"
        "repro.errors), so core-tier variant registrations may resolve the\n"
        "conformance workloads by name while the generators themselves\n"
        "(repro.workloads.families, loaded lazily at first lookup) stay in\n"
        "the harness tier.  repro.core.scheduling completes the trio: the\n"
        "InitiationPolicy protocol and the frozen PolicySpec registry import\n"
        "nothing above repro.errors, so protocol-tier initiation adapters\n"
        "and driver CLIs name initiation policies through the same seam."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_packages(
            *PROTOCOL_PACKAGES, *CORE_PACKAGES, *HARNESS_PACKAGES
        )

    def _tier(self, ctx: FileContext) -> str:
        """The tier the current *file* belongs to (module overrides win)."""
        if ctx.parts in CORE_TIER_MODULES or ctx.in_packages(*CORE_PACKAGES):
            return "core"
        if ctx.in_packages(*PROTOCOL_PACKAGES):
            return "protocol"
        return "harness"

    def _forbidden(self, ctx: FileContext) -> frozenset[str]:
        """Packages the current file's tier must not import.

        Import *targets* are judged at package granularity: importing
        ``repro.basic.system`` counts as an import of the protocol
        package ``basic`` even though that module is itself core-tier,
        so re-exports from a package ``__init__`` stay legal.
        """
        tier = self._tier(ctx)
        if tier == "protocol":
            return CORE_PACKAGES | HARNESS_PACKAGES | DRIVER_PACKAGES
        if tier == "core":
            return HARNESS_PACKAGES | DRIVER_PACKAGES
        return DRIVER_PACKAGES

    def _resolve_relative(self, ctx: FileContext, node: ast.ImportFrom) -> list[str]:
        """Absolute module parts for a ``from . import x``-style node."""
        base = list(ctx.package)
        drop = node.level - 1
        if drop:
            base = base[:-drop] if drop < len(base) else []
        if node.module:
            base.extend(node.module.split("."))
        return base

    @staticmethod
    def _is_seam(parts: list[str]) -> bool:
        return tuple(parts) in SEAM_MODULES

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        forbidden = self._forbidden(ctx)
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if (
                        len(parts) >= 2
                        and parts[0] == "repro"
                        and parts[1] in forbidden
                        and not self._is_seam(parts)
                    ):
                        diagnostics.append(self._violation(ctx, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = self._resolve_relative(ctx, node)
                else:
                    parts = node.module.split(".") if node.module else []
                if len(parts) >= 2 and parts[0] == "repro" and parts[1] in forbidden:
                    if self._is_seam(parts):
                        continue
                    for alias in node.names:
                        # ``from repro.core import transport`` names the
                        # seam module itself; other names stay illegal.
                        if not self._is_seam([*parts, alias.name]):
                            diagnostics.append(
                                self._violation(ctx, node, ".".join(parts))
                            )
                            break
                elif parts == ["repro"]:
                    for alias in node.names:
                        if alias.name in forbidden:
                            diagnostics.append(
                                self._violation(ctx, node, f"repro.{alias.name}")
                            )
        return diagnostics

    def _violation(self, ctx: FileContext, node: ast.AST, module: str) -> Diagnostic:
        return self.diagnostic(
            ctx,
            node,
            f"{self._tier(ctx)} module '{'.'.join(ctx.package)}' imports "
            f"higher-tier module '{module}' (one-way layering: protocol < "
            "core < harness < driver; imports must point strictly downward)",
        )
