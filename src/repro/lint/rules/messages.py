"""RPX003: message dataclasses must be frozen (immutable in flight)."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule


def _is_dataclass_ref(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == "dataclass") or (
        isinstance(node, ast.Attribute) and node.attr == "dataclass"
    )


class FrozenMessagesRule(Rule):
    """RPX003: every dataclass in a ``messages.py`` is ``frozen=True``."""

    rule_id = "RPX003"
    title = "message dataclasses in */messages.py must be frozen=True"
    explanation = (
        "A message mutated after it is sent (or after receipt, while a copy\n"
        "is still queued) breaks the FIFO-replay reasoning behind axioms\n"
        "P1-P4: the invariant checkers match net.sent to net.delivered events\n"
        "by message identity and value, and probe meaningfulness (section\n"
        "3.2 / 6.5) is judged against the message as sent.  Declaring every\n"
        "dataclass in a messages.py module frozen=True makes in-flight\n"
        "immutability structural rather than conventional."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.filename == "messages.py"

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if _is_dataclass_ref(decorator):
                    diagnostics.append(
                        self.diagnostic(
                            ctx,
                            node,
                            f"message dataclass '{node.name}' is mutable; "
                            "declare it @dataclass(frozen=True)",
                        )
                    )
                elif isinstance(decorator, ast.Call) and _is_dataclass_ref(decorator.func):
                    frozen = next(
                        (kw.value for kw in decorator.keywords if kw.arg == "frozen"),
                        None,
                    )
                    if not (isinstance(frozen, ast.Constant) and frozen.value is True):
                        diagnostics.append(
                            self.diagnostic(
                                ctx,
                                node,
                                f"message dataclass '{node.name}' must set "
                                "frozen=True (immutability of in-flight messages)",
                            )
                        )
        return diagnostics
