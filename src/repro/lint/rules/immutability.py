"""RPX009: frozen message instances are never mutated after construction."""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import MessageClass, ProjectAnalysis, _attribute_chain, _ref
from repro.lint.rules.base import ProjectRule


class MessageImmutabilityRule(ProjectRule):
    """RPX009: no field writes through references to frozen messages."""

    rule_id = "RPX009"
    title = "frozen message instances must never be mutated after construction"
    explanation = (
        "FIFO channels deliver the value that was sent: the proof of Theorem 1\n"
        "treats a probe (i, j, k) as an immutable fact about the computation,\n"
        "and the simulator relies on that to share message objects between\n"
        "sender and receiver without copying.  @dataclass(frozen=True) blocks\n"
        "ordinary attribute assignment at runtime, but only at the moment of\n"
        "the write — object.__setattr__ bypasses it silently, and a mutation\n"
        "attempt in a rarely-taken handler branch becomes a crash (or a\n"
        "corrupted in-flight message) in production rather than in review.\n"
        "This rule finds such writes statically, by dataflow: any name or\n"
        "stored attribute whose type resolves to a frozen message dataclass\n"
        "(parameter annotations, local constructions, self.attr assignments)\n"
        "must never appear as the target of an attribute assignment,\n"
        "augmented assignment, deletion, or object.__setattr__ call.\n"
        "Derive a changed message with dataclasses.replace(...) instead."
    )

    def check_project(self, analysis: ProjectAnalysis) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for parts, ctx in sorted(analysis.modules.items()):
            if analysis._package_of(parts) is None:
                continue
            scan = analysis._scans[parts]
            for cls_node in scan.classes.values():
                frozen_attrs = self._frozen_instance_attrs(analysis, parts, cls_node)
                for item in cls_node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        diagnostics.extend(
                            self._check_function(
                                analysis, ctx, parts, item, frozen_attrs
                            )
                        )
            for fn in scan.functions.values():
                diagnostics.extend(
                    self._check_function(analysis, ctx, parts, fn, {})
                )
        return sorted(diagnostics)

    def _frozen_instance_attrs(
        self,
        analysis: ProjectAnalysis,
        parts: tuple[str, ...],
        cls_node: ast.ClassDef,
    ) -> dict[str, MessageClass]:
        """``self.<attr>`` names bound to frozen message instances."""
        attrs: dict[str, MessageClass] = {}
        for node in ast.walk(cls_node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            resolved = self._resolve_expr_class(analysis, parts, value, annotation)
            if resolved is not None and resolved.frozen:
                attrs[target.attr] = resolved
        return attrs

    @staticmethod
    def _resolve_expr_class(
        analysis: ProjectAnalysis,
        parts: tuple[str, ...],
        value: ast.expr | None,
        annotation: ast.expr | None = None,
    ) -> MessageClass | None:
        if isinstance(value, ast.Call):
            name = None
            if isinstance(value.func, ast.Name):
                name = value.func.id
            elif isinstance(value.func, ast.Attribute):
                name = value.func.attr
            if name is not None:
                return analysis._resolve_class(parts, name)
        if isinstance(annotation, ast.Name):
            return analysis._resolve_class(parts, annotation.id)
        return None

    def _check_function(
        self,
        analysis: ProjectAnalysis,
        ctx: FileContext,
        parts: tuple[str, ...],
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        frozen_attrs: dict[str, MessageClass],
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        local_types = analysis._local_types(parts, fn)
        frozen_locals: dict[str, MessageClass] = {}
        for name, class_name in local_types.items():
            resolved = analysis._resolve_class(parts, class_name)
            if resolved is not None and resolved.frozen:
                frozen_locals[name] = resolved

        def resolve_target(expr: ast.expr) -> MessageClass | None:
            """The frozen message a ``<expr>.<field>`` write mutates, if any."""
            if not isinstance(expr, ast.Attribute):
                return None
            base = expr.value
            if isinstance(base, ast.Name):
                return frozen_locals.get(base.id)
            chain = _attribute_chain(base)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                return frozen_attrs.get(chain[1])
            return None

        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            verb = "assignment to"
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets, verb = [node.target], "augmented assignment to"
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets, verb = list(node.targets), "deletion of"
            elif isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if (
                    chain == ["object", "__setattr__"]
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in frozen_locals
                ):
                    cls = frozen_locals[node.args[0].id]
                    diagnostics.append(
                        self.diagnostic_at(
                            _ref(ctx, node),
                            f"object.__setattr__ on frozen message "
                            f"'{cls.name}' bypasses immutability; build a new "
                            "message with dataclasses.replace(...) instead",
                        )
                    )
                continue
            for target in targets:
                cls = resolve_target(target)
                if cls is None or not isinstance(target, ast.Attribute):
                    continue
                diagnostics.append(
                    self.diagnostic_at(
                        _ref(ctx, node),
                        f"{verb} field '{target.attr}' of frozen message "
                        f"'{cls.name}'; in-flight messages are immutable — "
                        "use dataclasses.replace(...) to derive a new one",
                    )
                )
        return sorted(diagnostics)
