"""``repro lint`` subcommand implementation."""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, get_rule

#: bumped whenever the JSON shape changes; consumers pin on it
JSON_FORMAT_VERSION = 1


def default_paths() -> list[str]:
    """``src`` and ``tests`` when they exist, else the current directory."""
    existing = [name for name in ("src", "tests") if Path(name).is_dir()]
    return existing or ["."]


def explain(rule_id: str) -> tuple[int, str]:
    """(exit code, text) for ``--explain RPXnnn``."""
    rule = get_rule(rule_id)
    if rule is None:
        known = ", ".join(r.rule_id for r in ALL_RULES)
        return 2, f"unknown rule {rule_id!r}; known rules: {known}"
    return 0, f"{rule.rule_id}: {rule.title}\n\n{rule.explanation}"


def run(args: argparse.Namespace) -> int:
    """Entry point wired into the main ``repro`` argument parser."""
    if args.explain is not None:
        code, text = explain(args.explain)
        print(text)
        return code

    paths = args.paths or default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}")
        return 2

    diagnostics = lint_paths(paths)
    if args.format == "json":
        payload = {
            "version": JSON_FORMAT_VERSION,
            "count": len(diagnostics),
            "diagnostics": [diagnostic.to_json() for diagnostic in diagnostics],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format_text())
        if diagnostics:
            print(f"\n{len(diagnostics)} issue(s) found")
        else:
            print("clean: no lint issues found")
    return 1 if diagnostics else 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--explain",
        metavar="RPXnnn",
        default=None,
        help="print what a rule enforces and which paper assumption it guards",
    )
