"""``repro lint`` subcommand implementation."""

from __future__ import annotations

import argparse
import json
import subprocess
from pathlib import Path

from repro.lint import baseline as lint_baseline
from repro.lint.engine import LintRun, run_project
from repro.lint.rules import ALL_RULES, get_rule
from repro.lint.sarif import render_sarif

#: bumped whenever the JSON shape changes; consumers pin on it.
#: v2: added the ``statistics`` block (files scanned, suppression and
#: per-rule counts) consumed by the CI job summary.
JSON_FORMAT_VERSION = 2


def default_paths() -> list[str]:
    """``src`` and ``tests`` when they exist, else the current directory."""
    existing = [name for name in ("src", "tests") if Path(name).is_dir()]
    return existing or ["."]


def explain(rule_id: str) -> tuple[int, str]:
    """(exit code, text) for ``--explain RPXnnn``."""
    rule = get_rule(rule_id)
    if rule is None:
        known = ", ".join(r.rule_id for r in ALL_RULES)
        return 2, f"unknown rule {rule_id!r}; known rules: {known}"
    return 0, f"{rule.rule_id}: {rule.title}\n\n{rule.explanation}"


def _git(*args: str) -> str | None:
    """stdout of a git command, or None when git/repo is unavailable."""
    try:
        completed = subprocess.run(
            ["git", *args], capture_output=True, text=True, check=False
        )
    except OSError:
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def changed_files(merge_base_ref: str) -> set[Path] | None:
    """Files differing from the merge base, plus untracked files.

    Resolved absolute paths; ``None`` when git (or the ref) is
    unavailable, in which case ``--changed-only`` falls back to linting
    everything rather than silently checking nothing.
    """
    merge_base = None
    for ref in (merge_base_ref, "origin/main", "main"):
        out = _git("merge-base", "HEAD", ref)
        if out is not None:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed = _git("diff", "--name-only", "-z", merge_base)
    untracked = _git("ls-files", "--others", "--exclude-standard", "-z")
    if changed is None or untracked is None:
        return None
    names = [n for n in (changed + untracked).split("\0") if n]
    return {Path(name).resolve() for name in names}


def _statistics(run: LintRun) -> dict[str, object]:
    return {
        "files_scanned": run.files_scanned,
        "suppressed": run.suppressed,
        "project_pass": run.project_pass_ran,
        "rules": run.per_rule_counts(),
    }


def run(args: argparse.Namespace) -> int:
    """Entry point wired into the main ``repro`` argument parser."""
    if args.explain is not None:
        code, text = explain(args.explain)
        print(text)
        return code
    if args.record and args.baseline is None:
        print("error: --record requires --baseline PATH")
        return 2
    if args.changed_only and args.baseline is not None:
        print(
            "error: --changed-only cannot be combined with --baseline "
            "(a partial view cannot ratchet the whole-tree baseline)"
        )
        return 2

    paths = args.paths or default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}")
        return 2

    lint_run = run_project(paths)
    diagnostics = lint_run.diagnostics
    if args.changed_only:
        changed = changed_files(args.merge_base)
        if changed is not None:
            diagnostics = [
                d for d in diagnostics if Path(d.path).resolve() in changed
            ]

    if args.baseline is not None and args.record:
        lint_baseline.record(Path(args.baseline), diagnostics)
        print(
            f"recorded {len(diagnostics)} finding(s) to {args.baseline} "
            f"({lint_run.files_scanned} files scanned)"
        )
        return 0

    if args.format == "json":
        payload = {
            "version": JSON_FORMAT_VERSION,
            "count": len(diagnostics),
            "diagnostics": [diagnostic.to_json() for diagnostic in diagnostics],
            "statistics": _statistics(lint_run),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(render_sarif(diagnostics))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format_text())
        if diagnostics:
            print(f"\n{len(diagnostics)} issue(s) found")
        else:
            print("clean: no lint issues found")

    if args.baseline is not None:
        try:
            for line in lint_baseline.check(Path(args.baseline), diagnostics):
                print(line)
        except lint_baseline.BaselineError as error:
            print(f"lint baseline check failed: {error}")
            return 1
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline {args.baseline}: {error}")
            return 2
        return 0
    return 1 if diagnostics else 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif is SARIF 2.1.0 for "
        "GitHub code scanning",
    )
    parser.add_argument(
        "--explain",
        metavar="RPXnnn",
        default=None,
        help="print what a rule enforces and which paper assumption it guards",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare findings against this committed baseline (exit 1 on "
        "any drift); with --record, (re)write it instead",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="with --baseline: write the current findings as the new baseline",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files differing from the merge base "
        "(the whole tree is still analyzed, so cross-file rules stay sound)",
    )
    parser.add_argument(
        "--merge-base",
        metavar="REF",
        default="origin/main",
        help="ref --changed-only diffs against (default: origin/main, "
        "falling back to main)",
    )
