"""Lint driver: file discovery, parsing, rule dispatch, suppression."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.lint.context import FileContext, logical_parts
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ALL_RULES, Rule
from repro.lint.suppress import filter_suppressed

#: directory names never descended into during discovery.  ``fixtures`` is
#: excluded so that the deliberately-bad lint fixtures under tests/lint/
#: don't fail a whole-repo run; the fixture tests lint them explicitly.
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        "fixtures",
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        "build",
        "dist",
    }
)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield .py files under ``paths`` (files are yielded as given)."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(
                part in EXCLUDED_DIR_NAMES or part.endswith(".egg-info")
                for part in parts[:-1]
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_source(
    source: str,
    logical_path: str,
    display_path: str | None = None,
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Lint ``source`` as if it lived at ``logical_path``.

    ``logical_path`` drives path-scoped rule applicability (RPX002/3/4...);
    ``display_path`` (default: the logical path) appears in diagnostics.
    Fixture tests use the split to check protocol-path rules against files
    stored under tests/lint/fixtures/.
    """
    display = display_path if display_path is not None else logical_path
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return [
            Diagnostic(
                path=display,
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                rule="RPX000",
                message=f"syntax error: {error.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(
        display_path=display,
        parts=logical_parts(logical_path),
        tree=tree,
        lines=lines,
    )
    diagnostics: list[Diagnostic] = []
    for rule in rules if rules is not None else ALL_RULES:
        if rule.applies_to(ctx):
            diagnostics.extend(rule.check(ctx))
    if suppress:
        diagnostics = filter_suppressed(diagnostics, lines)
    return sorted(diagnostics)


def lint_file(
    path: str | Path,
    logical_path: str | None = None,
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Lint one file from disk (see :func:`lint_source`)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        logical_path=logical_path if logical_path is not None else str(path),
        display_path=str(path),
        rules=rules,
        suppress=suppress,
    )


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Lint every Python file under ``paths``; diagnostics come back sorted."""
    diagnostics: list[Diagnostic] = []
    for path in iter_python_files(paths):
        diagnostics.extend(lint_file(path, rules=rules, suppress=suppress))
    return sorted(diagnostics)
