"""Lint driver: file discovery, parsing, rule dispatch, suppression.

Two passes run over the collected files:

1. the **per-file pass** (RPX001-007) checks each AST in isolation;
2. the **project pass** (RPX008-010) builds one
   :class:`~repro.lint.project.ProjectAnalysis` from every successfully
   parsed file and runs the cross-file rules over it.  It is gated on
   the category registry (``repro/sim/categories.py``) being part of the
   collected set: linting a single file or an unrelated tree must not
   produce spurious cross-file findings about code it cannot see.

Files that cannot be read or parsed are *reported* (RPX000), never
raised: one corrupted file must not take down a whole-repo run.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.context import FileContext, logical_parts
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import CATEGORIES_MODULE, ProjectAnalysis
from repro.lint.rules import ALL_RULES, PROJECT_RULES, ProjectRule, Rule
from repro.lint.suppress import filter_suppressed

#: directory names never descended into during discovery.  ``fixtures`` is
#: excluded so that the deliberately-bad lint fixtures under tests/lint/
#: don't fail a whole-repo run; the fixture tests lint them explicitly.
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        "fixtures",
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        "build",
        "dist",
    }
)


@dataclass
class LintRun:
    """Everything one lint invocation produced, plus run statistics."""

    #: kept (unsuppressed) diagnostics, sorted
    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_scanned: int = 0
    #: findings dropped by ``# repro-lint: disable=`` comments
    suppressed: int = 0
    #: whether the cross-file pass ran (category registry in scope)
    project_pass_ran: bool = False

    def per_rule_counts(self) -> dict[str, int]:
        """Rule id -> kept finding count, sorted by rule id."""
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield .py files under ``paths`` (files are yielded as given)."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(
                part in EXCLUDED_DIR_NAMES or part.endswith(".egg-info")
                for part in parts[:-1]
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _split_rules(
    rules: Iterable[Rule] | None,
) -> tuple[list[Rule], list[ProjectRule]]:
    """(per-file rules, project rules) from an explicit or default set."""
    selected = list(rules) if rules is not None else list(ALL_RULES)
    per_file = [rule for rule in selected if not isinstance(rule, ProjectRule)]
    project = [rule for rule in selected if isinstance(rule, ProjectRule)]
    return per_file, project


def lint_source(
    source: str,
    logical_path: str,
    display_path: str | None = None,
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Lint ``source`` as if it lived at ``logical_path`` (per-file pass).

    ``logical_path`` drives path-scoped rule applicability (RPX002/3/4...);
    ``display_path`` (default: the logical path) appears in diagnostics.
    Fixture tests use the split to check protocol-path rules against files
    stored under tests/lint/fixtures/.  Project rules in ``rules`` are
    ignored here — they need a whole-project view (see :func:`run_project`
    and :func:`lint_project_sources`).
    """
    display = display_path if display_path is not None else logical_path
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return [_syntax_diagnostic(display, error)]
    lines = source.splitlines()
    ctx = FileContext(
        display_path=display,
        parts=logical_parts(logical_path),
        tree=tree,
        lines=lines,
    )
    diagnostics: list[Diagnostic] = []
    per_file, _ = _split_rules(rules)
    for rule in per_file:
        if rule.applies_to(ctx):
            diagnostics.extend(rule.check(ctx))
    if suppress:
        diagnostics = filter_suppressed(diagnostics, lines)
    return sorted(diagnostics)


def lint_file(
    path: str | Path,
    logical_path: str | None = None,
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Lint one file from disk (see :func:`lint_source`)."""
    path = Path(path)
    ctx, diagnostics = _load_file(path, logical_path)
    if ctx is None:
        return diagnostics
    return lint_source(
        "\n".join(ctx.lines),
        logical_path=logical_path if logical_path is not None else str(path),
        display_path=str(path),
        rules=rules,
        suppress=suppress,
    )


def _syntax_diagnostic(display: str, error: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=display,
        line=error.lineno or 1,
        col=(error.offset or 0) or 1,
        rule="RPX000",
        message=f"syntax error: {error.msg}",
    )


def _load_file(
    path: Path, logical_path: str | None = None
) -> tuple[FileContext | None, list[Diagnostic]]:
    """(parsed context, diagnostics); unreadable/unparseable -> RPX000."""
    display = str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, [
            Diagnostic(
                path=display,
                line=1,
                col=1,
                rule="RPX000",
                message=f"unreadable file: {error}",
            )
        ]
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return None, [_syntax_diagnostic(display, error)]
    ctx = FileContext(
        display_path=display,
        parts=logical_parts(logical_path if logical_path is not None else display),
        tree=tree,
        lines=source.splitlines(),
    )
    return ctx, []


def run_project(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> LintRun:
    """Lint every Python file under ``paths``: both passes, with stats."""
    per_file_rules, project_rules = _split_rules(rules)
    run = LintRun()
    contexts: list[FileContext] = []
    raw: list[Diagnostic] = []
    lines_by_path: dict[str, list[str]] = {}
    for path in iter_python_files(paths):
        run.files_scanned += 1
        ctx, load_diagnostics = _load_file(path)
        raw.extend(load_diagnostics)
        if ctx is None:
            continue
        contexts.append(ctx)
        lines_by_path[ctx.display_path] = ctx.lines
        for rule in per_file_rules:
            if rule.applies_to(ctx):
                raw.extend(rule.check(ctx))
    if project_rules and any(ctx.parts == CATEGORIES_MODULE for ctx in contexts):
        run.project_pass_ran = True
        analysis = ProjectAnalysis.from_contexts(contexts)
        for project_rule in project_rules:
            raw.extend(project_rule.check_project(analysis))
    if suppress:
        kept: list[Diagnostic] = []
        for diagnostic in raw:
            lines = lines_by_path.get(diagnostic.path, [])
            if filter_suppressed([diagnostic], lines):
                kept.append(diagnostic)
            else:
                run.suppressed += 1
        raw = kept
    run.diagnostics = sorted(raw)
    return run


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Lint every Python file under ``paths``; diagnostics come back sorted."""
    return run_project(paths, rules=rules, suppress=suppress).diagnostics


def lint_project_sources(
    files: Sequence[tuple[str, str]],
    rules: Iterable[ProjectRule] | None = None,
    suppress: bool = True,
) -> list[Diagnostic]:
    """Run the project pass over in-memory ``(logical_path, source)`` pairs.

    The fixture-test entry point for RPX008-010: no per-file rules run,
    and the registry-anchor gate is *not* applied — tests supply exactly
    the file set they mean to analyze.
    """
    analysis = ProjectAnalysis.from_sources(list(files))
    diagnostics: list[Diagnostic] = []
    for rule in rules if rules is not None else PROJECT_RULES:
        diagnostics.extend(rule.check_project(analysis))
    if suppress:
        lines_by_path = {logical: source.splitlines() for logical, source in files}
        diagnostics = [
            diagnostic
            for diagnostic in diagnostics
            if filter_suppressed(
                [diagnostic], lines_by_path.get(diagnostic.path, [])
            )
        ]
    return sorted(diagnostics)
