"""Per-file context handed to every lint rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic


def logical_parts(path: str) -> tuple[str, ...]:
    """Normalise ``path`` to package-relative parts for rule applicability.

    Drops everything up to and including a ``src`` segment, then anchors at
    the first ``repro`` or ``tests`` segment when present.  Examples::

        src/repro/basic/vertex.py  -> ("repro", "basic", "vertex.py")
        /abs/repo/src/repro/x.py   -> ("repro", "x.py")
        tests/sim/test_clock.py    -> ("tests", "sim", "test_clock.py")

    Fixture tests use this to lint a file *as if* it lived at a protocol
    path, which is how path-scoped rules (RPX002/3/4) are exercised.
    """
    parts = tuple(part for part in path.replace("\\", "/").split("/") if part not in ("", "."))
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            return parts[parts.index(anchor) :]
    return parts


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    #: path shown in diagnostics (the real on-disk path)
    display_path: str
    #: package-relative parts used for applicability decisions
    parts: tuple[str, ...]
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.display_path

    @property
    def package(self) -> tuple[str, ...]:
        """Package chain, e.g. ``("repro", "basic")`` for basic/vertex.py."""
        return self.parts[:-1]

    def in_packages(self, *names: str) -> bool:
        """True when the file sits under ``repro/<name>/`` for any name."""
        return len(self.parts) >= 2 and self.parts[0] == "repro" and self.parts[1] in names

    def is_module(self, *parts: str) -> bool:
        """True when the file IS exactly ``repro/<...>/<name>.py``."""
        return self.parts == parts

    def diagnostic(self, rule_id: str, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        )
