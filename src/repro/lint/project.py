"""Project-wide analysis core for the cross-file rules (RPX008-RPX010).

Per-file rules see one AST at a time; the protocol *contract*, however,
lives across modules: the message dataclasses a handler constructs and
sends sit in ``messages.py``, the trace categories it records sit in
``repro/sim/categories.py``, and the taxonomy a variant declares sits in
its registration module under ``repro/core/variants/``.  This module
parses every collected file once and builds:

* a **symbol table** of the protocol packages (classes, functions,
  per-module import aliases, frozen message dataclasses);
* a **send/receive graph**: which message classes each handler
  constructs and sends (``self.send(target, Probe(...))``, or a name
  whose type is pinned by an annotation or a local construction), which
  classes ``on_message`` dispatches on (``isinstance(message, Cls)``),
  and which trace categories each package records with which detail
  keys;
* the **statically resolved taxonomies**: every ``MessageTaxonomy(...)``
  constructed inside a ``DetectorVariant`` registration, with its
  ``categories.X`` references resolved against the parsed category
  registry — no protocol module is ever imported;
* a conservative **call graph** rooted at message handlers, used to
  decide wall-clock reachability (RPX010).

The analysis is deliberately resolution-conservative: a send whose
message expression cannot be typed statically is skipped, never guessed.
Project rules therefore under-approximate, which is the right polarity
for a CI gate.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.core.registry import MODEL_PACKAGES, VARIANT_REGISTRATION_PACKAGE
from repro.lint.context import FileContext, logical_parts

#: ``time`` module functions that read the host's clocks (or block on
#: them) and ``datetime`` constructors that do the same.  This is the
#: canonical home (RPX002 in :mod:`repro.lint.rules.determinism` imports
#: them from here): the rules package imports this module, so the import
#: must not point the other way.
WALL_CLOCK_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
        "localtime",
        "gmtime",
    }
)
WALL_CLOCK_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})

#: packages whose handler code the message-flow analysis covers: the
#: three protocol models plus the overlay detectors, which ride the same
#: FIFO channels (marker algorithms require it) and so speak in-flight
#: messages of their own.
FLOW_PACKAGES: tuple[str, ...] = ("basic", "ddb", "ormodel", "baselines")

#: the parsed file the category constants are resolved from; its
#: presence in a run is the anchor condition for running project rules.
CATEGORIES_MODULE: tuple[str, ...] = ("repro", "sim", "categories.py")

#: module-level calls whose result is shared mutable state (RPX010).
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


@dataclass(frozen=True)
class SourceRef:
    """Where something was found: display path + 1-based line/col."""

    path: str
    line: int
    col: int


def _ref(ctx: FileContext, node: ast.AST) -> SourceRef:
    return SourceRef(
        path=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
    )


@dataclass(frozen=True)
class MessageClass:
    """One in-flight message dataclass declared in a protocol package."""

    name: str
    package: str
    module: tuple[str, ...]
    ref: SourceRef
    frozen: bool
    is_dataclass: bool
    in_messages_module: bool

    @property
    def qualname(self) -> str:
        return f"{'.'.join(self.module)[: -len('.py')]}.{self.name}"


@dataclass(frozen=True)
class SendSite:
    """One ``<expr>.send(destination, message)`` call in a protocol package."""

    package: str
    ref: SourceRef
    #: resolved message class, or None when the expression is untypable
    message_class: MessageClass | None
    #: the syntactic class name the resolution started from, if any
    class_name: str | None


@dataclass(frozen=True)
class DispatchSite:
    """One ``isinstance(<expr>, Cls)`` dispatch in a protocol package."""

    package: str
    ref: SourceRef
    message_class: MessageClass


@dataclass(frozen=True)
class TraceSite:
    """One ``ctx.trace(<category>, key=...)`` call in a protocol package."""

    package: str
    ref: SourceRef
    #: resolved category string, or None when not statically resolvable
    category: str | None
    keywords: tuple[str, ...]


@dataclass(frozen=True)
class TaxonomyInfo:
    """A ``MessageTaxonomy`` resolved from a registration module's AST."""

    variant: str
    model: str
    ref: SourceRef
    #: lifecycle field -> resolved category value (None: unresolvable)
    categories: dict[str, str | None]
    #: lifecycle field -> source text of the reference (for messages)
    raw: dict[str, str]
    endpoint_keys: tuple[str, ...]
    edge_keys: tuple[str, ...]
    declared_by_key: str | None


@dataclass
class FunctionInfo:
    """One function/method: call edges + direct wall-clock primitives."""

    qualname: str
    name: str
    module: tuple[str, ...]
    package: str
    ref: SourceRef
    class_name: str | None
    #: resolved project-internal call targets (qualnames)
    edges: set[str] = field(default_factory=set)
    #: direct wall-clock primitive calls: (description, line)
    clock_calls: list[tuple[str, int]] = field(default_factory=list)


@dataclass(frozen=True)
class ModuleState:
    """A module-level mutable binding in a protocol package (RPX010)."""

    package: str
    module: tuple[str, ...]
    name: str
    ref: SourceRef
    kind: str


def _attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when the chain has calls etc."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        chain.reverse()
        return chain
    return None


def _annotation_name(node: ast.expr | None) -> str | None:
    """The terminal class name of an annotation, if it is a plain name."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the last dotted component
        return node.value.split("[")[0].split(".")[-1].strip() or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _module_name(parts: tuple[str, ...]) -> tuple[str, ...]:
    """("repro", "basic", "vertex.py") -> ("repro", "basic", "vertex")."""
    if parts and parts[-1].endswith(".py"):
        head = parts[:-1]
        stem = parts[-1][:-3]
        return head if stem == "__init__" else (*head, stem)
    return parts


class _ModuleScan(ast.NodeVisitor):
    """First pass over one module: imports, classes, top-level bindings."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        #: local name -> absolute dotted module it refers to
        self.module_aliases: dict[str, tuple[str, ...]] = {}
        #: local name -> (source module parts, original name)
        self.imported_names: dict[str, tuple[tuple[str, ...], str]] = {}
        #: class name -> ClassDef
        self.classes: dict[str, ast.ClassDef] = {}
        #: top-level function name -> FunctionDef
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self._scan()

    def _scan(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = tuple(alias.name.split("."))
                    self.module_aliases[alias.asname or parts[0]] = (
                        parts if alias.asname else parts[:1]
                    )
            elif isinstance(node, ast.ImportFrom):
                source = self._resolve_from(node)
                if source is None:
                    continue
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = (source, alias.name)
        for node in self.ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node

    def _resolve_from(self, node: ast.ImportFrom) -> tuple[str, ...] | None:
        if node.level == 0:
            return tuple(node.module.split(".")) if node.module else None
        base = list(_module_name(self.ctx.parts))
        drop = node.level
        base = base[:-drop] if drop <= len(base) else []
        if node.module:
            base.extend(node.module.split("."))
        return tuple(base)


def _is_dataclass_decorator(node: ast.expr) -> tuple[bool, bool]:
    """(is_dataclass, frozen) for one decorator node."""

    def is_ref(expr: ast.expr) -> bool:
        return (isinstance(expr, ast.Name) and expr.id == "dataclass") or (
            isinstance(expr, ast.Attribute) and expr.attr == "dataclass"
        )

    if is_ref(node):
        return True, False
    if isinstance(node, ast.Call) and is_ref(node.func):
        frozen = next(
            (kw.value for kw in node.keywords if kw.arg == "frozen"), None
        )
        return True, isinstance(frozen, ast.Constant) and frozen.value is True
    return False, False


class ProjectAnalysis:
    """Everything the project rules (RPX008-RPX010) inspect.

    Build one from already-parsed :class:`FileContext` objects
    (:meth:`from_contexts`) or straight from ``(logical_path, source)``
    pairs (:meth:`from_sources`, the fixture-test entry point).
    """

    def __init__(self, contexts: list[FileContext]) -> None:
        self.contexts = contexts
        self.modules: dict[tuple[str, ...], FileContext] = {
            ctx.parts: ctx for ctx in contexts
        }
        self._scans: dict[tuple[str, ...], _ModuleScan] = {
            parts: _ModuleScan(ctx) for parts, ctx in self.modules.items()
        }
        #: category constant name -> value (from repro/sim/categories.py)
        self.category_values: dict[str, str] = {}
        #: message class registry: (module, name) -> MessageClass
        self.message_classes: dict[tuple[tuple[str, ...], str], MessageClass] = {}
        self.send_sites: list[SendSite] = []
        self.dispatch_sites: list[DispatchSite] = []
        self.trace_sites: list[TraceSite] = []
        self.taxonomies: list[TaxonomyInfo] = []
        #: message classes referenced (constructed / named) outside their
        #: defining module, keyed like message_classes
        self.referenced_classes: set[tuple[tuple[str, ...], str]] = set()
        self.functions: dict[str, FunctionInfo] = {}
        self.module_state: list[ModuleState] = []
        #: module-level mutable names read from inside some function body
        self.state_reads: set[tuple[tuple[str, ...], str]] = set()

        self._collect_categories()
        self._collect_message_classes()
        self._collect_flow()
        self._collect_taxonomies()
        self._collect_call_graph()
        self._collect_module_state()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_contexts(cls, contexts: list[FileContext]) -> "ProjectAnalysis":
        return cls(contexts)

    @classmethod
    def from_sources(
        cls, files: list[tuple[str, str]]
    ) -> "ProjectAnalysis":
        """Build from ``(logical_path, source)`` pairs (fixture tests)."""
        contexts: list[FileContext] = []
        for logical, source in files:
            tree = ast.parse(source, filename=logical)
            contexts.append(
                FileContext(
                    display_path=logical,
                    parts=logical_parts(logical),
                    tree=tree,
                    lines=source.splitlines(),
                )
            )
        return cls(contexts)

    @property
    def has_registry_view(self) -> bool:
        """Whether the category registry was part of the analyzed set.

        Project rules only run when it is: without the parsed registry
        the taxonomy and flow checks would report spurious findings on
        partial file sets (single-file invocations, fixtures).
        """
        return bool(self.category_values) or CATEGORIES_MODULE in self.modules

    # -- helpers ---------------------------------------------------------

    def _package_of(self, parts: tuple[str, ...]) -> str | None:
        if len(parts) >= 2 and parts[0] == "repro" and parts[1] in FLOW_PACKAGES:
            return parts[1]
        return None

    def _resolve_class(
        self, parts: tuple[str, ...], name: str
    ) -> MessageClass | None:
        """Resolve a class *name* used in module ``parts`` to a message class."""
        module = _module_name(parts)
        found = self.message_classes.get((module, name))
        if found is not None:
            return found
        scan = self._scans.get(parts)
        if scan is None:
            return None
        imported = scan.imported_names.get(name)
        if imported is not None:
            source_module, original = imported
            return self.message_classes.get((source_module, original))
        return None

    # -- pass 1: category registry --------------------------------------

    def _collect_categories(self) -> None:
        ctx = self.modules.get(CATEGORIES_MODULE)
        if ctx is None:
            return
        for node in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    self.category_values[target.id] = value.value

    # -- pass 2: message classes ----------------------------------------

    def _collect_message_classes(self) -> None:
        for parts, ctx in self.modules.items():
            package = self._package_of(parts)
            if package is None:
                continue
            module = _module_name(parts)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                is_dc = frozen = False
                for decorator in node.decorator_list:
                    dc, fr = _is_dataclass_decorator(decorator)
                    is_dc, frozen = is_dc or dc, frozen or fr
                if not is_dc:
                    continue
                self.message_classes[(module, node.name)] = MessageClass(
                    name=node.name,
                    package=package,
                    module=parts,
                    ref=_ref(ctx, node),
                    frozen=frozen,
                    is_dataclass=is_dc,
                    in_messages_module=ctx.filename == "messages.py",
                )

    def package_has_messages_module(self, package: str) -> bool:
        return ("repro", package, "messages.py") in self.modules

    # -- pass 3: send / dispatch / trace / reference sites ---------------

    def _message_expr_class(
        self,
        parts: tuple[str, ...],
        expr: ast.expr,
        local_types: dict[str, str],
    ) -> tuple[MessageClass | None, str | None]:
        """(resolved class, syntactic class name) of a message expression."""
        if isinstance(expr, ast.Call):
            name = _annotation_name(expr.func)
            if name is not None:
                return self._resolve_class(parts, name), name
            return None, None
        if isinstance(expr, ast.Name):
            name = local_types.get(expr.id)
            if name is not None:
                return self._resolve_class(parts, name), name
        return None, None

    def _local_types(
        self, parts: tuple[str, ...], fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """Local name -> class name, from annotations and constructions."""
        types: dict[str, str] = {}
        args = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        for arg in args:
            name = _annotation_name(arg.annotation)
            if name is not None:
                types[arg.arg] = name
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                    name = _annotation_name(node.value.func)
                    if name is not None and self._resolve_class(parts, name):
                        types[target.id] = name
        return types

    def _collect_flow(self) -> None:
        for parts, ctx in self.modules.items():
            package = self._package_of(parts)
            scan = self._scans[parts]
            # reference tracking runs over *all* modules so a message
            # class used only from a harness consumer still counts.
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    resolved = self._resolve_class(parts, node.id)
                    if resolved is not None and resolved.module != parts:
                        self.referenced_classes.add(
                            (_module_name(resolved.module), resolved.name)
                        )
            if package is None:
                continue
            functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(node)
            for fn in functions:
                local_types = self._local_types(parts, fn)
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    chain = _attribute_chain(node.func)
                    if chain is None:
                        continue
                    if chain[-1] == "send" and len(chain) >= 2 and len(node.args) == 2:
                        resolved, name = self._message_expr_class(
                            parts, node.args[1], local_types
                        )
                        self.send_sites.append(
                            SendSite(
                                package=package,
                                ref=_ref(ctx, node),
                                message_class=resolved,
                                class_name=name,
                            )
                        )
                    elif chain[-1] == "trace" and node.args:
                        self.trace_sites.append(
                            TraceSite(
                                package=package,
                                ref=_ref(ctx, node),
                                category=self._category_of(scan, node.args[0]),
                                keywords=tuple(
                                    kw.arg for kw in node.keywords if kw.arg is not None
                                ),
                            )
                        )
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    for candidate in self._isinstance_classes(node.args[1]):
                        resolved = self._resolve_class(parts, candidate)
                        if resolved is not None:
                            self.dispatch_sites.append(
                                DispatchSite(
                                    package=package,
                                    ref=_ref(ctx, node),
                                    message_class=resolved,
                                )
                            )

    @staticmethod
    def _isinstance_classes(node: ast.expr) -> list[str]:
        exprs = list(node.elts) if isinstance(node, ast.Tuple) else [node]
        names: list[str] = []
        for expr in exprs:
            name = _annotation_name(expr)
            if name is not None:
                names.append(name)
        return names

    def _category_of(self, scan: _ModuleScan, node: ast.expr) -> str | None:
        """Resolve a trace call's first argument to a category string."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return self.category_values.get(node.attr)
        if isinstance(node, ast.Name):
            imported = scan.imported_names.get(node.id)
            if imported is not None:
                return self.category_values.get(imported[1])
        return None

    # -- pass 4: registered taxonomies, resolved statically ---------------

    def _collect_taxonomies(self) -> None:
        prefix = VARIANT_REGISTRATION_PACKAGE
        for parts, ctx in self.modules.items():
            if parts[: len(prefix)] != prefix:
                continue
            scan = self._scans[parts]
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _annotation_name(node.func) == "DetectorVariant"
                ):
                    continue
                info = self._taxonomy_from_variant(ctx, scan, node)
                if info is not None:
                    self.taxonomies.append(info)

    def _taxonomy_from_variant(
        self, ctx: FileContext, scan: _ModuleScan, node: ast.Call
    ) -> TaxonomyInfo | None:
        name = model = None
        taxonomy_call: ast.Call | None = None
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                name = str(kw.value.value)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                callee = _annotation_name(inner.func)
                if callee == "VariantCapabilities":
                    for kw in inner.keywords:
                        if kw.arg == "model" and isinstance(kw.value, ast.Constant):
                            model = str(kw.value.value)
                elif callee == "MessageTaxonomy":
                    taxonomy_call = inner
        if name is None or model is None or taxonomy_call is None:
            return None
        categories: dict[str, str | None] = {}
        raw: dict[str, str] = {}
        endpoint_keys: tuple[str, ...] = ()
        edge_keys: tuple[str, ...] = ()
        declared_by_key: str | None = None
        for kw in taxonomy_call.keywords:
            if kw.arg in ("initiated", "probe_sent", "probe_received", "declared"):
                categories[kw.arg] = self._category_of(scan, kw.value)
                raw[kw.arg] = ast.unparse(kw.value)
            elif kw.arg == "endpoint_keys":
                endpoint_keys = self._string_tuple(kw.value)
            elif kw.arg == "edge_keys":
                edge_keys = self._string_tuple(kw.value)
            elif kw.arg == "declared_by_key" and isinstance(kw.value, ast.Constant):
                declared_by_key = str(kw.value.value)
        return TaxonomyInfo(
            variant=name,
            model=model,
            ref=_ref(ctx, taxonomy_call),
            categories=categories,
            raw=raw,
            endpoint_keys=endpoint_keys,
            edge_keys=edge_keys,
            declared_by_key=declared_by_key,
        )

    @staticmethod
    def _string_tuple(node: ast.expr) -> tuple[str, ...]:
        if isinstance(node, (ast.Tuple, ast.List)):
            values: list[str] = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    values.append(elt.value)
            return tuple(values)
        return ()

    def package_for_model(self, model: str) -> str | None:
        """Protocol package for a capability model (registry hook)."""
        package = MODEL_PACKAGES.get(model)
        if package is None:
            return None
        if any(self._package_of(parts) == package for parts in self.modules):
            return package
        return None

    def package_trace_sites(self, package: str) -> list[TraceSite]:
        return [site for site in self.trace_sites if site.package == package]

    def package_send_sites(self, package: str) -> list[SendSite]:
        return [site for site in self.send_sites if site.package == package]

    def dispatched_classes(self) -> set[tuple[tuple[str, ...], str]]:
        return {
            (_module_name(site.message_class.module), site.message_class.name)
            for site in self.dispatch_sites
        }

    def sent_classes(self) -> set[tuple[tuple[str, ...], str]]:
        return {
            (_module_name(site.message_class.module), site.message_class.name)
            for site in self.send_sites
            if site.message_class is not None
        }

    # -- pass 5: call graph ----------------------------------------------

    def _collect_call_graph(self) -> None:
        # 5a: register every function/method in a flow package
        for parts, ctx in self.modules.items():
            package = self._package_of(parts)
            if package is None:
                continue
            module = _module_name(parts)
            module_dotted = ".".join(module)
            scan = self._scans[parts]
            for cls_name, cls in scan.classes.items():
                for item in cls.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{module_dotted}.{cls_name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            qualname=qualname,
                            name=item.name,
                            module=parts,
                            package=package,
                            ref=_ref(ctx, item),
                            class_name=cls_name,
                        )
            for fn_name, fn in scan.functions.items():
                qualname = f"{module_dotted}.{fn_name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    name=fn_name,
                    module=parts,
                    package=package,
                    ref=_ref(ctx, fn),
                    class_name=None,
                )
        # 5b: resolve edges + direct clock primitives
        for parts, ctx in self.modules.items():
            if self._package_of(parts) is None:
                continue
            scan = self._scans[parts]
            attr_classes = self._instance_attr_classes(scan)
            for cls_name, cls in scan.classes.items():
                for item in cls.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._function_edges(
                            parts, scan, cls_name, attr_classes.get(cls_name, {}), item
                        )
            for fn in scan.functions.values():
                self._function_edges(parts, scan, None, {}, fn)

    def _instance_attr_classes(
        self, scan: _ModuleScan
    ) -> dict[str, dict[str, str]]:
        """class -> {self-attribute -> class name} from ``self.x = Cls(...)``."""
        result: dict[str, dict[str, str]] = {}
        for cls_name, cls in scan.classes.items():
            attrs: dict[str, str] = {}
            for node in ast.walk(cls):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                name = _annotation_name(node.value.func)
                if name is not None:
                    attrs[target.attr] = name
            result[cls_name] = attrs
        return result

    def _lookup_method(
        self, parts: tuple[str, ...], cls_name: str, method: str, depth: int = 0
    ) -> str | None:
        """Qualname of ``cls_name.method``, walking same-project bases."""
        if depth > 8:
            return None
        scan = self._scans.get(parts)
        if scan is None or cls_name not in scan.classes:
            # the class may live in another module: follow the import
            if scan is not None:
                imported = scan.imported_names.get(cls_name)
                if imported is not None:
                    source_module, original = imported
                    source_parts = self._parts_for_module(source_module)
                    if source_parts is not None and source_parts != parts:
                        return self._lookup_method(
                            source_parts, original, method, depth + 1
                        )
            return None
        cls = scan.classes[cls_name]
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == method
            ):
                return f"{'.'.join(_module_name(parts))}.{cls_name}.{method}"
        for base in cls.bases:
            base_name = _annotation_name(base)
            if base_name is not None:
                found = self._lookup_method(parts, base_name, method, depth + 1)
                if found is not None:
                    return found
        return None

    def _parts_for_module(self, module: tuple[str, ...]) -> tuple[str, ...] | None:
        as_file = (*module[:-1], f"{module[-1]}.py")
        if as_file in self.modules:
            return as_file
        as_package = (*module, "__init__.py")
        if as_package in self.modules:
            return as_package
        return None

    def _function_edges(
        self,
        parts: tuple[str, ...],
        scan: _ModuleScan,
        cls_name: str | None,
        attr_classes: dict[str, str],
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        module_dotted = ".".join(_module_name(parts))
        qualname = (
            f"{module_dotted}.{cls_name}.{fn.name}"
            if cls_name is not None
            else f"{module_dotted}.{fn.name}"
        )
        info = self.functions.get(qualname)
        if info is None:
            return
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if chain is None:
                continue
            self._note_clock_call(scan, info, node, chain)
            target: str | None = None
            if len(chain) == 1:
                name = chain[0]
                if name in scan.functions:
                    target = f"{module_dotted}.{name}"
                else:
                    imported = scan.imported_names.get(name)
                    if imported is not None:
                        source_module, original = imported
                        source_parts = self._parts_for_module(source_module)
                        if source_parts is not None:
                            candidate = f"{'.'.join(_module_name(source_parts))}.{original}"
                            if candidate in self.functions:
                                target = candidate
            elif chain[0] == "self" and cls_name is not None:
                if len(chain) == 2:
                    target = self._lookup_method(parts, cls_name, chain[1])
                elif len(chain) == 3 and chain[1] in attr_classes:
                    target = self._lookup_method(
                        parts, attr_classes[chain[1]], chain[2]
                    )
            elif chain[0] in scan.module_aliases and len(chain) == 2:
                alias_parts = self._parts_for_module(
                    scan.module_aliases[chain[0]]
                )
                if alias_parts is not None:
                    candidate = f"{'.'.join(_module_name(alias_parts))}.{chain[1]}"
                    if candidate in self.functions:
                        target = candidate
            if target is not None and target != qualname:
                info.edges.add(target)
            # timer callbacks referenced (not called) become edges too
            if chain[-1] == "set_timer":
                for arg in node.args:
                    arg_chain = _attribute_chain(arg)
                    if (
                        arg_chain is not None
                        and len(arg_chain) == 2
                        and arg_chain[0] == "self"
                        and cls_name is not None
                    ):
                        callback = self._lookup_method(parts, cls_name, arg_chain[1])
                        if callback is not None:
                            info.edges.add(callback)

    def _note_clock_call(
        self,
        scan: _ModuleScan,
        info: FunctionInfo,
        node: ast.Call,
        chain: list[str],
    ) -> None:
        root, rest = chain[0], chain[1:]
        root_module = scan.module_aliases.get(root)
        if (
            root_module is not None
            and root_module[0] == "time"
            and rest
            and rest[-1] in WALL_CLOCK_TIME_FUNCTIONS
        ):
            info.clock_calls.append((f"time.{rest[-1]}()", node.lineno))
            return
        if (
            root_module is not None
            and root_module[0] == "datetime"
            and len(rest) == 2
            and rest[0] in {"datetime", "date"}
            and rest[1] in WALL_CLOCK_DATETIME_METHODS
        ):
            info.clock_calls.append((f"datetime.{rest[0]}.{rest[1]}()", node.lineno))
            return
        imported = scan.imported_names.get(root)
        if imported is not None and not rest:
            source_module, original = imported
            if source_module == ("time",) and original in WALL_CLOCK_TIME_FUNCTIONS:
                info.clock_calls.append((f"time.{original}()", node.lineno))
            elif (
                source_module == ("datetime",)
                and original in {"datetime", "date"}
            ):
                pass  # bare datetime(...) constructor is explicit, not a clock read
        elif imported is not None and len(rest) == 1:
            source_module, original = imported
            if (
                source_module == ("datetime",)
                and original in {"datetime", "date"}
                and rest[0] in WALL_CLOCK_DATETIME_METHODS
            ):
                info.clock_calls.append(
                    (f"datetime.{original}.{rest[0]}()", node.lineno)
                )

    #: handler-name convention shared with RPX006
    _HANDLER_PREFIXES = ("on_", "_on_")

    def handler_entry_points(self) -> list[FunctionInfo]:
        """Message-handler entry points of the flow packages."""
        entries = []
        for info in self.functions.values():
            if info.name == "on_message" or info.name.startswith(self._HANDLER_PREFIXES):
                entries.append(info)
        return sorted(entries, key=lambda info: (info.ref.path, info.ref.line))

    def clock_reachability(
        self, entry: FunctionInfo
    ) -> list[tuple[FunctionInfo, tuple[str, int], tuple[str, ...]]]:
        """Wall-clock primitives reachable from ``entry``.

        Returns ``(function, (primitive, line), path)`` triples where
        ``path`` is the qualname chain from the entry to the function.
        BFS over the resolved call edges; first (shortest) path wins.
        """
        found: list[tuple[FunctionInfo, tuple[str, int], tuple[str, ...]]] = []
        seen = {entry.qualname}
        queue: deque[tuple[str, tuple[str, ...]]] = deque(
            [(entry.qualname, (entry.qualname,))]
        )
        while queue:
            qualname, path = queue.popleft()
            info = self.functions.get(qualname)
            if info is None:
                continue
            for primitive in info.clock_calls:
                found.append((info, primitive, path))
            for target in sorted(info.edges):
                if target not in seen:
                    seen.add(target)
                    queue.append((target, (*path, target)))
        return found

    # -- pass 6: module-level mutable state --------------------------------

    def _collect_module_state(self) -> None:
        candidates: dict[tuple[tuple[str, ...], str], ModuleState] = {}
        for parts, ctx in self.modules.items():
            package = self._package_of(parts)
            if package is None:
                continue
            module = _module_name(parts)
            for node in ctx.tree.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                kind = self._mutable_kind(value)
                if kind is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and not target.id.startswith("__")
                    ):
                        candidates[(module, target.id)] = ModuleState(
                            package=package,
                            module=parts,
                            name=target.id,
                            ref=_ref(ctx, node),
                            kind=kind,
                        )
        if not candidates:
            return
        # a binding only counts as *shared* state once some function body
        # reads it — in its own module or through an import elsewhere.
        for parts, ctx in self.modules.items():
            scan = self._scans[parts]
            module = _module_name(parts)
            for fn_node in ast.walk(ctx.tree):
                if not isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for node in ast.walk(fn_node):
                    if not (
                        isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                    ):
                        continue
                    if (module, node.id) in candidates:
                        self.state_reads.add((module, node.id))
                    imported = scan.imported_names.get(node.id)
                    if imported is not None and imported in candidates:
                        self.state_reads.add(imported)
        self.module_state = [
            state
            for key, state in sorted(candidates.items())
            if key in self.state_reads
        ]

    @staticmethod
    def _mutable_kind(node: ast.expr) -> str | None:
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            name = _annotation_name(node.func)
            if name in MUTABLE_FACTORIES:
                return name
        return None
