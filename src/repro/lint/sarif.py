"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning ingests: CI uploads the document produced here
and findings surface as annotations on the PR diff.  One ``run`` per
invocation; the tool's ``rules`` array carries every RPX rule (plus the
synthetic RPX000 parse-failure rule) so result ``ruleIndex`` references
stay valid whether or not a rule fired.

``jsonschema`` is not a dependency of this project, so
:func:`validate_sarif` hand-checks the structural subset we emit against
the 2.1.0 spec — the same pattern :mod:`repro.obs.export` uses for the
Chrome trace format.  The test suite runs it over real output.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ALL_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"

#: synthetic rule for files that fail to read or parse (no Rule class).
_PARSE_RULE: dict[str, Any] = {
    "id": "RPX000",
    "name": "ParseFailure",
    "shortDescription": {"text": "file could not be read or parsed"},
    "fullDescription": {
        "text": (
            "The lint engine reports unreadable or syntactically invalid "
            "files as findings instead of aborting the run."
        )
    },
    "defaultConfiguration": {"level": "error"},
}


def _rule_descriptors() -> list[dict[str, Any]]:
    descriptors = [_PARSE_RULE]
    for rule in ALL_RULES:
        descriptors.append(
            {
                "id": rule.rule_id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.explanation},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _artifact_uri(path: str) -> str:
    """A SARIF-friendly relative URI: forward slashes, no leading ./"""
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def sarif_payload(diagnostics: list[Diagnostic]) -> dict[str, Any]:
    """The complete SARIF 2.1.0 document for one lint invocation."""
    rules = _rule_descriptors()
    index_by_id = {descriptor["id"]: i for i, descriptor in enumerate(rules)}
    results: list[dict[str, Any]] = []
    for diagnostic in sorted(diagnostics):
        results.append(
            {
                "ruleId": diagnostic.rule,
                "ruleIndex": index_by_id.get(diagnostic.rule, -1),
                "level": "error",
                "message": {"text": diagnostic.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _artifact_uri(diagnostic.path),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": diagnostic.line,
                                "startColumn": diagnostic.col,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    """Byte-stable SARIF text (sorted keys, trailing newline)."""
    return json.dumps(sarif_payload(diagnostics), indent=2, sort_keys=True)


def validate_sarif(document: Any) -> list[str]:
    """Structural 2.1.0 conformance errors for the subset we emit.

    Empty list == valid.  Checks the invariants GitHub code scanning
    actually rejects on: version/schema, the runs/tool/driver skeleton,
    rule descriptor shape, result message/location shape, and that every
    ``ruleIndex`` points at the descriptor whose id the result names.
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        return [*errors, "runs must be a non-empty array"]
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            errors.append(f"{where}.tool.driver.name missing")
            continue
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            errors.append(f"{where}.tool.driver.rules is not an array")
            rules = []
        rule_ids: list[str] = []
        for i, descriptor in enumerate(rules):
            if not isinstance(descriptor, dict) or not isinstance(
                descriptor.get("id"), str
            ):
                errors.append(f"{where}.tool.driver.rules[{i}].id missing")
                rule_ids.append("")
                continue
            rule_ids.append(descriptor["id"])
            short = descriptor.get("shortDescription")
            if not (isinstance(short, dict) and isinstance(short.get("text"), str)):
                errors.append(
                    f"{where}.tool.driver.rules[{i}].shortDescription.text missing"
                )
        results = run.get("results")
        if not isinstance(results, list):
            errors.append(f"{where}.results must be an array")
            continue
        for i, result in enumerate(results):
            loc = f"{where}.results[{i}]"
            if not isinstance(result, dict):
                errors.append(f"{loc} is not an object")
                continue
            message = result.get("message")
            if not (isinstance(message, dict) and isinstance(message.get("text"), str)):
                errors.append(f"{loc}.message.text missing")
            rule_id = result.get("ruleId")
            if not isinstance(rule_id, str):
                errors.append(f"{loc}.ruleId missing")
            rule_index = result.get("ruleIndex")
            if isinstance(rule_index, int) and rule_index >= 0:
                if rule_index >= len(rule_ids):
                    errors.append(f"{loc}.ruleIndex {rule_index} out of range")
                elif isinstance(rule_id, str) and rule_ids[rule_index] != rule_id:
                    errors.append(
                        f"{loc}.ruleIndex {rule_index} names "
                        f"{rule_ids[rule_index]!r}, not {rule_id!r}"
                    )
            for j, location in enumerate(result.get("locations", [])):
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    errors.append(f"{loc}.locations[{j}].physicalLocation missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not (
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str)
                ):
                    errors.append(
                        f"{loc}.locations[{j}]...artifactLocation.uri missing"
                    )
                region = physical.get("region")
                if isinstance(region, dict):
                    start = region.get("startLine")
                    if not (isinstance(start, int) and start >= 1):
                        errors.append(
                            f"{loc}.locations[{j}]...region.startLine must be >= 1"
                        )
    return errors
