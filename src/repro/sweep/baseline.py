"""The quick benchmark tier: throughput baselines + sweep shape hashes.

``repro bench record`` writes ``BENCH_baseline.json``: events/sec for
three engine micro-benchmarks (mirroring
``benchmarks/bench_engine_throughput.py``) and a SHA-256 of the canonical
quick-grid document for every shipped sweep grid.  ``repro bench check``
re-measures and fails when

* any micro-benchmark's events/sec falls more than ``threshold`` (default
  25%) below its recorded baseline -- a hot-path performance regression;
* any grid's shape hash differs -- a *behavioural* change to experiment
  results (which must be deliberate: re-record with ``repro bench record``
  or, in CI, push a commit whose message contains ``[bench-reset]``).

Throughput numbers are wall-clock and therefore machine-dependent; the
committed baseline is only compared against runs on the same class of
machine (CI re-records on reset rather than trusting a developer laptop).
Shape hashes are deterministic everywhere -- see :mod:`repro.sweep.merge`.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.sweep.grids import GRIDS, build_grid
from repro.sweep.merge import canonical_json, merge_results
from repro.sweep.runner import run_sweep

SCHEMA = "repro.bench/1"

#: Micro-benchmark repeat count; the best (max ev/s) of the repeats is
#: used, which is the standard way to damp scheduler noise on CI runners.
REPEATS = 5


def _bench_event_loop() -> tuple[int, float]:
    """Schedule-and-run 10k trivial events (engine core only)."""
    from repro.sim.simulator import Simulator

    simulator = Simulator(seed=0, trace=False)
    for i in range(10_000):
        simulator.schedule(float(i % 97) * 0.01, lambda: None)
    started = time.perf_counter()
    simulator.run()
    return simulator.events_executed, time.perf_counter() - started


def _bench_network() -> tuple[int, float]:
    """Send 5k messages through the FIFO network."""
    from repro.sim.network import Network
    from repro.sim.process import Process
    from repro.sim.simulator import Simulator

    class Sink(Process):
        def on_message(self, sender: object, message: object) -> None:
            pass

    simulator = Simulator(seed=0, trace=False)
    network = Network(simulator)
    source = Sink(0)
    network.register(source)
    network.register(Sink(1))
    for i in range(5_000):
        source.send(1, i)
    started = time.perf_counter()
    simulator.run()
    return simulator.events_executed, time.perf_counter() - started


def _bench_cycle64() -> tuple[int, float]:
    """Detect a 64-cycle deadlock end to end (tracing disabled)."""
    from repro.core.registry import get_variant
    from repro.workloads.scenarios import schedule_cycle

    system = get_variant("basic").build(n_vertices=64, seed=0, trace=False)
    schedule_cycle(system, list(range(64)), gap=0.1)
    started = time.perf_counter()
    system.run_to_quiescence()
    elapsed = time.perf_counter() - started
    assert system.declarations, "64-cycle must be detected"
    return system.simulator.events_executed, elapsed


def _bench_monitor_stream() -> tuple[int, float]:
    """Detect a 64-cycle deadlock with the streaming span engine attached.

    The ``repro monitor`` configuration: ``trace=False`` (nothing
    buffered) plus a category-scoped subscription folding spans online.
    Ratcheting this next to ``engine.cycle64`` keeps the telemetry
    layer's overhead on the detection hot path honest.
    """
    from repro.core.registry import get_variant
    from repro.obs.spans import BASIC_SPAN_SCHEMA
    from repro.obs.stream import StreamingSpanEngine
    from repro.workloads.scenarios import schedule_cycle

    system = get_variant("basic").build(n_vertices=64, seed=0, trace=False)
    engine = StreamingSpanEngine(BASIC_SPAN_SCHEMA, n_vertices=64)
    engine.attach(system.simulator.tracer)
    schedule_cycle(system, list(range(64)), gap=0.1)
    started = time.perf_counter()
    system.run_to_quiescence()
    elapsed = time.perf_counter() - started
    engine.finish()
    assert engine.emitted, "the monitored 64-cycle must settle spans"
    return system.simulator.events_executed, elapsed


MICRO_BENCHMARKS: dict[str, Callable[[], tuple[int, float]]] = {
    "engine.event_loop": _bench_event_loop,
    "engine.network": _bench_network,
    "engine.cycle64": _bench_cycle64,
    "obs.monitor_stream": _bench_monitor_stream,
}


def measure_throughput(repeats: int = REPEATS) -> dict[str, float]:
    """Best-of-``repeats`` events/sec for each micro-benchmark."""
    throughput: dict[str, float] = {}
    for name, bench in MICRO_BENCHMARKS.items():
        best = 0.0
        for _ in range(repeats):
            events, elapsed = bench()
            if elapsed > 0:
                best = max(best, events / elapsed)
        throughput[name] = round(best, 1)
    return throughput


def shape_hash(grid_name: str, workers: int = 1) -> str:
    """SHA-256 of the canonical quick-grid document for one grid."""
    grid = build_grid(grid_name, quick=True)
    document = canonical_json(merge_results(grid.name, run_sweep(grid.cells, workers)))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def measure_shapes(grids: tuple[str, ...] = GRIDS) -> dict[str, str]:
    return {name: shape_hash(name) for name in grids}


def record(path: Path, repeats: int = REPEATS) -> dict[str, Any]:
    """Measure everything and write the baseline document to ``path``."""
    document = {
        "schema": SCHEMA,
        "throughput": measure_throughput(repeats),
        "shapes": measure_shapes(),
    }
    path.write_text(canonical_json(document), encoding="utf-8")
    return document


class BenchRegression(Exception):
    """Raised by :func:`check` when the quick tier fails."""


def check(
    path: Path, threshold: float = 0.25, repeats: int = REPEATS
) -> list[str]:
    """Compare a fresh measurement against the committed baseline.

    Returns human-readable report lines; raises :class:`BenchRegression`
    (after measuring everything) if any throughput ratio drops below
    ``1 - threshold`` or any shape hash changed.
    """
    baseline = json.loads(path.read_text(encoding="utf-8"))
    if baseline.get("schema") != SCHEMA:
        raise BenchRegression(f"unrecognised baseline schema in {path}")
    lines: list[str] = []
    failures: list[str] = []

    current = measure_throughput(repeats)
    for name, recorded in sorted(baseline["throughput"].items()):
        measured = current.get(name)
        if measured is None:
            failures.append(f"missing micro-benchmark {name!r}")
            continue
        ratio = measured / recorded if recorded else float("inf")
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        lines.append(
            f"throughput {name}: {measured:>12.1f} ev/s "
            f"(baseline {recorded:.1f}, x{ratio:.2f}) {verdict}"
        )
        if verdict != "ok":
            failures.append(
                f"{name} regressed to x{ratio:.2f} of baseline "
                f"(floor x{1 - threshold:.2f})"
            )

    shapes = measure_shapes(tuple(sorted(baseline["shapes"])))
    for name, recorded_hash in sorted(baseline["shapes"].items()):
        measured_hash = shapes[name]
        match = measured_hash == recorded_hash
        lines.append(
            f"shape {name}: {measured_hash[:16]}... "
            f"{'ok' if match else 'CHANGED (was ' + recorded_hash[:16] + '...)'}"
        )
        if not match:
            failures.append(
                f"grid {name!r} shape changed -- if intentional, re-record the "
                "baseline (repro bench record) or push with [bench-reset]"
            )

    if failures:
        raise BenchRegression("; ".join(failures))
    return lines
