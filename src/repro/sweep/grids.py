"""The shipped sweep grids: E1-E10 re-expressed declaratively.

Each grid enumerates the same parameter axes its experiment module sweeps
imperatively -- sizes, seeds, delay models, the section 4.3 initiation
delay ``T`` -- imported from that module's constants so the numbers live
in exactly one place.  The mapping of grid axes onto the paper's
parameters (initiation rule, probe tag ``(i, n)``, delay ``T``) is
documented in DESIGN.md.

Layering note: this module imports ``repro.experiments`` (driver -> harness
is the allowed direction under RPX004); the experiment modules never import
``repro.sweep``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.registry import overlay_variants, variants_for_scenario
from repro.errors import ConfigurationError
from repro.experiments import (
    e1_completeness,
    e2_soundness,
    e3_messages,
    e4_state,
    e5_t_tradeoff,
    e6_wfgd,
    e7_q_optimization,
    e8_baselines,
    e9_ensembles,
    e10_scheduling,
)
from repro.sweep.grid import Params, SweepCell, SweepGrid, make_params


def _e1(quick: bool) -> Iterable[SweepCell]:
    sizes = e1_completeness.QUICK_CYCLE_SIZES if quick else e1_completeness.CYCLE_SIZES
    seeds = e1_completeness.QUICK_CYCLE_SEEDS if quick else e1_completeness.CYCLE_SEEDS
    for k in sizes:
        for seed in seeds:
            yield SweepCell("e1", "cycle", n=k, seed=seed, delay="exp:1.0")
    random_seeds = (
        e1_completeness.QUICK_RANDOM_SEEDS if quick else e1_completeness.RANDOM_SEEDS
    )
    for seed in random_seeds:
        yield SweepCell(
            "e1",
            "random",
            n=e1_completeness.RANDOM_N_VERTICES,
            seed=seed,
            delay="exp:1.0",
            duration=e1_completeness.RANDOM_DURATION,
            params=make_params(service_delay=0.5, mean_think=2.0, max_targets=2),
        )


def _e2(quick: bool) -> Iterable[SweepCell]:
    seeds = e2_soundness.QUICK_SEEDS if quick else e2_soundness.SEEDS
    for seed in seeds:
        yield SweepCell(
            "e2",
            "random",
            n=e2_soundness.CHURN_N_VERTICES,
            seed=seed,
            delay="uniform:0.1:3.0",
            duration=e2_soundness.CHURN_DURATION,
            params=make_params(
                service_delay=0.2, mean_think=1.0, max_targets=1, lenient=1
            ),
        )
        yield SweepCell(
            "e2",
            "random",
            n=e2_soundness.MIXED_N_VERTICES,
            seed=seed,
            delay="exp:1.5",
            duration=e2_soundness.MIXED_DURATION,
            params=make_params(
                service_delay=0.5, mean_think=1.5, max_targets=3, lenient=1
            ),
        )
        yield SweepCell(
            "e2",
            "chain-waves",
            n=e2_soundness.NEAR_CYCLE_N_VERTICES,
            seed=seed,
            delay="uniform:0.5:2.0",
            params=make_params(
                service_delay=0.3,
                waves=e2_soundness.NEAR_CYCLE_WAVES,
                period=e2_soundness.NEAR_CYCLE_PERIOD,
                lenient=1,
            ),
        )


def _e3(quick: bool) -> Iterable[SweepCell]:
    sizes = e3_messages.QUICK_CYCLE_SIZES if quick else e3_messages.CYCLE_SIZES
    for k in sizes:
        yield SweepCell("e3", "cycle", n=k, seed=0)
    dense = e3_messages.QUICK_DENSE_CONFIGS if quick else e3_messages.DENSE_CONFIGS
    for n, fan_out in dense:
        yield SweepCell("e3", "dense", n=n, seed=0, params=make_params(fan_out=fan_out))


def _e4(quick: bool) -> Iterable[SweepCell]:
    configs = e4_state.QUICK_CONFIGS if quick else e4_state.CONFIGS
    for n, rounds in configs:
        yield SweepCell("e4", "cycle", n=n, seed=0, params=make_params(rounds=rounds))


def _e5(quick: bool) -> Iterable[SweepCell]:
    sweep = e5_t_tradeoff.QUICK_T_SWEEP if quick else e5_t_tradeoff.T_SWEEP
    seeds = e5_t_tradeoff.QUICK_SEEDS if quick else e5_t_tradeoff.SEEDS
    for timeout in sweep:
        for seed in seeds:
            yield SweepCell(
                "e5",
                "random",
                n=e5_t_tradeoff.N_VERTICES,
                seed=seed,
                delay="exp:1.0",
                timeout_t=timeout,
                duration=e5_t_tradeoff.DURATION,
                params=make_params(service_delay=0.5, mean_think=2.0, max_targets=2),
            )


def _e6(quick: bool) -> Iterable[SweepCell]:
    configs = e6_wfgd.QUICK_CONFIGS if quick else e6_wfgd.CONFIGS
    for cycle_size, tails in configs:
        params: Params = tuple(
            sorted([("cycle", float(cycle_size)), ("wfgd", 1.0)]
                   + [("tail", float(length)) for length in tails])
        )
        yield SweepCell(
            "e6",
            "cycle-with-tails",
            n=cycle_size + sum(tails),
            seed=0,
            params=params,
        )


def _e7(quick: bool) -> Iterable[SweepCell]:
    configs = e7_q_optimization.QUICK_CONFIGS if quick else e7_q_optimization.CONFIGS
    for n_sites, extra_local in configs:
        for optimized in (0, 1):
            yield SweepCell(
                "e7",
                "ddb-ring",
                n=n_sites,
                seed=0,
                params=make_params(extra_local=extra_local, optimized=optimized),
            )


def _e8(quick: bool) -> Iterable[SweepCell]:
    seeds = e8_baselines.QUICK_SEEDS if quick else e8_baselines.SEEDS
    # Detector 0 is the probe computation; 1.. index the registered
    # overlay variants in registration order (see overlay_variants()).
    for detector in range(1 + len(overlay_variants())):
        for seed in seeds:
            yield SweepCell(
                "e8",
                "baseline-random",
                n=e8_baselines.RANDOM_N_VERTICES,
                seed=seed,
                delay="exp:1.0",
                duration=e8_baselines.RANDOM_DURATION,
                params=make_params(detector=detector, lenient=1),
            )
            yield SweepCell(
                "e8",
                "baseline-ping-pong",
                n=e8_baselines.PING_PONG_N_VERTICES,
                seed=seed,
                params=make_params(detector=detector, lenient=1),
            )


def _e9(quick: bool) -> Iterable[SweepCell]:
    n = e9_ensembles.QUICK_ENSEMBLE_N if quick else e9_ensembles.ENSEMBLE_N
    seeds = e9_ensembles.QUICK_SEEDS if quick else e9_ensembles.SEEDS
    loads = e9_ensembles.QUICK_LOAD_FACTORS if quick else e9_ensembles.LOAD_FACTORS
    for load in loads:
        for seed in seeds:
            yield SweepCell(
                "e9",
                "er",
                n=n,
                seed=seed,
                delay="exp:1.0",
                params=make_params(p=e9_ensembles.er_probability(load, n)),
            )
    attachments = (
        e9_ensembles.QUICK_BA_ATTACHMENTS if quick else e9_ensembles.BA_ATTACHMENTS
    )
    for m in attachments:
        for seed in seeds:
            yield SweepCell(
                "e9", "ba", n=n, seed=seed, delay="exp:1.0", params=make_params(m=m)
            )
    ddb_loads = e9_ensembles.QUICK_DDB_LOADS if quick else e9_ensembles.DDB_LOADS
    ddb_seeds = e9_ensembles.QUICK_DDB_SEEDS if quick else e9_ensembles.DDB_SEEDS
    for load in ddb_loads:
        for seed in ddb_seeds:
            yield SweepCell(
                "e9",
                "ddb-hot",
                n=e9_ensembles.DDB_N_SITES,
                seed=seed,
                duration=e9_ensembles.DDB_DURATION,
                params=make_params(load=load, resolve=1),
            )


def _e10(quick: bool) -> Iterable[SweepCell]:
    seeds = e10_scheduling.QUICK_SEEDS if quick else e10_scheduling.SEEDS
    for policy in e10_scheduling.policy_axis(quick):
        for seed in seeds:
            yield SweepCell(
                "e10",
                "bursty",
                n=e10_scheduling.N_VERTICES,
                seed=seed,
                policy=policy,
            )


_BUILDERS: dict[str, tuple[str, Callable[[bool], Iterable[SweepCell]]]] = {
    "e1": ("Theorem 1 completeness: cycles x seeds + random dynamics", _e1),
    "e2": ("Theorem 2 soundness: churn / mixed / near-cycle families", _e2),
    "e3": ("section 4.3 message bound: cycles + dense graphs", _e3),
    "e4": ("section 4.3 state bound: repeated initiation rounds", _e4),
    "e5": ("section 4.3 T tradeoff: (T x seed) random workloads", _e5),
    "e6": ("section 5 WFGD: cycles with attached tails", _e6),
    "e7": ("section 6.7 Q-initiation vs naive, DDB rings", _e7),
    "e8": ("probe computation vs 1980-era baselines", _e8),
    "e9": ("deadlock probability over workload ensembles", _e9),
    "e10": ("static-T initiation vs the adaptive controller", _e10),
}

#: Grid names accepted by ``repro sweep --grid`` (plus ``all``).
GRIDS: tuple[str, ...] = tuple(_BUILDERS)


def build_grid(name: str, quick: bool = False) -> SweepGrid:
    """Materialise one named grid (``e1`` .. ``e10``)."""
    try:
        description, builder = _BUILDERS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown grid {name!r}; choose from {', '.join(GRIDS)}"
        ) from None
    cells = tuple(builder(quick))
    for cell in cells:
        if not variants_for_scenario(cell.scenario):
            raise ConfigurationError(
                f"grid {name!r} cell {cell.cell_id} uses scenario "
                f"{cell.scenario!r}, which no registered detector variant "
                f"supports"
            )
    return SweepGrid(name=name.lower(), description=description, cells=cells)
