"""Declarative sweep cells.

A :class:`SweepCell` names one simulation: a scenario family, a topology
size, a seed, a delay model, and the paper's tunables (the initiation
delay ``T`` of section 4.3, a workload duration, plus scenario-specific
extras).  Cells are frozen, slotted, hashable, and picklable, so they can
cross a ``ProcessPoolExecutor`` boundary and key result dictionaries.

The delay model is encoded as a compact string (``"exp:1.0"``,
``"uniform:0.1:3.0"``, ``"fixed:1.0"``, ``"none"``) rather than an object:
strings survive pickling trivially, read well in cell ids, and keep the
cell a pure value.  :func:`delay_model_from_spec` materialises the object
inside the worker that runs the cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.sim.network import DelayModel, ExponentialDelay, FixedDelay, UniformDelay
from repro.workloads.spec import Params, WorkloadSpec, make_params

__all__ = [
    "Params",
    "SweepCell",
    "SweepGrid",
    "delay_model_from_spec",
    "make_params",
]


def delay_model_from_spec(spec: str) -> DelayModel | None:
    """Materialise the delay model named by a cell's ``delay`` spec."""
    if spec == "none":
        return None
    kind, _, rest = spec.partition(":")
    try:
        if kind == "exp":
            return ExponentialDelay(mean=float(rest))
        if kind == "fixed":
            return FixedDelay(float(rest))
        if kind == "uniform":
            low, _, high = rest.partition(":")
            return UniformDelay(float(low), float(high))
    except ValueError as error:
        raise ConfigurationError(f"malformed delay spec {spec!r}: {error}") from error
    raise ConfigurationError(f"unknown delay spec {spec!r}")


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One point of a sweep grid; a pure, picklable value.

    ``timeout_t`` is the section 4.3 initiation delay: ``None`` selects the
    batch-level immediate rule, any float selects ``DelayedInitiation(T)``
    (``0.0`` is the per-edge left end of the T sweep, not the same rule as
    ``None`` -- see E5).

    ``policy`` subsumes ``timeout_t``: a :mod:`repro.core.scheduling`
    policy-id string (``"delayed/T=2"``, ``"adaptive"``,
    ``"adaptive/margin=4"``) selects any registered scheduling policy, the
    same way ``delay`` encodes the delay model -- a compact string that
    pickles trivially and reads well in cell ids.  A cell sets at most one
    of the two (:exc:`~repro.errors.ConfigurationError` otherwise, at run
    time); ``timeout_t`` survives as the legacy spelling so every
    committed grid's ``cell_id`` stays byte-identical.
    """

    grid: str
    scenario: str
    n: int
    seed: int
    delay: str = "none"
    timeout_t: float | None = None
    duration: float = 0.0
    params: Params = ()
    policy: str | None = None

    @property
    def cell_id(self) -> str:
        """Deterministic, human-readable identity used for sorting/merging."""
        timeout = "immediate" if self.timeout_t is None else f"{self.timeout_t:g}"
        parts = [
            self.grid,
            self.scenario,
            f"n={self.n}",
            f"seed={self.seed}",
            f"delay={self.delay}",
            f"T={timeout}",
        ]
        if self.policy is not None:
            parts.append(f"policy={self.policy}")
        if self.duration:
            parts.append(f"dur={self.duration:g}")
        parts.extend(f"{name}={value:g}" for name, value in self.params)
        return "/".join(parts)

    def param(self, name: str, default: float | None = None) -> float:
        """Look up one extra parameter; raise if absent and no default."""
        for key, value in self.params:
            if key == name:
                return value
        if default is None:
            raise ConfigurationError(f"cell {self.cell_id} lacks parameter {name!r}")
        return default

    def param_list(self, name: str) -> list[float]:
        """All values recorded under ``name`` (e.g. repeated ``tail``)."""
        return [value for key, value in self.params if key == name]

    def with_seed(self, seed: int) -> SweepCell:
        """A copy of this cell under another seed (grids sweep seeds this way)."""
        return replace(self, seed=seed)

    def workload_spec(self) -> WorkloadSpec:
        """This cell's workload as a registry spec.

        The scenario string doubles as the family name; the cell's
        topology size, seed, duration, and extra params carry over
        verbatim, so a cell and its spec stay two views of one value.
        (Cells whose scenario is a runner special-case -- ``ddb-ring``,
        the ``baseline-*`` lanes -- never reach family resolution.)
        """
        return WorkloadSpec(
            family=self.scenario,
            n=self.n,
            seed=self.seed,
            duration=self.duration,
            params=self.params,
        )


@dataclass(frozen=True, slots=True)
class SweepGrid:
    """A named, ordered collection of cells (one experiment's sweep)."""

    name: str
    description: str
    cells: tuple[SweepCell, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.cells)
