"""Execute sweep cells, serially or across worker processes.

Each cell builds its *own* system in its *own* simulator (seeded from the
cell), runs it to quiescence, and reduces the run to a small dict of
deterministic, virtual-time-derived measurements.  Because a cell's result
is a pure function of the cell, the fan-out strategy -- inline loop or
``ProcessPoolExecutor`` -- cannot affect the merged document.

Failures are data, not crashes: any exception raised while running a cell
is caught *inside the worker* and returned as a ``status: "error"`` cell,
so one bad configuration never aborts the rest of the sweep.

Wall time is measured here with ``time.perf_counter`` (``repro.sweep`` is
a driver package, outside lint rule RPX002's virtual-time scope) but is
reported separately from the deterministic fields -- see
:mod:`repro.sweep.merge`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING, Any

from repro._ids import VertexId
from repro.analysis.stats import mean
from repro.basic.initiation import DelayedInitiation, ImmediateInitiation, ManualInitiation
from repro.core.registry import get_variant, overlay_variants
from repro.core.scheduling import parse_policy_spec
from repro.errors import ConfigurationError
from repro.sweep.grid import SweepCell, delay_model_from_spec
from repro.workloads.provision import attach_policy_feedback, build_initiation
from repro.workloads.spec import WorkloadFamily, get_family

if TYPE_CHECKING:
    from repro.basic.system import BasicSystem

#: Event budget for every cell; generous for all shipped grids.
MAX_EVENTS = 2_000_000

CellResult = dict[str, Any]


def _initiation(cell: SweepCell) -> Any:
    if cell.policy is not None:
        if cell.timeout_t is not None:
            raise ConfigurationError(
                f"cell {cell.cell_id} sets both timeout_t and policy; "
                "timeout_t is the legacy spelling of policy='delayed/T=...'"
            )
        return build_initiation(parse_policy_spec(cell.policy), "basic")
    if cell.timeout_t is None:
        return ImmediateInitiation()
    return DelayedInitiation(cell.timeout_t)


def _basic_system(cell: SweepCell, **overrides: Any) -> BasicSystem:
    kwargs: dict[str, Any] = {
        "n_vertices": cell.n,
        "seed": cell.seed,
        "delay_model": delay_model_from_spec(cell.delay),
        "service_delay": cell.param("service_delay", 1.0),
        "initiation": _initiation(cell),
        "strict": not cell.param("lenient", 0.0),
    }
    kwargs.update(overrides)
    system: BasicSystem = get_variant("basic").build(**kwargs)
    return system


def _collect_basic(cell: SweepCell, system: BasicSystem) -> CellResult:
    histogram = system.metrics.histograms.get("basic.detection.latency")
    latencies = list(histogram.values) if histogram is not None else []
    return {
        "cell_id": cell.cell_id,
        "status": "ok",
        "outcome": "deadlock" if system.declarations else "clean",
        "events": system.simulator.events_executed,
        "quiesced_at": system.simulator.now,
        "declarations": len(system.declarations),
        "unsound": len(system.soundness_violations),
        "probes": system.metrics.counter_value("basic.probes.sent"),
        "computations": system.metrics.counter_value("basic.computations.initiated"),
        "max_probes_per_computation": max(
            system.probes_per_computation.values(), default=0
        ),
        "detection_latency_mean": mean(latencies) if latencies else None,
        "extra": {},
    }


def _run_basic_family(cell: SweepCell, family: WorkloadFamily) -> CellResult:
    """Any basic-model workload family: schedule via the registry, then
    apply the cell's initiation/WFGD/rounds machinery around the run."""
    wants_wfgd = bool(cell.param("wfgd", 0.0))
    manual = cell.scenario == "dense" or bool(cell.param("rounds", 0.0))
    initiation = ManualInitiation() if manual else _initiation(cell)
    system = _basic_system(cell, wfgd_on_declare=wants_wfgd, initiation=initiation)
    attach_policy_feedback(system, initiation, n_vertices=cell.n)
    spec = cell.workload_spec()
    handle = family.schedule(spec, system)
    system.run_to_quiescence(max_events=MAX_EVENTS)
    rounds = int(cell.param("rounds", 0.0))
    if cell.scenario == "dense":
        system.simulator.schedule(1.0, system.vertex(0).initiate_probe_computation)
        system.run_to_quiescence(max_events=MAX_EVENTS)
    elif rounds:
        for round_index in range(rounds):
            for i in range(cell.n):
                system.simulator.schedule(
                    10.0 * (round_index + 1) + 0.01 * i,
                    system.vertex(i).initiate_probe_computation,
                )
        system.run_to_quiescence(max_events=MAX_EVENTS)
    result = _collect_basic(cell, system)
    if rounds:
        result["extra"]["max_tracked_records"] = max(
            vertex.engine.tracked_computations for vertex in system.vertices.values()
        )
    if wants_wfgd:
        result["extra"].update(_wfgd_extra(system, cell.n))
    if family.collect is not None:
        result["extra"].update(family.collect(spec, system, handle))
    return result


def _wfgd_extra(system: BasicSystem, n: int) -> dict[str, int]:
    blocked = [
        v for v in range(n) if system.oracle.permanent_black_edges_from(VertexId(v))
    ]
    informed = exact = 0
    for v in blocked:
        vertex = system.vertex(v)
        informed += vertex.deadlocked
        expected = system.oracle.permanent_black_edges_from(VertexId(v))
        exact += vertex.wfgd.paths == expected
    return {
        "deadlocked_vertices": len(blocked),
        "informed_vertices": informed,
        "exact_path_sets": exact,
        "wfgd_messages": system.metrics.counter_value("basic.wfgd.sent"),
    }


def _run_ddb_family(cell: SweepCell, family: WorkloadFamily) -> CellResult:
    """A DDB-model workload family (``ddb-mix`` / ``ddb-hot``): the family
    builds its own system (sites + resource catalogue + resolution)."""
    assert family.build is not None  # every registered DDB family has one
    spec = cell.workload_spec()
    initiation = (
        None
        if cell.policy is None
        else build_initiation(parse_policy_spec(cell.policy), "ddb")
    )
    system = family.build(
        spec,
        strict=False,
        delay_model=delay_model_from_spec(cell.delay),
        **({"initiation": initiation} if initiation is not None else {}),
    )
    if initiation is not None:
        attach_policy_feedback(system, initiation)
    handle = family.schedule(spec, system)
    system.run_to_quiescence(max_events=MAX_EVENTS)
    complete, _ = system.completeness_report()
    extra: dict[str, Any] = {"complete": int(complete)}
    if family.collect is not None:
        extra.update(family.collect(spec, system, handle))
    return {
        "cell_id": cell.cell_id,
        "status": "ok",
        "outcome": "deadlock" if system.declarations else "clean",
        "events": system.simulator.events_executed,
        "quiesced_at": system.simulator.now,
        "declarations": len(system.declarations),
        "unsound": len(system.soundness_violations),
        "probes": system.metrics.counter_value("ddb.probes.sent"),
        "computations": system.metrics.counter_value("ddb.computations.initiated"),
        "max_probes_per_computation": 0,
        "detection_latency_mean": None,
        "extra": extra,
    }


def _run_ddb_ring(cell: SweepCell) -> CellResult:
    from repro.experiments.e7_q_optimization import ring_system

    system = ring_system(
        n_sites=cell.n,
        extra_local=int(cell.param("extra_local")),
        optimized=bool(cell.param("optimized")),
        seed=cell.seed,
    )
    system.run_to_quiescence(max_events=MAX_EVENTS)
    complete, _ = system.completeness_report()
    return {
        "cell_id": cell.cell_id,
        "status": "ok",
        "outcome": "deadlock" if system.declarations else "clean",
        "events": system.simulator.events_executed,
        "quiesced_at": system.simulator.now,
        "declarations": len(system.declarations),
        "unsound": 0,
        "probes": system.metrics.counter_value("ddb.probes.sent"),
        "computations": system.metrics.counter_value("ddb.computations.initiated"),
        "max_probes_per_computation": 0,
        "detection_latency_mean": None,
        "extra": {
            "scans": system.metrics.counter_value("ddb.scans"),
            "complete": int(complete),
        },
    }


def _run_baseline(cell: SweepCell) -> CellResult:
    from repro.experiments import e8_baselines

    # Detector index 0 is the paper's probe computation; i >= 1 resolves
    # overlay_variants()[i - 1] (the registry's e8 position contract).
    index = int(cell.param("detector"))
    family = cell.scenario.removeprefix("baseline-")
    factory = (
        e8_baselines.random_system if family == "random" else e8_baselines.ping_pong_system
    )
    if index == 0:
        system = factory(cell.seed, True)
        system.run_to_quiescence(max_events=MAX_EVENTS)
        result = _collect_basic(cell, system)
        result["extra"]["detector"] = "cmh"
        result["extra"]["true_detections"] = result["declarations"] - result["unsound"]
        result["extra"]["false_detections"] = result["unsound"]
        return result
    variant = overlay_variants()[index - 1]
    _, settings = e8_baselines.OVERLAY_SETTINGS[variant.name]
    system = factory(cell.seed, False)
    detector = variant.build(system, **settings)
    detector.start()
    system.run_to_quiescence(max_events=MAX_EVENTS)
    result = _collect_basic(cell, system)
    report = detector.report
    result["extra"]["detector"] = variant.name
    result["extra"]["true_detections"] = len(report.true_detections)
    result["extra"]["false_detections"] = len(report.false_detections)
    result["extra"]["detector_messages"] = report.messages
    return result


#: Scenarios that bypass family resolution: they wrap whole experiment
#: procedures (multi-detector overlays, the E7 Q-optimisation ring)
#: rather than a schedulable workload, so the registry has no entry.
_SPECIAL_RUNNERS = {
    "ddb-ring": _run_ddb_ring,
    "baseline-random": _run_baseline,
    "baseline-ping-pong": _run_baseline,
}


def _dispatch(cell: SweepCell) -> CellResult:
    special = _SPECIAL_RUNNERS.get(cell.scenario)
    if special is not None:
        return special(cell)
    # Everything else resolves through the workload registry; an unknown
    # scenario raises ConfigurationError naming the family (error cell).
    family = get_family(cell.scenario)
    model = family.models[0]
    if model == "basic":
        return _run_basic_family(cell, family)
    if model == "ddb":
        return _run_ddb_family(cell, family)
    raise ConfigurationError(
        f"workload family {family.name!r} drives model {model!r}, which has "
        "no sweep runner (basic and ddb families sweep today)"
    )


def run_cell(cell: SweepCell) -> CellResult:
    """Run one cell; never raises -- failures become ``status: "error"``.

    This function is the unit shipped to worker processes, so it must stay
    a module-level callable (picklable) and fully self-describing.
    """
    started = time.perf_counter()
    try:
        result = _dispatch(cell)
    except Exception as error:  # noqa: BLE001 - error cells are the contract
        result = {
            "cell_id": cell.cell_id,
            "status": "error",
            "error": f"{type(error).__name__}: {error}",
        }
    result["wall_seconds"] = time.perf_counter() - started
    return result


def run_sweep(
    cells: tuple[SweepCell, ...] | list[SweepCell], workers: int = 1
) -> list[CellResult]:
    """Run every cell and return results in *completion-independent* order.

    ``workers=1`` runs inline (no subprocesses -- simplest to debug and to
    profile); ``workers>1`` shards cells across a ``ProcessPoolExecutor``
    and collects results as they finish.  Either way the returned list is
    sorted by ``cell_id``, which is what makes the merged document
    independent of scheduling.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        results = [run_cell(cell) for cell in cells]
    else:
        results = []
        with ProcessPoolExecutor(max_workers=workers) as executor:
            pending = {executor.submit(run_cell, cell): cell for cell in cells}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    cell = pending.pop(future)
                    try:
                        results.append(future.result())
                    except Exception as error:  # worker died (e.g. OOM/kill)
                        results.append(
                            {
                                "cell_id": cell.cell_id,
                                "status": "error",
                                "error": f"worker failure: {type(error).__name__}: {error}",
                                "wall_seconds": 0.0,
                            }
                        )
    return sorted(results, key=lambda result: str(result["cell_id"]))
