"""Parallel experiment sweeps over the paper's parameter grids.

This package is the *driver* tier of the repo: it sits above both the
protocol packages (``basic``/``ddb``/``ormodel``/``sim``) and the harness
packages (``experiments``/``workloads``/``obs``/...), fanning a declarative
grid of simulation cells out across worker processes and merging the
results into one canonical JSON document.

Layering (enforced by lint rule RPX004): ``repro.sweep`` may import any
protocol or harness package; nothing outside this package may import
``repro.sweep``.

Determinism contract: each :class:`~repro.sweep.grid.SweepCell` runs in its
own :class:`~repro.sim.simulator.Simulator` seeded from the cell, so a
cell's result is a pure function of the cell.  The merged document sorts
cells by id and excludes wall-clock fields, so identical grids produce
**byte-identical** output regardless of worker count or scheduling order
(``tests/sweep/test_determinism.py`` proves it).  Wall time and events/sec
go to a separate ``*.timing.json`` sidecar that carries no such guarantee.
"""

from __future__ import annotations

from repro.sweep.grid import SweepCell, SweepGrid
from repro.sweep.grids import GRIDS, build_grid
from repro.sweep.merge import canonical_json, merge_results
from repro.sweep.runner import run_cell, run_sweep

__all__ = [
    "GRIDS",
    "SweepCell",
    "SweepGrid",
    "build_grid",
    "canonical_json",
    "merge_results",
    "run_cell",
    "run_sweep",
]
