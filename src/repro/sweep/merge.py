"""Merge cell results into one canonical document (plus a timing sidecar).

The canonical document is the determinism contract of the sweep engine:

* cells sorted by ``cell_id`` (results arrive in completion order under
  multiprocessing; the sort erases that),
* wall-clock fields stripped (they vary run to run by construction),
* serialised with ``sort_keys`` and a fixed indent, trailing newline.

Identical grids therefore produce **byte-identical** ``BENCH_*.json``
bytes no matter how many workers ran them -- which is what lets CI diff
the file and lets the benchmark baseline hash it.  Everything that *does*
depend on the machine (per-cell wall seconds, events/sec) goes to the
``*.timing.json`` sidecar, which makes no such promise.
"""

from __future__ import annotations

import json
from typing import Any

from repro.sweep.runner import CellResult

#: Schema identifier embedded in every merged document.
SCHEMA = "repro.sweep/1"


def canonical_json(document: Any) -> str:
    """The one serialisation used for every sweep artefact."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def merge_results(grid_name: str, results: list[CellResult]) -> dict[str, Any]:
    """Fold per-cell results into the canonical, order-independent document."""
    cells = []
    for result in sorted(results, key=lambda r: str(r["cell_id"])):
        cells.append({key: value for key, value in result.items() if key != "wall_seconds"})
    statuses = [cell["status"] for cell in cells]
    return {
        "schema": SCHEMA,
        "grid": grid_name,
        "cells": cells,
        "summary": {
            "cells": len(cells),
            "ok": statuses.count("ok"),
            "errors": statuses.count("error"),
            "deadlocks": sum(1 for cell in cells if cell.get("outcome") == "deadlock"),
            "events": sum(cell.get("events", 0) for cell in cells),
            "probes": sum(cell.get("probes", 0) for cell in cells),
            "unsound": sum(cell.get("unsound", 0) for cell in cells),
        },
    }


def timing_sidecar(grid_name: str, results: list[CellResult]) -> dict[str, Any]:
    """Wall-clock view of the same results; excluded from determinism."""
    per_cell = {}
    total_wall = 0.0
    total_events = 0
    for result in results:
        wall = float(result.get("wall_seconds", 0.0))
        events = int(result.get("events", 0))
        total_wall += wall
        total_events += events
        per_cell[str(result["cell_id"])] = {
            "wall_seconds": wall,
            "events_per_sec": events / wall if wall > 0 else None,
        }
    return {
        "schema": SCHEMA + "+timing",
        "grid": grid_name,
        "cells": per_cell,
        "total": {
            "wall_seconds": total_wall,
            "events": total_events,
            "events_per_sec": total_events / total_wall if total_wall > 0 else None,
        },
    }
