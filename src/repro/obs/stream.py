"""Incremental span reconstruction: the streaming twin of :mod:`spans`.

:func:`repro.obs.spans.build_spans` folds a *complete* in-memory trace
after the run -- the wrong shape for the live backend and for
long-running workloads, where the full trace either does not exist
(``trace=False``) or must not be buffered.  This module rebuilds the
same :class:`~repro.obs.spans.ProbeComputationSpan` records one
:class:`~repro.sim.trace.TraceEvent` at a time, via a category-scoped
:meth:`~repro.sim.trace.Tracer.subscribe` hook, and emits each span the
moment its computation ``(i, n)`` resolves:

* **deadlock** -- the A1 declaration arrived and every probe hop of the
  tag has drained (received + net-delivered);
* **superseded** -- a later computation ``(i, n')`` of the same initiator
  appeared (section 4.3) and the old tag's hops have drained;
* **fizzled** -- assigned only at :meth:`StreamingSpanEngine.finish`,
  because "no declaration will ever come" is a quiescence-time fact.

Memory is bounded by the *open* computations, not the run length: a
settled span is evicted together with its matching queues, which is what
lets a monitor watch an unbounded run.  Settlement is deferred until the
first event of a *different* tag: probes propagate only inside the
handler that received them (A0/A2), so once a drained tag's handler has
moved on, no further event of that tag can exist.

The section 4 bounds are checked **online**: the per-edge probe count is
maintained incrementally and a breach raises (``strict_bounds=True``) or
records a :class:`~repro.errors.BoundViolation` at the offending
``probe.sent`` event -- not after the run, when the evidence has long
since scrolled past.

Equivalence with the batch fold is a hard contract (the parity suite in
``tests/obs/test_stream.py`` asserts field-for-field equality on every
registered variant): :func:`stream_spans` over a full trace returns
exactly what :func:`~repro.obs.spans.build_spans` does.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable
from typing import Any

from repro._ids import ProbeTag
from repro.errors import BoundViolation
from repro.obs.spans import (
    BASIC_SPAN_SCHEMA,
    ProbeComputationSpan,
    ProbeHop,
    SpanOutcome,
    SpanSchema,
)
from repro.sim import categories
from repro.sim.trace import TraceEvent, Tracer

SpanSink = Callable[[ProbeComputationSpan], None]
ViolationSink = Callable[[BoundViolation], None]


def _tag_of(value: Any) -> ProbeTag | None:
    return value if isinstance(value, ProbeTag) else None


def span_sort_key(span: ProbeComputationSpan) -> tuple[float, int, int]:
    """The batch folder's ordering: initiation time, initiator, sequence."""
    start = span.initiated_at if span.initiated_at is not None else span.end_time
    return (start, span.tag.initiator, span.tag.sequence)


class StreamingSpanEngine:
    """Rebuild probe-computation spans from a live event stream.

    Parameters
    ----------
    schema:
        Which model's lifecycle categories to fold (same schemas as the
        batch folder).
    n_vertices:
        When given, the section 4 total bound (at most ``n(n-1)`` probes
        per computation) is checked online as well as the per-edge bound.
    strict_bounds:
        Raise the first :class:`~repro.errors.BoundViolation` out of the
        producing handler instead of only recording it.
    on_span:
        Called once per settled span, at eviction time.  Emission order
        is settlement order, **not** initiation order; sort with
        :func:`span_sort_key` for the batch folder's ordering.
    on_violation:
        Called for every recorded bound violation (also in strict mode,
        just before the raise).
    """

    def __init__(
        self,
        schema: SpanSchema = BASIC_SPAN_SCHEMA,
        *,
        n_vertices: int | None = None,
        strict_bounds: bool = False,
        on_span: SpanSink | None = None,
        on_violation: ViolationSink | None = None,
    ) -> None:
        self.schema = schema
        self.n_vertices = n_vertices
        self.strict_bounds = strict_bounds
        self.on_span = on_span
        self.on_violation = on_violation
        #: every bound violation seen so far, in event order.
        self.violations: list[BoundViolation] = []
        #: settled spans emitted so far.
        self.emitted = 0
        #: high-water mark of simultaneously open computations -- the
        #: bounded-memory claim, made testable.
        self.peak_open = 0
        self._tracer: Tracer | None = None

        self._spans: dict[ProbeTag, ProbeComputationSpan] = {}
        self._awaiting_receive: dict[tuple[ProbeTag, Hashable], deque[ProbeHop]] = {}
        self._awaiting_net: dict[
            tuple[ProbeTag, Hashable, Hashable], deque[ProbeHop]
        ] = {}
        #: per-tag hops still awaiting a receive or a net-delivery match;
        #: zero means no future event can belong to the tag (once its
        #: producing handler has finished).
        self._outstanding: dict[ProbeTag, int] = {}
        #: incremental per-edge probe counts (the online section 4 check).
        self._edge_counts: dict[ProbeTag, dict[Hashable, int]] = {}
        #: highest sequence seen per initiator (section 4.3 supersession).
        self._latest: dict[int, int] = {}
        #: resolved + drained tags awaiting confirmation by the first
        #: event of a different tag (probes of a tag are only produced
        #: inside that tag's own receive handler).
        self._deferred: dict[ProbeTag, None] = {}

    # ------------------------------------------------------------------
    # Subscription plumbing
    # ------------------------------------------------------------------

    @property
    def categories(self) -> tuple[str, ...]:
        """The trace categories this engine must observe."""
        schema = self.schema
        return (
            schema.initiated,
            schema.probe_sent,
            schema.probe_received,
            schema.declared,
            categories.NET_SENT,
            categories.NET_DELIVERED,
        )

    @property
    def open_computations(self) -> int:
        """Computations currently held in memory (settled ones are gone)."""
        return len(self._spans)

    def attach(self, tracer: Tracer) -> None:
        """Subscribe to ``tracer``, category-scoped.

        The scoped subscription is the whole point: with ``trace=False``
        every category the engine does not watch stays on the tracer's
        zero-cost path, and nothing is ever buffered in the trace log.
        """
        tracer.subscribe(self.on_event, categories=self.categories)
        self._tracer = tracer

    def detach(self, tracer: Tracer) -> None:
        tracer.unsubscribe(self.on_event)
        self._tracer = None

    # ------------------------------------------------------------------
    # The incremental fold
    # ------------------------------------------------------------------

    def _span_for(self, tag: ProbeTag, time: float) -> ProbeComputationSpan:
        span = self._spans.get(tag)
        if span is None:
            span = ProbeComputationSpan(
                tag=tag, initiator=tag.initiator, initiated_at=None, end_time=time
            )
            self._spans[tag] = span
            if len(self._spans) > self.peak_open:
                self.peak_open = len(self._spans)
            latest = self._latest.get(tag.initiator)
            if latest is None or tag.sequence > latest:
                self._latest[tag.initiator] = tag.sequence
                self._settle_superseded(tag.initiator, tag.sequence)
        span.end_time = max(span.end_time, time)
        return span

    def _settle_superseded(self, initiator: int, latest: int) -> None:
        """A new latest sequence may resolve older computations of the
        same initiator; re-examine them."""
        for tag in list(self._spans):
            if tag.initiator == initiator and tag.sequence < latest:
                self._try_settle(tag)

    def on_event(self, event: TraceEvent) -> None:
        """Consume one trace event (the ``Tracer.subscribe`` callback)."""
        schema = self.schema
        category = event.category
        if category == schema.initiated:
            tag = _tag_of(event["tag"])
            if tag is None:
                return
            self._flush_deferred(tag)
            span = self._span_for(tag, event.time)
            if span.initiated_at is None:
                span.initiated_at = event.time
        elif category == schema.probe_sent:
            tag = _tag_of(event["tag"])
            if tag is None:
                return
            self._flush_deferred(tag)
            span = self._span_for(tag, event.time)
            sender, destination = schema.sent_endpoints(event)
            hop = ProbeHop(
                tag=tag,
                source=sender,
                target=destination,
                edge=schema.edge_of(event),
                sent_at=event.time,
            )
            span.hops.append(hop)
            self._awaiting_receive.setdefault((tag, hop.edge), deque()).append(hop)
            self._awaiting_net.setdefault((tag, sender, destination), deque()).append(
                hop
            )
            self._outstanding[tag] = self._outstanding.get(tag, 0) + 2
            self._check_bounds_online(span, hop)
        elif category == schema.probe_received:
            tag = _tag_of(event["tag"])
            if tag is None:
                return
            self._flush_deferred(tag)
            span = self._span_for(tag, event.time)
            edge = schema.edge_of(event)
            key = (tag, edge)
            pending = self._awaiting_receive.get(key)
            if pending:
                hop = pending.popleft()
                if not pending:
                    del self._awaiting_receive[key]
                self._outstanding[tag] -= 1
            else:
                # Sliced trace: the matching send was not recorded.
                source_pid: Hashable = event.details.get("source")
                target_pid: Hashable = event.details.get(
                    "target", event.details.get("site")
                )
                hop = ProbeHop(
                    tag=tag, source=source_pid, target=target_pid, edge=edge
                )
                span.hops.append(hop)
            hop.received_at = event.time
            meaningful = event.details.get("meaningful")
            hop.meaningful = bool(meaningful) if meaningful is not None else None
            self._try_settle(tag)
        elif category == schema.declared:
            tag = _tag_of(event["tag"])
            if tag is None:
                return
            self._flush_deferred(tag)
            span = self._span_for(tag, event.time)
            if span.declared_at is None:
                span.declared_at = event.time
                span.declared_by = schema.declared_by(event)
            self._try_settle(tag)
        elif category in (categories.NET_SENT, categories.NET_DELIVERED):
            message = event.details.get("message")
            tag = _tag_of(getattr(message, "tag", None))
            if tag is None:
                return
            self._flush_deferred(tag)
            key = (tag, event["sender"], event["destination"])
            pending = self._awaiting_net.get(key)
            if not pending:
                return
            if category == categories.NET_SENT:
                # First hop in the queue that has no net-accept time yet.
                for hop in pending:
                    if hop.net_sent_at is None:
                        hop.net_sent_at = event.time
                        self._span_for(tag, event.time)
                        break
            else:
                hop = pending.popleft()
                if not pending:
                    del self._awaiting_net[key]
                hop.net_delivered_at = event.time
                self._span_for(tag, event.time)
                self._outstanding[tag] -= 1
                self._try_settle(tag)

    # ------------------------------------------------------------------
    # Online section 4 bounds
    # ------------------------------------------------------------------

    def _check_bounds_online(self, span: ProbeComputationSpan, hop: ProbeHop) -> None:
        counts = self._edge_counts.setdefault(span.tag, {})
        count = counts.get(hop.edge, 0) + 1
        counts[hop.edge] = count
        if count == 2:
            self._violate(
                BoundViolation(
                    "one-probe-per-edge",
                    f"computation {span.tag} sent a second probe over edge "
                    f"{hop.edge!r} at t={hop.sent_at} (section 4 allows "
                    "exactly one)",
                )
            )
        if self.n_vertices is not None:
            limit = self.n_vertices * (self.n_vertices - 1)
            total = sum(counts.values())
            if total == limit + 1:
                self._violate(
                    BoundViolation(
                        "probes-le-edges",
                        f"computation {span.tag} exceeded the {limit} possible "
                        f"wait-for edges among {self.n_vertices} vertices at "
                        f"t={hop.sent_at}",
                    )
                )

    def _violate(self, violation: BoundViolation) -> None:
        self.violations.append(violation)
        if self.on_violation is not None:
            self.on_violation(violation)
        if self.strict_bounds:
            raise violation

    # ------------------------------------------------------------------
    # Settlement & eviction
    # ------------------------------------------------------------------

    def _resolution(self, tag: ProbeTag) -> SpanOutcome | None:
        """The outcome already determined for ``tag``, if any.

        FIZZLED is never determined mid-stream: only quiescence proves
        the absence of a future declaration.
        """
        span = self._spans[tag]
        if span.declared_at is not None:
            return SpanOutcome.DEADLOCK
        if tag.sequence < self._latest.get(tag.initiator, tag.sequence):
            return SpanOutcome.SUPERSEDED
        return None

    def _try_settle(self, tag: ProbeTag) -> None:
        if tag not in self._spans or self._outstanding.get(tag, 0) > 0:
            return
        if self._resolution(tag) is not None:
            self._deferred[tag] = None

    def _flush_deferred(self, current: ProbeTag) -> None:
        """Evict deferred tags once an event of a *different* tag proves
        their producing handlers have completed."""
        if not self._deferred:
            return
        for tag in list(self._deferred):
            if tag == current:
                continue
            del self._deferred[tag]
            if tag not in self._spans or self._outstanding.get(tag, 0) > 0:
                continue
            outcome = self._resolution(tag)
            if outcome is not None:
                self._evict(tag, outcome)

    def _evict(self, tag: ProbeTag, outcome: SpanOutcome) -> None:
        span = self._spans.pop(tag)
        span.outcome = outcome
        self._outstanding.pop(tag, None)
        self._edge_counts.pop(tag, None)
        # Drained tags have no queue entries left; fizzled ones (flushed
        # by finish) may.  Sweep both keyed maps for stragglers.
        for key in [k for k in self._awaiting_receive if k[0] == tag]:
            del self._awaiting_receive[key]
        for key in [k for k in self._awaiting_net if k[0] == tag]:
            del self._awaiting_net[key]
        self.emitted += 1
        tracer = self._tracer
        if tracer is not None and tracer.wants(categories.OBS_SPAN_SETTLED):
            tracer.record(
                span.end_time,
                categories.OBS_SPAN_SETTLED,
                tag=tag,
                outcome=outcome.value,
                probes_sent=span.probes_sent,
                detection_latency=span.detection_latency,
            )
        if self.on_span is not None:
            self.on_span(span)

    def finish(self) -> list[ProbeComputationSpan]:
        """Flush every remaining computation at end of stream.

        Undetermined spans become FIZZLED (or SUPERSEDED when a later
        sequence exists), exactly like the batch folder's quiescence-time
        outcome pass.  Returns the spans emitted *by this call*, in the
        batch folder's sort order; spans already emitted mid-stream are
        not repeated.
        """
        flushed: list[ProbeComputationSpan] = []
        self._deferred.clear()
        for tag in sorted(
            self._spans, key=lambda t: span_sort_key(self._spans[t])
        ):
            span = self._spans[tag]
            outcome = self._resolution(tag)
            if outcome is None:
                outcome = SpanOutcome.FIZZLED
            self._evict(tag, outcome)
            flushed.append(span)
        return flushed


def span_to_json(span: ProbeComputationSpan) -> dict[str, Any]:
    """A compact JSON-able view of one span, for streamed JSONL export.

    Deliberately simpler than the lossless trace round-trip of
    :mod:`repro.obs.export`: ids are stringified, derived quantities are
    precomputed -- the shape a dashboard or ``jq`` wants, not a decoder.
    """
    return {
        "tag": str(span.tag),
        "initiator": span.initiator,
        "sequence": span.tag.sequence,
        "initiated_at": span.initiated_at,
        "declared_at": span.declared_at,
        "declared_by": None if span.declared_by is None else str(span.declared_by),
        "outcome": span.outcome.value,
        "end_time": span.end_time,
        "probes_sent": span.probes_sent,
        "meaningful_probes": span.meaningful_probes,
        "detection_latency": span.detection_latency,
        "hops": [
            {
                "source": str(hop.source),
                "target": str(hop.target),
                "edge": str(hop.edge),
                "sent_at": hop.sent_at,
                "net_sent_at": hop.net_sent_at,
                "net_delivered_at": hop.net_delivered_at,
                "received_at": hop.received_at,
                "meaningful": hop.meaningful,
            }
            for hop in span.hops
        ],
    }


def stream_spans(
    source: Tracer | Iterable[TraceEvent],
    schema: SpanSchema = BASIC_SPAN_SCHEMA,
    *,
    n_vertices: int | None = None,
    strict_bounds: bool = False,
) -> list[ProbeComputationSpan]:
    """Run the incremental engine over a complete event stream.

    Returns spans in the batch folder's order -- on a full trace the
    result is field-for-field identical to
    :func:`repro.obs.spans.build_spans` (the parity contract).
    """
    collected: list[ProbeComputationSpan] = []
    engine = StreamingSpanEngine(
        schema,
        n_vertices=n_vertices,
        strict_bounds=strict_bounds,
        on_span=collected.append,
    )
    for event in source:
        engine.on_event(event)
    engine.finish()
    return sorted(collected, key=span_sort_key)
