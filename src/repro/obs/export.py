"""Trace export/import: lossless JSONL and Chrome trace-event JSON.

Two formats, two purposes:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) is the archival
  format: one event per line, typed encoding for the protocol payloads
  (tags, frozen message dataclasses, tuples, enums), and a guaranteed
  round-trip -- ``read(write(events)) == events`` event for event.  A trace
  exported from one run can be re-imported and fed to the span builder or
  the invariant checkers offline.
* **Chrome trace-event JSON** (:func:`events_to_chrome`) is the *viewing*
  format: load the file in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` and see one track per vertex/site, probe
  computations and probe hops as duration slices, flow arrows following
  each probe across tracks, and deadlock declarations as instant markers.
  Virtual time units are mapped to microseconds (1 sim unit = 1 ms on
  screen with the default ``displayTimeUnit``).
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from collections.abc import Hashable, Iterable
from enum import Enum
from pathlib import Path
from typing import Any

from repro.obs.spans import BASIC_SPAN_SCHEMA, SpanSchema, build_spans
from repro.sim.trace import TraceEvent, Tracer

#: marker key for typed JSON encodings; a plain dict using this key is
#: escaped through the "map" form, so the encoding stays unambiguous.
_KIND = "~kind"

#: only types from these package roots are reconstructed on import.
_TRUSTED_ROOTS = ("repro.",)


class TraceEncodingError(ValueError):
    """A trace payload could not be encoded/decoded losslessly."""


def _qualname(value: object) -> str:
    cls = type(value)
    return f"{cls.__module__}.{cls.__qualname__}"


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise TraceEncodingError(f"non-finite float {value!r} is not portable")
        return value
    if isinstance(value, Enum):
        return {_KIND: "enum", "type": _qualname(value), "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            _KIND: "dataclass",
            "type": _qualname(value),
            "fields": {
                f.name: _encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [_encode(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        try:
            items: list[Any] = sorted(value)
        except TypeError:
            items = sorted(value, key=repr)
        return {
            _KIND: "frozenset" if isinstance(value, frozenset) else "set",
            "items": [_encode(item) for item in items],
        }
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and _KIND not in value:
            return {key: _encode(item) for key, item in value.items()}
        return {
            _KIND: "map",
            "items": [[_encode(key), _encode(item)] for key, item in value.items()],
        }
    raise TraceEncodingError(
        f"cannot losslessly encode {value!r} of type {_qualname(value)}"
    )


def _resolve_type(path: str) -> type:
    if not path.startswith(_TRUSTED_ROOTS):
        raise TraceEncodingError(
            f"refusing to import {path!r}: only {_TRUSTED_ROOTS} types are trusted"
        )
    # qualnames of nested classes contain dots; walk from the module side
    parts = path.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ModuleNotFoundError:
            continue
        obj: Any = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            break
        if isinstance(obj, type):
            return obj
        break
    raise TraceEncodingError(f"cannot resolve type {path!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(item) for item in value]
    if not isinstance(value, dict):
        return value
    kind = value.get(_KIND)
    if kind is None:
        return {key: _decode(item) for key, item in value.items()}
    if kind == "tuple":
        return tuple(_decode(item) for item in value["items"])
    if kind == "set":
        return {_decode(item) for item in value["items"]}
    if kind == "frozenset":
        return frozenset(_decode(item) for item in value["items"])
    if kind == "map":
        return {_decode(key): _decode(item) for key, item in value["items"]}
    if kind == "enum":
        cls = _resolve_type(value["type"])
        if not issubclass(cls, Enum):
            raise TraceEncodingError(f"{value['type']!r} is not an Enum")
        return cls[value["name"]]
    if kind == "dataclass":
        cls = _resolve_type(value["type"])
        if not dataclasses.is_dataclass(cls):
            raise TraceEncodingError(f"{value['type']!r} is not a dataclass")
        fields = {key: _decode(item) for key, item in value["fields"].items()}
        return cls(**fields)
    raise TraceEncodingError(f"unknown encoding kind {kind!r}")


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """One event as a JSON-compatible dict (typed payload encoding)."""
    return {
        "time": event.time,
        "category": event.category,
        "details": {key: _encode(item) for key, item in event.details.items()},
    }


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        time=data["time"],
        category=data["category"],
        details={key: _decode(item) for key, item in data["details"].items()},
    )


def events_to_jsonl(events: Tracer | Iterable[TraceEvent]) -> str:
    """Serialise events to JSONL, one event per line, in trace order."""
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> list[TraceEvent]:
    """Parse JSONL produced by :func:`events_to_jsonl` back into events."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(event_from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise TraceEncodingError(f"bad JSONL at line {lineno}: {error}") from error
    return events


def write_jsonl(path: str | Path, events: Tracer | Iterable[TraceEvent]) -> Path:
    """Write events as JSONL to ``path`` and return the path."""
    path = Path(path)
    path.write_text(events_to_jsonl(events), encoding="utf-8")
    return path


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Read a JSONL trace file back into :class:`TraceEvent` objects."""
    return events_from_jsonl(Path(path).read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto-loadable)
# ---------------------------------------------------------------------------

#: one simulation time unit maps to this many Chrome-trace microseconds.
_US_PER_UNIT = 1000.0


def _us(time: float) -> float:
    return round(time * _US_PER_UNIT, 3)


def events_to_chrome(
    events: Tracer | Iterable[TraceEvent],
    schema: SpanSchema = BASIC_SPAN_SCHEMA,
) -> dict[str, Any]:
    """Render a trace as a Chrome trace-event document.

    The document uses the JSON-object format (``{"traceEvents": [...]}``):

    * one *thread* track per protocol participant (vertex / site),
    * each probe computation ``(i, n)`` as a duration slice (``ph: "X"``)
      on its initiator's track, covering initiation to last activity,
    * each probe hop as a duration slice on the sender's track plus a
      **flow arrow** (``ph: "s"``/``"f"``) from sender to receiver track,
    * deadlock declarations as instant events (``ph: "i"``).
    """
    event_list = list(events)
    spans = build_spans(event_list, schema=schema)

    participants: set[Hashable] = set()
    for span in spans:
        participants.add(span.initiator)
        for hop in span.hops:
            if hop.source is not None:
                participants.add(hop.source)
            if hop.target is not None:
                participants.add(hop.target)
    tids = {
        participant: index
        for index, participant in enumerate(sorted(participants, key=str))
    }

    pid = 0
    trace_events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{schema.model} model"},
        }
    ]
    prefix = "v" if schema.model == "basic" else "C"
    for participant, tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"{prefix}{participant}"},
            }
        )

    flow_id = 0
    for span in spans:
        start = span.initiated_at
        if start is not None:
            duration = max(span.end_time - start, 0.0)
            trace_events.append(
                {
                    "ph": "X",
                    "name": f"probe {span.tag}",
                    "cat": "probe.computation",
                    "pid": pid,
                    "tid": tids[span.initiator],
                    "ts": _us(start),
                    "dur": max(_us(duration), 1.0),
                    "args": {
                        "tag": str(span.tag),
                        "outcome": span.outcome.value,
                        "probes_sent": span.probes_sent,
                        "meaningful_probes": span.meaningful_probes,
                        "detection_latency": span.detection_latency,
                    },
                }
            )
        for hop in span.hops:
            if hop.sent_at is None:
                continue
            hop_name = f"hop {span.tag} {prefix}{hop.source}->{prefix}{hop.target}"
            end = hop.received_at if hop.received_at is not None else hop.sent_at
            trace_events.append(
                {
                    "ph": "X",
                    "name": hop_name,
                    "cat": "probe.hop",
                    "pid": pid,
                    "tid": tids.get(hop.source, 0),
                    "ts": _us(hop.sent_at),
                    "dur": max(_us(end - hop.sent_at), 1.0),
                    "args": {
                        "meaningful": hop.meaningful,
                        "queue_delay": hop.queue_delay,
                        "flight_delay": hop.flight_delay,
                    },
                }
            )
            if hop.received_at is not None and hop.target in tids:
                flow_id += 1
                common = {"cat": "probe.flow", "name": f"probe {span.tag}", "pid": pid}
                trace_events.append(
                    {
                        "ph": "s",
                        "id": flow_id,
                        "tid": tids.get(hop.source, 0),
                        "ts": _us(hop.sent_at),
                        **common,
                    }
                )
                trace_events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "id": flow_id,
                        "tid": tids[hop.target],
                        "ts": _us(hop.received_at),
                        **common,
                    }
                )
        if span.declared_at is not None:
            trace_events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": f"DEADLOCK {span.tag}",
                    "cat": "probe.declaration",
                    "pid": pid,
                    "tid": tids[span.initiator],
                    "ts": _us(span.declared_at),
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.export",
            "model": schema.model,
            "spans": len(spans),
            "events": len(event_list),
        },
    }


def write_chrome(
    path: str | Path,
    events: Tracer | Iterable[TraceEvent],
    schema: SpanSchema = BASIC_SPAN_SCHEMA,
) -> Path:
    """Write a Chrome trace-event JSON file and return the path."""
    path = Path(path)
    path.write_text(
        json.dumps(events_to_chrome(events, schema=schema), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return path


def validate_chrome(document: dict[str, Any]) -> list[str]:
    """Schema sanity-check a Chrome trace document; returns problem strings.

    Not a full spec validator -- it checks what Perfetto needs to load the
    file: the ``traceEvents`` array, per-event required keys, and matched
    flow begin/finish pairs.
    """
    problems: list[str] = []
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["document has no 'traceEvents' array"]
    flows: dict[Any, list[str]] = {}
    for index, entry in enumerate(trace_events):
        if not isinstance(entry, dict):
            problems.append(f"traceEvents[{index}] is not an object")
            continue
        phase = entry.get("ph")
        if phase not in {"X", "B", "E", "i", "I", "M", "s", "t", "f", "b", "e", "n"}:
            problems.append(f"traceEvents[{index}] has unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in entry:
                problems.append(f"traceEvents[{index}] ({phase}) missing {key!r}")
        if phase != "M" and "ts" not in entry:
            problems.append(f"traceEvents[{index}] ({phase}) missing 'ts'")
        if phase == "X" and not isinstance(entry.get("dur"), (int, float)):
            problems.append(f"traceEvents[{index}] (X) missing numeric 'dur'")
        if phase in {"s", "f"}:
            flows.setdefault(entry.get("id"), []).append(phase)
    for flow, phases in sorted(flows.items(), key=lambda item: str(item[0])):
        if sorted(phases) != ["f", "s"]:
            problems.append(f"flow id {flow!r} has unmatched phases {phases}")
    return problems
