"""Opt-in wall-clock profiling of the simulator itself.

The ROADMAP's "fast as the hardware allows" goal needs the hot path to be
*measurable* before it is optimised.  This module implements the
:class:`~repro.sim.simulator.ProfileHook` protocol: attach a
:class:`SimulatorProfiler` (or use the :func:`profiling` context manager)
and every executed event is timed with ``time.perf_counter`` and
aggregated by handler category (derived from the event's schedule name:
``deliver Probe``, ``service``, ``request``, ...).

**This is the only module in the lint-scoped packages allowed to read the
wall clock** -- rule RPX002 carries a narrow, documented allowlist for
exactly this file.  The discipline that keeps the allowlist sound:

* wall-clock readings never flow back into the simulation -- no schedule
  delay, message delay, or protocol decision may depend on them;
* everything the profiler feeds *into* shared state (the
  ``sim.queue.depth`` time series, the ``profile.queue.sampled`` trace
  events) is stamped with **virtual** time and derived from deterministic
  quantities (event counts, queue depth), so traces stay replayable;
* wall-clock numbers leave the process only through :class:`ProfileReport`.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.obs.metrics import GaugeMetric
from repro.sim import categories
from repro.sim.events import Event
from repro.sim.simulator import Simulator


def handler_category(name: str) -> str:
    """Aggregation key for an event's schedule name.

    The first word of the name identifies the handler (``service``,
    ``request``, ``think``, ...); delivery events keep the message type
    (``deliver Probe`` vs ``deliver Request``), which is what separates
    detection traffic from base traffic in the report.
    """
    if not name:
        return "<anonymous>"
    parts = name.split()
    if parts[0] == "deliver" and len(parts) > 1:
        return f"deliver {parts[1]}"
    return parts[0]


@dataclass(frozen=True)
class CategoryProfile:
    """Aggregated wall time for one handler category."""

    category: str
    events: int
    wall_seconds: float


@dataclass(frozen=True)
class ProfileReport:
    """One profiling window, summarised."""

    events: int
    #: wall-clock seconds spent inside event handlers
    handler_seconds: float
    #: wall-clock seconds between attach and report (includes engine
    #: overhead: queue pops, clock advances, the profiler itself)
    wall_seconds: float
    events_per_second: float
    by_category: tuple[CategoryProfile, ...]
    queue_depth_max: int
    queue_depth_samples: int

    def render(self) -> str:
        lines = [
            f"simulator profile: {self.events} events in {self.wall_seconds:.4f} s "
            f"wall ({self.events_per_second:,.0f} events/s)",
            f"  handler time: {self.handler_seconds:.4f} s "
            f"({self.handler_seconds / self.wall_seconds:.0%} of wall)"
            if self.wall_seconds > 0
            else "  handler time: 0 s",
            f"  event-queue depth: max {self.queue_depth_max} "
            f"({self.queue_depth_samples} samples in series 'sim.queue.depth')",
            "  by handler category:",
        ]
        width = max((len(c.category) for c in self.by_category), default=8)
        for profile in self.by_category:
            share = (
                profile.wall_seconds / self.handler_seconds
                if self.handler_seconds > 0
                else 0.0
            )
            lines.append(
                f"    {profile.category.ljust(width)}  {profile.events:>8} events  "
                f"{profile.wall_seconds:.4f} s  ({share:.1%})"
            )
        return "\n".join(lines)


class SimulatorProfiler:
    """Times every executed event; samples queue depth periodically.

    Parameters
    ----------
    simulator:
        The simulator to observe.
    sample_every:
        Record one queue-depth sample (time series ``sim.queue.depth`` +
        trace category ``profile.queue.sampled``) every this many events.
        Sampling is driven by the deterministic event counter, so the
        virtual-time artifacts are identical across runs of one seed.
    """

    def __init__(self, simulator: Simulator, sample_every: int = 64) -> None:
        if sample_every < 1:
            raise SimulationError(f"sample_every must be >= 1, got {sample_every}")
        self.simulator = simulator
        self.sample_every = sample_every
        self._attached = False
        self._events = 0
        self._event_started = 0.0
        self._attached_at = 0.0
        self._handler_seconds = 0.0
        self._by_category: dict[str, list[float]] = {}
        # Queue-depth bookkeeping rides the observability layer's gauge
        # primitive (high-water mark + observation count) instead of
        # hand-rolled counters: one gauge tracks the per-event depth (its
        # ``max`` is the report's queue_depth_max), the other is set only
        # on sampled events (its ``observations`` is the sample count).
        self._depth_gauge = GaugeMetric()
        self._sampled_gauge = GaugeMetric()

    # -- ProfileHook interface ------------------------------------------

    def before_event(self, event: Event) -> None:
        self._event_started = time.perf_counter()

    def after_event(self, event: Event, queue_depth: int) -> None:
        elapsed = time.perf_counter() - self._event_started
        self._events += 1
        self._handler_seconds += elapsed
        bucket = self._by_category.setdefault(handler_category(event.name), [0, 0.0])
        bucket[0] += 1
        bucket[1] += elapsed
        self._depth_gauge.set(queue_depth)
        if self._events % self.sample_every == 0:
            self._sample(queue_depth)

    # -- lifecycle ------------------------------------------------------

    def attach(self) -> None:
        """Install this profiler as the simulator's profile hook."""
        if self.simulator.profile_hook is not None:
            raise SimulationError("simulator already has a profile hook attached")
        self.simulator.profile_hook = self
        self._attached = True
        self._attached_at = time.perf_counter()

    def detach(self) -> None:
        """Remove this profiler from the simulator."""
        if self.simulator.profile_hook is not self:
            raise SimulationError("this profiler is not attached to the simulator")
        self.simulator.profile_hook = None
        self._attached = False

    def _sample(self, queue_depth: int) -> None:
        now = self.simulator.now
        metrics = self.simulator.metrics
        metrics.gauge("sim.queue.depth").set(queue_depth)
        metrics.timeseries("sim.queue.depth").record(now, queue_depth)
        self._sampled_gauge.set(queue_depth)
        self.simulator.trace_now(
            categories.PROFILE_QUEUE_SAMPLED,
            depth=queue_depth,
            events_executed=self.simulator.events_executed,
        )

    # -- reporting ------------------------------------------------------

    def report(self) -> ProfileReport:
        """Summarise the window from :meth:`attach` (or construction) to now."""
        wall = time.perf_counter() - self._attached_at if self._attached_at else 0.0
        by_category = tuple(
            CategoryProfile(category=name, events=int(count), wall_seconds=seconds)
            for name, (count, seconds) in sorted(
                self._by_category.items(), key=lambda item: -item[1][1]
            )
        )
        return ProfileReport(
            events=self._events,
            handler_seconds=self._handler_seconds,
            wall_seconds=wall,
            events_per_second=self._events / wall if wall > 0 else 0.0,
            by_category=by_category,
            queue_depth_max=int(self._depth_gauge.max),
            queue_depth_samples=self._sampled_gauge.observations,
        )


@contextmanager
def profiling(
    simulator: Simulator, sample_every: int = 64
) -> Iterator[SimulatorProfiler]:
    """Profile everything run inside the ``with`` body::

        with profiling(system.simulator) as profiler:
            system.run_to_quiescence()
        print(profiler.report().render())
    """
    profiler = SimulatorProfiler(simulator, sample_every=sample_every)
    profiler.attach()
    try:
        yield profiler
    finally:
        profiler.detach()
