"""Observability layer: spans, trace export, and simulator profiling.

The paper's correctness and performance claims are *temporal* -- QRP2 holds
"at the moment the meaningful probe is received", and section 4 bounds the
probes each computation may send -- so a flat event list is the wrong shape
for inspecting a run.  This package folds the structured trace recorded by
:class:`repro.sim.trace.Tracer` into higher-level artifacts:

* :mod:`repro.obs.spans` -- reconstruct each probe computation ``(i, n)``
  as a :class:`~repro.obs.spans.ProbeComputationSpan`: initiation, every
  probe hop with its latency split, the outcome, and machine-checked
  section 4 probe bounds.
* :mod:`repro.obs.export` -- lossless JSONL round-trip of traces plus
  Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.profile` -- opt-in wall-clock profiling of the simulator
  itself (events/sec, queue depth, per-handler-category time).  This is the
  **only** module in the scoped packages allowed to read the wall clock
  (lint rule RPX002's documented allowlist).

Layering: ``obs`` observes the protocol core from outside, exactly like
``analysis``/``verification``; protocol packages must never import it
(enforced by lint rule RPX004).
"""

from repro.obs.export import (
    events_from_jsonl,
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.obs.profile import ProfileReport, SimulatorProfiler, profiling
from repro.obs.spans import (
    BASIC_SPAN_SCHEMA,
    DDB_SPAN_SCHEMA,
    ProbeComputationSpan,
    ProbeHop,
    SpanOutcome,
    SpanSchema,
    build_spans,
    check_probe_bounds,
)

__all__ = [
    "BASIC_SPAN_SCHEMA",
    "DDB_SPAN_SCHEMA",
    "ProbeComputationSpan",
    "ProbeHop",
    "ProfileReport",
    "SimulatorProfiler",
    "SpanOutcome",
    "SpanSchema",
    "build_spans",
    "check_probe_bounds",
    "events_from_jsonl",
    "events_to_chrome",
    "events_to_jsonl",
    "profiling",
    "read_jsonl",
    "write_jsonl",
]
