"""Observability layer: spans, trace export, and simulator profiling.

The paper's correctness and performance claims are *temporal* -- QRP2 holds
"at the moment the meaningful probe is received", and section 4 bounds the
probes each computation may send -- so a flat event list is the wrong shape
for inspecting a run.  This package folds the structured trace recorded by
:class:`repro.sim.trace.Tracer` into higher-level artifacts:

* :mod:`repro.obs.spans` -- reconstruct each probe computation ``(i, n)``
  as a :class:`~repro.obs.spans.ProbeComputationSpan`: initiation, every
  probe hop with its latency split, the outcome, and machine-checked
  section 4 probe bounds.
* :mod:`repro.obs.export` -- lossless JSONL round-trip of traces plus
  Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.profile` -- opt-in wall-clock profiling of the simulator
  itself (events/sec, queue depth, per-handler-category time).  This is the
  **only** module in the scoped packages allowed to read the wall clock
  (lint rule RPX002's documented allowlist).
* :mod:`repro.obs.stream` -- the incremental twin of the span fold: a
  category-scoped tracer subscription rebuilds spans one event at a time,
  emits each computation the moment it resolves, and checks the section 4
  probe bounds online, with memory bounded by the *open* computations.
* :mod:`repro.obs.metrics` -- labelled live metric families (counters,
  gauges, bucketed histograms) with Prometheus text exposition, plus
  :class:`~repro.obs.metrics.TransportTelemetry`, which populates them
  from any transport backend (the engine behind ``repro monitor``).

Layering: ``obs`` observes the protocol core from outside, exactly like
``analysis``/``verification``; protocol packages must never import it
(enforced by lint rule RPX004).
"""

from repro.obs.export import (
    events_from_jsonl,
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.obs.metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    TelemetryRegistry,
    TransportTelemetry,
)
from repro.obs.profile import ProfileReport, SimulatorProfiler, profiling
from repro.obs.spans import (
    BASIC_SPAN_SCHEMA,
    DDB_SPAN_SCHEMA,
    ProbeComputationSpan,
    ProbeHop,
    SpanOutcome,
    SpanSchema,
    build_spans,
    check_probe_bounds,
)
from repro.obs.stream import (
    StreamingSpanEngine,
    span_sort_key,
    span_to_json,
    stream_spans,
)

__all__ = [
    "BASIC_SPAN_SCHEMA",
    "DDB_SPAN_SCHEMA",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "ProbeComputationSpan",
    "ProbeHop",
    "ProfileReport",
    "SimulatorProfiler",
    "SpanOutcome",
    "SpanSchema",
    "StreamingSpanEngine",
    "TelemetryRegistry",
    "TransportTelemetry",
    "build_spans",
    "check_probe_bounds",
    "events_from_jsonl",
    "events_to_chrome",
    "events_to_jsonl",
    "profiling",
    "read_jsonl",
    "span_sort_key",
    "span_to_json",
    "stream_spans",
    "write_jsonl",
]
