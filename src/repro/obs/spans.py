"""Reconstruct probe computations ``(i, n)`` as spans from a flat trace.

One probe computation is the unit of everything the paper proves: QRP2's
"on a black cycle at the moment the meaningful probe is received" is a
statement about one computation's final hop, and section 4's performance
argument bounds the probes **per computation** -- at most one per edge,
hence at most ``|E|`` in total and ``N`` on a simple cycle of ``N``
vertices.  A flat :class:`~repro.sim.trace.TraceEvent` list interleaves
all computations; this module folds it back into one
:class:`ProbeComputationSpan` per tag ``(initiator, n)``:

* the initiation instant (step A0),
* every probe **hop** with its latency split (protocol send -> network
  accept -> delivery -> protocol receive) and meaningfulness verdict,
* the outcome -- deadlock declared (A1 fired), fizzled (probes discarded
  or still travelling at quiescence), or superseded by a later computation
  of the same initiator (section 4.3),
* per-edge probe accounting, machine-checked by :func:`check_probe_bounds`.

The fold is schema-driven so the same machinery serves the basic model
(vertex probes) and the DDB model (controller probes); see
:data:`BASIC_SPAN_SCHEMA` and :data:`DDB_SPAN_SCHEMA`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro._ids import ProbeTag
from repro.core.registry import MessageTaxonomy, all_variants
from repro.errors import BoundViolation
from repro.sim import categories
from repro.sim.trace import TraceEvent, Tracer


class SpanOutcome(Enum):
    """How a probe computation ended."""

    #: Step A1 fired: the initiator received a meaningful probe of its own
    #: computation and declared itself on a black cycle.
    DEADLOCK = "deadlock"
    #: The computation produced no declaration: its probes were discarded as
    #: not meaningful / stale, or were still in flight when the run ended.
    FIZZLED = "fizzled"
    #: A later computation ``(i, n')`` with ``n' > n`` by the same initiator
    #: exists, which makes this one obsolete (section 4.3).
    SUPERSEDED = "superseded"


@dataclass(frozen=True)
class SpanSchema:
    """How to read one model's probe lifecycle out of its trace categories.

    The extractor callables isolate the fold from per-model detail-key
    differences (the basic model records ``source``/``target`` vertices,
    the DDB model records ``site``/``destination``/``edge``).
    """

    model: str
    initiated: str
    probe_sent: str
    probe_received: str
    declared: str
    #: network pids ``(sender, destination)`` of a probe-sent event; used
    #: both as hop endpoints and to match ``net.sent``/``net.delivered``.
    sent_endpoints: Callable[[TraceEvent], tuple[Hashable, Hashable]]
    #: canonical wait-for-graph edge label of a sent/received probe event;
    #: the section 4 bound counts probes per *this* label.
    edge_of: Callable[[TraceEvent], Hashable]
    #: who declared (step A1): the vertex in the basic model, the victim
    #: process in the DDB model.
    declared_by: Callable[[TraceEvent], object]


def schema_from_taxonomy(model: str, taxonomy: MessageTaxonomy) -> SpanSchema:
    """Derive a fold schema from a registered variant's message taxonomy.

    The taxonomy names the lifecycle categories and the detail keys; this
    turns the keys into the extractor callables the fold runs.  A single
    edge key reads that detail verbatim (the DDB model records a canonical
    ``edge`` label); several keys form a tuple label (the basic model's
    ``(source, target)``).
    """
    sender_key, destination_key = taxonomy.endpoint_keys
    edge_keys = taxonomy.edge_keys
    declared_by_key = taxonomy.declared_by_key
    if len(edge_keys) == 1:
        single_key = edge_keys[0]
        edge_of: Callable[[TraceEvent], Hashable] = lambda e: e[single_key]  # noqa: E731
    else:
        edge_of = lambda e: tuple(e[key] for key in edge_keys)  # noqa: E731
    return SpanSchema(
        model=model,
        initiated=taxonomy.initiated,
        probe_sent=taxonomy.probe_sent,
        probe_received=taxonomy.probe_received,
        declared=taxonomy.declared,
        sent_endpoints=lambda e: (e[sender_key], e[destination_key]),
        edge_of=edge_of,
        declared_by=lambda e: e[declared_by_key],
    )


def _registered_schemas() -> dict[str, SpanSchema]:
    """One schema per registered variant model that declares a taxonomy.

    Built exactly once at import: ``SpanSchema`` equality falls back to
    the identity of its extractor lambdas, so every consumer must share
    these instances rather than re-deriving their own.
    """
    schemas: dict[str, SpanSchema] = {}
    for variant in all_variants():
        taxonomy = variant.capabilities.taxonomy
        if taxonomy is None or variant.capabilities.model in schemas:
            continue
        schemas[variant.capabilities.model] = schema_from_taxonomy(
            variant.capabilities.model, taxonomy
        )
    return schemas


SCHEMAS_BY_MODEL: dict[str, SpanSchema] = _registered_schemas()

BASIC_SPAN_SCHEMA = SCHEMAS_BY_MODEL["basic"]

DDB_SPAN_SCHEMA = SCHEMAS_BY_MODEL["ddb"]


@dataclass
class ProbeHop:
    """One probe travelling one edge within one computation.

    The four timestamps split the hop's latency the way the transport
    experiences it: ``sent_at`` (protocol-level send, step A0/A2) ->
    ``net_sent_at`` (network accepted the message) -> ``net_delivered_at``
    (delivery event fired) -> ``received_at`` (protocol-level receipt).
    ``queue_delay`` is time spent between protocol send and network accept,
    ``flight_delay`` the in-flight time on the channel.  Any timestamp may
    be ``None`` on a sliced trace or for probes still in flight.
    """

    tag: ProbeTag
    source: Hashable
    target: Hashable
    edge: Hashable
    sent_at: float | None = None
    net_sent_at: float | None = None
    net_delivered_at: float | None = None
    received_at: float | None = None
    #: P3 verdict at receipt: was the edge (source -> target) black?  None
    #: while the probe is still in flight.
    meaningful: bool | None = None

    @property
    def latency(self) -> float | None:
        """End-to-end protocol latency of the hop, when both ends were seen."""
        if self.sent_at is None or self.received_at is None:
            return None
        return self.received_at - self.sent_at

    @property
    def queue_delay(self) -> float | None:
        if self.sent_at is None or self.net_sent_at is None:
            return None
        return self.net_sent_at - self.sent_at

    @property
    def flight_delay(self) -> float | None:
        if self.net_sent_at is None or self.net_delivered_at is None:
            return None
        return self.net_delivered_at - self.net_sent_at

    @property
    def delivered(self) -> bool:
        return self.received_at is not None


@dataclass
class ProbeComputationSpan:
    """One probe computation ``(i, n)``, end to end."""

    tag: ProbeTag
    initiator: int
    initiated_at: float | None
    hops: list[ProbeHop] = field(default_factory=list)
    declared_at: float | None = None
    declared_by: object | None = None
    outcome: SpanOutcome = SpanOutcome.FIZZLED
    #: time of the last event attributed to this computation
    end_time: float = 0.0

    @property
    def detection_latency(self) -> float | None:
        """Initiation-to-declaration latency (the E5 'detection latency'
        measured per computation), or None if A1 never fired."""
        if self.initiated_at is None or self.declared_at is None:
            return None
        return self.declared_at - self.initiated_at

    @property
    def probes_sent(self) -> int:
        return sum(1 for hop in self.hops if hop.sent_at is not None)

    @property
    def meaningful_probes(self) -> int:
        return sum(1 for hop in self.hops if hop.meaningful)

    def probes_per_edge(self) -> dict[Hashable, int]:
        """Sent-probe count per wait-for-graph edge (section 4 accounting)."""
        counts: dict[Hashable, int] = {}
        for hop in self.hops:
            if hop.sent_at is not None:
                counts[hop.edge] = counts.get(hop.edge, 0) + 1
        return counts

    @property
    def max_probes_on_one_edge(self) -> int:
        counts = self.probes_per_edge()
        return max(counts.values()) if counts else 0

    def check_bounds(self, n_vertices: int | None = None) -> None:
        """Machine-check the section 4 bounds for this one computation.

        * **one probe per edge**: a vertex propagates at most once per
          computation, so no edge may carry two probes of the same tag;
        * with ``n_vertices`` given, **at most |E| probes overall**, where
          ``|E| <= n(n-1)`` for the simple wait-for digraph (on a simple
          cycle this specialises to the paper's "at most N probes").

        Raises :class:`~repro.errors.BoundViolation` on the first breach.
        """
        for edge, count in sorted(
            self.probes_per_edge().items(), key=lambda item: str(item[0])
        ):
            if count > 1:
                raise BoundViolation(
                    "one-probe-per-edge",
                    f"computation {self.tag} sent {count} probes over edge "
                    f"{edge!r} (section 4 allows exactly one)",
                )
        if n_vertices is not None:
            limit = n_vertices * (n_vertices - 1)
            if self.probes_sent > limit:
                raise BoundViolation(
                    "probes-le-edges",
                    f"computation {self.tag} sent {self.probes_sent} probes, "
                    f"more than the {limit} possible wait-for edges among "
                    f"{n_vertices} vertices",
                )


def check_probe_bounds(
    spans: Iterable[ProbeComputationSpan], n_vertices: int | None = None
) -> None:
    """Run :meth:`ProbeComputationSpan.check_bounds` over every span."""
    for span in spans:
        span.check_bounds(n_vertices=n_vertices)


def _tag_of(value: Any) -> ProbeTag | None:
    return value if isinstance(value, ProbeTag) else None


def build_spans(
    source: Tracer | Iterable[TraceEvent],
    schema: SpanSchema = BASIC_SPAN_SCHEMA,
) -> list[ProbeComputationSpan]:
    """Fold a trace into one span per probe computation tag.

    ``source`` is a live :class:`~repro.sim.trace.Tracer` or any iterable
    of events (e.g. re-imported via :func:`repro.obs.export.read_jsonl`).
    Events of other categories are ignored, so the full mixed trace of a
    run can be passed as-is.  Spans come back ordered by initiation time.
    """
    spans: dict[ProbeTag, ProbeComputationSpan] = {}
    # FIFO queues of hops awaiting their receive / net events, keyed by
    # (tag, edge) and (tag, sender, destination) respectively.  FIFO per
    # key mirrors the network's per-channel FIFO guarantee.
    awaiting_receive: dict[tuple[ProbeTag, Hashable], deque[ProbeHop]] = {}
    awaiting_net: dict[tuple[ProbeTag, Hashable, Hashable], deque[ProbeHop]] = {}

    def span_for(tag: ProbeTag, time: float) -> ProbeComputationSpan:
        span = spans.get(tag)
        if span is None:
            span = ProbeComputationSpan(
                tag=tag, initiator=tag.initiator, initiated_at=None, end_time=time
            )
            spans[tag] = span
        span.end_time = max(span.end_time, time)
        return span

    for event in source:
        category = event.category
        if category == schema.initiated:
            tag = _tag_of(event["tag"])
            if tag is None:
                continue
            span = span_for(tag, event.time)
            if span.initiated_at is None:
                span.initiated_at = event.time
        elif category == schema.probe_sent:
            tag = _tag_of(event["tag"])
            if tag is None:
                continue
            span = span_for(tag, event.time)
            sender, destination = schema.sent_endpoints(event)
            hop = ProbeHop(
                tag=tag,
                source=sender,
                target=destination,
                edge=schema.edge_of(event),
                sent_at=event.time,
            )
            span.hops.append(hop)
            awaiting_receive.setdefault((tag, hop.edge), deque()).append(hop)
            awaiting_net.setdefault((tag, sender, destination), deque()).append(hop)
        elif category == schema.probe_received:
            tag = _tag_of(event["tag"])
            if tag is None:
                continue
            span = span_for(tag, event.time)
            edge = schema.edge_of(event)
            pending = awaiting_receive.get((tag, edge))
            if pending:
                hop = pending.popleft()
            else:
                # Sliced trace: the matching send was not recorded.
                source_pid: Hashable = event.details.get("source")
                target_pid: Hashable = event.details.get(
                    "target", event.details.get("site")
                )
                hop = ProbeHop(
                    tag=tag, source=source_pid, target=target_pid, edge=edge
                )
                span.hops.append(hop)
            hop.received_at = event.time
            meaningful = event.details.get("meaningful")
            hop.meaningful = bool(meaningful) if meaningful is not None else None
        elif category == schema.declared:
            tag = _tag_of(event["tag"])
            if tag is None:
                continue
            span = span_for(tag, event.time)
            if span.declared_at is None:
                span.declared_at = event.time
                span.declared_by = schema.declared_by(event)
        elif category in (categories.NET_SENT, categories.NET_DELIVERED):
            message = event.details.get("message")
            tag = _tag_of(getattr(message, "tag", None))
            if tag is None:
                continue
            key = (tag, event["sender"], event["destination"])
            pending = awaiting_net.get(key)
            if not pending:
                continue
            if category == categories.NET_SENT:
                # First hop in the queue that has no net-accept time yet.
                for hop in pending:
                    if hop.net_sent_at is None:
                        hop.net_sent_at = event.time
                        span_for(tag, event.time)
                        break
            else:
                hop = pending[0]
                hop.net_delivered_at = event.time
                pending.popleft()
                span_for(tag, event.time)

    superseded: dict[int, int] = {}
    for tag in spans:
        latest = superseded.get(tag.initiator)
        if latest is None or tag.sequence > latest:
            superseded[tag.initiator] = tag.sequence
    for tag, span in spans.items():
        if span.declared_at is not None:
            span.outcome = SpanOutcome.DEADLOCK
        elif tag.sequence < superseded[tag.initiator]:
            span.outcome = SpanOutcome.SUPERSEDED
        else:
            span.outcome = SpanOutcome.FIZZLED

    def sort_key(span: ProbeComputationSpan) -> tuple[float, int, int]:
        start = span.initiated_at if span.initiated_at is not None else span.end_time
        return (start, span.tag.initiator, span.tag.sequence)

    return sorted(spans.values(), key=sort_key)
