"""Transport-neutral live metrics: labelled families + Prometheus text.

The simulator's :class:`~repro.sim.metrics.MetricsRegistry` is built for
post-run accounting -- exact quantiles, unbounded value lists, no labels.
A *live* monitor needs the opposite trade: bounded-memory aggregates
(bucketed histograms, high-water gauges) addressable by label sets and
exportable in the Prometheus text format.  This module provides that
layer, plus :class:`TransportTelemetry` -- the bridge that populates it
from any :class:`~repro.core.transport.Transport` backend through a
category-scoped tracer subscription, so the same wiring observes the
deterministic simulator and the live asyncio runtime.

Everything here is stamped with **virtual** time (the transport's clock);
per lint rule RPX002 this module never reads the wall clock, which keeps
sim-backed telemetry deterministic and replayable.

Metric families follow Prometheus conventions: ``*_total`` counters,
``*_units`` for virtual-time durations (they are not seconds), histogram
exposition as cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  DESIGN.md carries the table mapping each exported family to
its paper quantity.
"""

from __future__ import annotations

import json
import math
import re
from collections import deque
from collections.abc import Callable, Hashable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import BoundViolation, ConfigurationError
from repro.obs.spans import SCHEMAS_BY_MODEL, ProbeComputationSpan, SpanSchema
from repro.obs.stream import SpanSink, StreamingSpanEngine
from repro.sim import categories
from repro.sim.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.registry import VariantCapabilities
    from repro.core.transport import Transport

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default histogram buckets, in virtual time units.  Conformance-scale
#: runs live in single digits; big grids reach a few hundred units.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class CounterMetric:
    """One monotone series within a counter family."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters cannot decrease (amount={amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeMetric:
    """One level series: current value plus high-water bookkeeping.

    ``max`` and ``observations`` exist for samplers (the simulator
    profiler reuses this as its queue-depth primitive): every ``set``
    counts as one observation and ratchets the high-water mark.
    """

    __slots__ = ("_max", "_observations", "_value")

    def __init__(self) -> None:
        self._value = 0.0
        self._max = 0.0
        self._observations = 0

    def set(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("gauges cannot be set to NaN")
        self._value = value
        if value > self._max:
            self._max = value
        self._observations += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        """Highest value ever set (high-water mark)."""
        return self._max

    @property
    def observations(self) -> int:
        """Number of ``set``/``inc``/``dec`` calls so far."""
        return self._observations


class HistogramMetric:
    """One bucketed distribution series (bounded memory, any run length)."""

    __slots__ = ("_bucket_counts", "_buckets", "_count", "_sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._buckets = tuple(buckets)
        self._bucket_counts = [0] * len(self._buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("histograms cannot observe NaN")
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                self._bucket_counts[i] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("histogram is empty")
        return self._sum / self._count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(+Inf, count)``."""
        pairs = [
            (bound, count)
            for bound, count in zip(self._buckets, self._bucket_counts)
        ]
        pairs.append((math.inf, self._count))
        return pairs


class MetricFamily:
    """A named metric plus its labelled children.

    ``labels(**values)`` addresses one child series; families declared
    with no label names expose the single unlabelled child through the
    convenience proxies (``inc``/``set``/``observe``/...).
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], Any] = {}

    def _new_child(self) -> Any:
        raise NotImplementedError

    def labels(self, **values: object) -> Any:
        if tuple(sorted(values)) != tuple(sorted(self.labelnames)):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(values))}"
            )
        key = tuple(str(values[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _default(self) -> Any:
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "address a series with .labels(...)"
            )
        return self.labels()

    @property
    def series(self) -> dict[tuple[str, ...], Any]:
        """All children, keyed by label-value tuple (exposition order)."""
        return dict(sorted(self._children.items()))

    def _labelset(self, key: tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class CounterFamily(MetricFamily):
    kind = "counter"

    def _new_child(self) -> CounterMetric:
        return CounterMetric()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return float(self._default().value)

    def render(self) -> list[str]:
        return [
            f"{self.name}{self._labelset(key)} {_format_value(child.value)}"
            for key, child in self.series.items()
        ]

    def snapshot_series(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": child.value}
            for key, child in self.series.items()
        ]


class GaugeFamily(MetricFamily):
    kind = "gauge"

    def _new_child(self) -> GaugeMetric:
        return GaugeMetric()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return float(self._default().value)

    @property
    def max(self) -> float:
        return float(self._default().max)

    @property
    def observations(self) -> int:
        return int(self._default().observations)

    def render(self) -> list[str]:
        return [
            f"{self.name}{self._labelset(key)} {_format_value(child.value)}"
            for key, child in self.series.items()
        ]

    def snapshot_series(self) -> list[dict[str, Any]]:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "value": child.value,
                "max": child.max,
            }
            for key, child in self.series.items()
        ]


class HistogramFamily(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        ordered = tuple(buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = ordered

    def _new_child(self) -> HistogramMetric:
        return HistogramMetric(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def count(self) -> int:
        return int(self._default().count)

    @property
    def sum(self) -> float:
        return float(self._default().sum)

    def render(self) -> list[str]:
        lines: list[str] = []
        for key, child in self.series.items():
            for le, cumulative in child.cumulative_buckets():
                extra = f'le="{_format_value(le)}"'
                lines.append(
                    f"{self.name}_bucket{self._labelset(key, extra)} {cumulative}"
                )
            lines.append(
                f"{self.name}_sum{self._labelset(key)} {_format_value(child.sum)}"
            )
            lines.append(f"{self.name}_count{self._labelset(key)} {child.count}")
        return lines

    def snapshot_series(self) -> list[dict[str, Any]]:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "count": child.count,
                "sum": child.sum,
                "buckets": [
                    {"le": le if le != math.inf else "+Inf", "count": count}
                    for le, count in child.cumulative_buckets()
                ],
            }
            for key, child in self.series.items()
        ]


class TelemetryRegistry:
    """Owner of labelled metric families, with Prometheus exposition.

    ``counter``/``gauge``/``histogram`` create on first use and memoise;
    re-declaring a name with a different kind or label set is an error
    (silent divergence would corrupt the exposition).
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        cls: type[MetricFamily],
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        **kwargs: Any,
    ) -> Any:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != labelnames:
                raise ConfigurationError(
                    f"metric {name!r} already declared as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> CounterFamily:
        family: CounterFamily = self._family(CounterFamily, name, help, labelnames)
        return family

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> GaugeFamily:
        family: GaugeFamily = self._family(GaugeFamily, name, help, labelnames)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        family: HistogramFamily = self._family(
            HistogramFamily, name, help, labelnames, buckets=buckets
        )
        return family

    @property
    def families(self) -> tuple[MetricFamily, ...]:
        """Every declared family, sorted by name (exposition order)."""
        return tuple(self._families[name] for name in sorted(self._families))

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every family (the JSONL snapshot payload)."""
        return {
            family.name: {
                "kind": family.kind,
                "help": family.help,
                "series": family.snapshot_series(),
            }
            for family in self.families
        }


class TransportTelemetry:
    """Populate a :class:`TelemetryRegistry` from a running transport.

    One category-scoped tracer subscription covers the network layer
    (per-channel in-flight gauges, per-handler latency histograms) and,
    per span schema, a :class:`~repro.obs.stream.StreamingSpanEngine`
    turns settled computations into outcome counters and
    detection-latency histograms.  Works identically on
    :class:`~repro.sim.transport.SimTransport` and
    :class:`~repro.live.transport.AsyncioTransport` -- the subscription
    rides the same :class:`~repro.sim.trace.Tracer` either backend owns.

    Parameters
    ----------
    transport:
        The backend to observe.  :meth:`attach` must be called before
        the run starts (or use the constructor's ``attach=True``).
    schemas:
        Span schemas to fold; defaults to every registered variant model
        that declares a taxonomy.
    n_vertices / strict_bounds:
        Forwarded to each span engine's online section 4 checking.
    span_sink:
        Optional callback receiving every settled span (the monitor's
        ``--spans-out`` stream).
    """

    def __init__(
        self,
        transport: "Transport",
        *,
        schemas: Iterable[SpanSchema] | None = None,
        registry: TelemetryRegistry | None = None,
        n_vertices: int | None = None,
        strict_bounds: bool = False,
        span_sink: SpanSink | None = None,
        attach: bool = True,
    ) -> None:
        self.transport = transport
        self.registry = registry if registry is not None else TelemetryRegistry()
        if schemas is None:
            schemas = SCHEMAS_BY_MODEL.values()
        self.schemas = tuple(schemas)
        self.span_sink = span_sink
        #: detection latencies (virtual units) of every deadlock span, in
        #: settlement order -- the monitor's SLO input.
        self.detection_latencies: list[float] = []
        #: snapshots taken so far (see :meth:`snapshot_line`).
        self.snapshots = 0
        self._attached = False
        #: FIFO of (send time, message type) per channel, for latency
        #: matching; P4 FIFO delivery makes the popleft correct.
        self._in_transit: dict[tuple[Hashable, Hashable], deque[tuple[float, str]]] = {}

        registry_ = self.registry
        self._in_flight = registry_.gauge(
            "repro_channel_in_flight",
            "Messages sent but not yet delivered, per channel",
            labelnames=("src", "dst"),
        )
        self._messages = registry_.counter(
            "repro_messages_total",
            "Messages sent, per channel and message type",
            labelnames=("src", "dst", "type"),
        )
        self._handler_latency = registry_.histogram(
            "repro_handler_latency_units",
            "Send-to-delivery latency in virtual units, per handler",
            labelnames=("handler",),
        )
        self._edge_probes = registry_.counter(
            "repro_edge_probes_total",
            "Probes sent per wait-for edge (section 4: <= 1 per computation)",
            labelnames=("model", "edge"),
        )
        self._computations = registry_.counter(
            "repro_computations_total",
            "Settled probe computations (i, n), per outcome",
            labelnames=("model", "outcome"),
        )
        self._detection_latency = registry_.histogram(
            "repro_detection_latency_units",
            "Initiation-to-declaration latency (virtual units) of deadlock "
            "computations",
            labelnames=("model",),
        )
        self._probes_per_computation = registry_.histogram(
            "repro_probes_per_computation",
            "Probes sent per settled computation (section 4 bounds |E|)",
            labelnames=("model",),
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self._violations = registry_.counter(
            "repro_bound_violations_total",
            "Online section 4 bound violations",
            labelnames=("model", "bound"),
        )
        self._open_computations = registry_.gauge(
            "repro_open_computations",
            "Probe computations currently unresolved, per model",
            labelnames=("model",),
        )
        self._declarations = registry_.counter(
            "repro_declarations_total",
            "Deadlock declarations (step A1), per model",
            labelnames=("model",),
        )

        self.engines: dict[str, StreamingSpanEngine] = {}
        self._lifecycle: dict[str, tuple[str, SpanSchema]] = {}
        for schema in self.schemas:
            engine = StreamingSpanEngine(
                schema,
                n_vertices=n_vertices,
                strict_bounds=strict_bounds,
                on_span=self._make_span_handler(schema.model),
                on_violation=self._make_violation_handler(schema.model),
            )
            self.engines[schema.model] = engine
            self._lifecycle[schema.probe_sent] = ("probe_sent", schema)
            self._lifecycle[schema.declared] = ("declared", schema)
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------

    def _make_span_handler(self, model: str) -> SpanSink:
        def on_span(span: ProbeComputationSpan) -> None:
            self._computations.labels(model=model, outcome=span.outcome.value).inc()
            self._probes_per_computation.labels(model=model).observe(
                float(span.probes_sent)
            )
            latency = span.detection_latency
            if latency is not None:
                self._detection_latency.labels(model=model).observe(latency)
                self.detection_latencies.append(latency)
            if self.span_sink is not None:
                self.span_sink(span)

        return on_span

    def _make_violation_handler(self, model: str) -> Callable[[BoundViolation], None]:
        def on_violation(violation: BoundViolation) -> None:
            self._violations.labels(model=model, bound=violation.bound).inc()

        return on_violation

    # ------------------------------------------------------------------
    # Network-layer plumbing
    # ------------------------------------------------------------------

    def _on_event(self, event: TraceEvent) -> None:
        category = event.category
        if category == categories.NET_SENT:
            sender = event["sender"]
            destination = event["destination"]
            type_name = type(event.details.get("message")).__name__
            self._in_flight.labels(src=sender, dst=destination).inc()
            self._messages.labels(src=sender, dst=destination, type=type_name).inc()
            self._in_transit.setdefault((sender, destination), deque()).append(
                (event.time, type_name)
            )
        elif category == categories.NET_DELIVERED:
            sender = event["sender"]
            destination = event["destination"]
            self._in_flight.labels(src=sender, dst=destination).dec()
            pending = self._in_transit.get((sender, destination))
            if pending:
                sent_at, type_name = pending.popleft()
                self._handler_latency.labels(handler=f"deliver {type_name}").observe(
                    event.time - sent_at
                )
        else:
            action = self._lifecycle.get(category)
            if action is None:
                return
            verb, schema = action
            if verb == "probe_sent":
                self._edge_probes.labels(
                    model=schema.model, edge=schema.edge_of(event)
                ).inc()
            elif verb == "declared":
                self._declarations.labels(model=schema.model).inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Subscribe everything to the transport's tracer (idempotent)."""
        if self._attached:
            return
        tracer = self.transport.tracer
        tracer.subscribe(
            self._on_event,
            categories=(
                categories.NET_SENT,
                categories.NET_DELIVERED,
                *self._lifecycle,
            ),
        )
        for engine in self.engines.values():
            engine.attach(tracer)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        tracer = self.transport.tracer
        tracer.unsubscribe(self._on_event)
        for engine in self.engines.values():
            engine.detach(tracer)
        self._attached = False

    def finish(self) -> list[ProbeComputationSpan]:
        """Flush every engine's unresolved computations (end of run)."""
        flushed: list[ProbeComputationSpan] = []
        for engine in self.engines.values():
            flushed.extend(engine.finish())
        self._update_open_gauges()
        return flushed

    def _update_open_gauges(self) -> None:
        for model, engine in self.engines.items():
            self._open_computations.labels(model=model).set(
                float(engine.open_computations)
            )

    # ------------------------------------------------------------------
    # Derived views & export
    # ------------------------------------------------------------------

    @property
    def bound_violations(self) -> int:
        return sum(len(engine.violations) for engine in self.engines.values())

    def in_flight_by_destination(self) -> dict[str, float]:
        """Queue depth per receiving node: sum of in-flight on its inbound
        channels (the monitor console's per-vertex column)."""
        depths: dict[str, float] = {}
        for key, child in self._in_flight.series.items():
            dst = key[1]
            depths[dst] = depths.get(dst, 0.0) + child.value
        return depths

    def render_prometheus(self) -> str:
        self._update_open_gauges()
        return self.registry.render_prometheus()

    def snapshot(self, now: float) -> dict[str, Any]:
        """One JSON-able snapshot of the registry plus transport counters.

        ``now`` is the transport's virtual clock; this module never reads
        a clock itself (RPX002).
        """
        self._update_open_gauges()
        self.snapshots += 1
        families = self.registry.snapshot()
        document: dict[str, Any] = {
            "schema": "repro.obs.metrics-snapshot/1",
            "now": now,
            "sequence": self.snapshots,
            "families": families,
            "transport_counters": self.transport.metrics.snapshot(),
        }
        tracer = self.transport.tracer
        if tracer.wants(categories.OBS_METRICS_SNAPSHOT):
            tracer.record(
                now,
                categories.OBS_METRICS_SNAPSHOT,
                sequence=self.snapshots,
                families=len(families),
            )
        return document

    def snapshot_line(self, now: float) -> str:
        """One compact JSONL line for the periodic snapshot export."""
        return json.dumps(self.snapshot(now), sort_keys=True, default=str)


def telemetry_for_variant(
    transport: "Transport",
    capabilities: "VariantCapabilities | None",
    *,
    n_vertices: int | None = None,
    span_sink: SpanSink | None = None,
    registry: TelemetryRegistry | None = None,
    strict_bounds: bool = False,
) -> TransportTelemetry:
    """Attach the standard telemetry bridge for one registered variant.

    The one blessed way to wire :class:`TransportTelemetry` to a run of a
    known variant: the span schema is resolved from the variant's
    capabilities (a variant without a probe taxonomy -- e.g. the timeout
    baseline -- gets network metrics only, no span engine), and the
    subscription rides ``transport.tracer`` whichever backend owns it --
    simulator, asyncio runtime, or the multi-process cluster coordinator.
    ``repro monitor``, the observability benchmarks, and the cluster
    runner's coordinator-side aggregation all share this helper instead
    of hand-rolling the schema lookup.
    """
    schemas: tuple[SpanSchema, ...] = ()
    if capabilities is not None and capabilities.taxonomy is not None:
        schemas = (SCHEMAS_BY_MODEL[capabilities.model],)
    return TransportTelemetry(
        transport,
        schemas=schemas,
        registry=registry,
        n_vertices=n_vertices,
        strict_bounds=strict_bounds,
        span_sink=span_sink,
    )
