"""Run one registered detector variant on the live asyncio runtime.

The driver behind ``repro live``: build an
:class:`~repro.live.transport.AsyncioTransport`, hand it to the variant's
conformance callable (which assembles the same system it runs on the
simulator), and report the outcome with wall-clock detection latency.
Scenarios beyond ``deadlock`` / ``clean`` resolve through the workload
registry (``random`` or any family name that can drive the variant's
model) via :func:`~repro.workloads.provision.provision_workload`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.conformance import ConformanceOutcome, conformance_workload
from repro.core.registry import get_variant
from repro.core.scheduling import PolicySpec, coerce_policy_spec
from repro.live.transport import AsyncioTransport
from repro.workloads.provision import provision_workload, resolve_scenario_spec


@dataclass(frozen=True)
class LiveReport:
    """Outcome of one live run, for humans and tests alike."""

    outcome: ConformanceOutcome
    #: wall seconds from transport start to the end of the run.
    wall_seconds: float
    #: wall seconds until the first declaration (``None`` if silent).
    detection_latency_seconds: float | None
    time_scale: float

    @property
    def detected(self) -> bool:
        return self.outcome.declarations > 0

    @property
    def sound(self) -> bool:
        return self.outcome.soundness_violations == 0


def run_live(
    variant_name: str,
    *,
    scenario: str = "deadlock",
    seed: int = 0,
    time_scale: float = 0.005,
    timeout: float = 30.0,
    n_vertices: int | None = None,
    duration: float | None = None,
    policy: PolicySpec | str | None = None,
) -> LiveReport:
    """Run one scenario on the wall clock.

    ``timeout`` bounds the whole run in wall seconds; a live system that
    neither declares nor quiesces inside it raises
    :class:`~repro.errors.SimulationError` (via the transport's driver).
    ``n_vertices`` / ``duration`` override the family example's topology
    size and horizon for registry-driven scenarios (ignored by the
    ``deadlock`` / ``clean`` conformance pair).  ``policy`` (a
    :class:`~repro.core.scheduling.PolicySpec` or policy-id string)
    replaces the variant's default initiation scheduling; with a policy,
    the conformance pair also routes through the workload registry so
    the policy applies there too.
    """
    variant = get_variant(variant_name)
    policy_spec = coerce_policy_spec(policy)
    if scenario not in ("deadlock", "clean"):
        # Fail fast on capability mismatches before the transport starts.
        resolve_scenario_spec(variant, scenario, seed=seed)
    transport = AsyncioTransport(
        seed=seed, time_scale=time_scale, max_wall_seconds=timeout
    )
    started = time.perf_counter()
    try:
        if scenario in ("deadlock", "clean") and policy_spec is None:
            outcome = variant.conformance(scenario, seed, transport=transport)
        else:
            if scenario in ("deadlock", "clean"):
                spec = conformance_workload(
                    variant.capabilities.model, scenario
                ).with_seed(seed)
            else:
                spec = resolve_scenario_spec(
                    variant,
                    scenario,
                    seed=seed,
                    n_vertices=n_vertices,
                    duration=duration,
                )
            run = provision_workload(
                variant, spec, transport=transport, policy=policy_spec
            )
            run.run_to_quiescence()
            outcome = run.summarize()
    finally:
        transport.close()
    wall = time.perf_counter() - started
    latency = (
        None
        if outcome.first_declaration_at is None
        else outcome.first_declaration_at * time_scale
    )
    return LiveReport(
        outcome=outcome,
        wall_seconds=wall,
        detection_latency_seconds=latency,
        time_scale=time_scale,
    )
