"""Run one registered detector variant on the live asyncio runtime.

The driver behind ``repro live``: build an
:class:`~repro.live.transport.AsyncioTransport`, hand it to the variant's
conformance callable (which assembles the same system it runs on the
simulator), and report the outcome with wall-clock detection latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.conformance import ConformanceOutcome
from repro.core.registry import get_variant
from repro.live.transport import AsyncioTransport


@dataclass(frozen=True)
class LiveReport:
    """Outcome of one live run, for humans and tests alike."""

    outcome: ConformanceOutcome
    #: wall seconds from transport start to the end of the run.
    wall_seconds: float
    #: wall seconds until the first declaration (``None`` if silent).
    detection_latency_seconds: float | None
    time_scale: float

    @property
    def detected(self) -> bool:
        return self.outcome.declarations > 0

    @property
    def sound(self) -> bool:
        return self.outcome.soundness_violations == 0


def run_live(
    variant_name: str,
    *,
    scenario: str = "deadlock",
    seed: int = 0,
    time_scale: float = 0.005,
    timeout: float = 30.0,
) -> LiveReport:
    """Run one conformance scenario on the wall clock.

    ``timeout`` bounds the whole run in wall seconds; a live system that
    neither declares nor quiesces inside it raises
    :class:`~repro.errors.SimulationError` (via the transport's driver).
    """
    variant = get_variant(variant_name)
    transport = AsyncioTransport(
        seed=seed, time_scale=time_scale, max_wall_seconds=timeout
    )
    started = time.perf_counter()
    try:
        outcome = variant.conformance(scenario, seed, transport=transport)
    finally:
        transport.close()
    wall = time.perf_counter() - started
    latency = (
        None
        if outcome.first_declaration_at is None
        else outcome.first_declaration_at * time_scale
    )
    return LiveReport(
        outcome=outcome,
        wall_seconds=wall,
        detection_latency_seconds=latency,
        time_scale=time_scale,
    )
