"""Live (wall-clock) runtime: nodes as asyncio tasks behind the seam.

The deterministic simulator answers "what does the protocol do on this
exact schedule"; this package answers "does the same node code, byte for
byte, behave on a real concurrent runtime".  :class:`AsyncioTransport`
implements the :class:`~repro.core.transport.Transport` contract with an
asyncio event loop: per-channel FIFO delivery queues, configurable delay
injection, wall-clock timers scaled into virtual units, and a
run-until-declaration driver with a wall-clock timeout.

Because delivery interleavings now come from the host scheduler, live
runs are *not* reproducible -- but the paper's claims (QRP2 soundness at
the instant of declaration, QRP1 completeness) are schedule-free: they
hold for every P4-legal delivery order.  The live conformance suite
exercises exactly that.
"""

from __future__ import annotations

from repro.live.runner import LiveReport, run_live
from repro.live.transport import AsyncioTransport

__all__ = ["AsyncioTransport", "LiveReport", "run_live"]
