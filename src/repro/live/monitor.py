"""The ``repro monitor`` runtime console: watch a live run as it happens.

Where :mod:`repro.live.runner` drives a scenario to quiescence and
reports afterwards, this module *interleaves* the run with observation:
the wall-clock run is sliced into ticks, and between slices the monitor
renders a one-line console status (virtual clock, per-node queue depth,
in-flight probes, open computations, declarations, SLO state) and
exports telemetry -- a Prometheus text file rewritten in place, a JSONL
stream of settled spans, and a JSONL stream of metric snapshots.

All telemetry flows through :class:`~repro.obs.metrics.TransportTelemetry`
riding a category-scoped tracer subscription, so the run itself executes
with ``trace=False``: nothing is buffered, and a monitored run can in
principle go on forever (the span engine evicts settled computations;
see :mod:`repro.obs.stream`).

This module lives in the ``live`` tier (not ``obs``) because it owns a
wall-clock run loop: layering rule RPX004 lets ``live`` import ``obs``
but not the reverse, and the RPX002 wall-clock rule scopes ``obs`` out
of ``time.sleep`` while the live driver tier may pace itself freely.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.core.conformance import ConformanceOutcome, conformance_workload
from repro.core.registry import MonitorSetup, get_variant
from repro.core.scheduling import PolicySpec, coerce_policy_spec
from repro.errors import ConfigurationError
from repro.live.transport import AsyncioTransport
from repro.obs.metrics import TransportTelemetry, telemetry_for_variant
from repro.obs.spans import ProbeComputationSpan
from repro.obs.stream import span_to_json
from repro.workloads.provision import provision_workload, resolve_scenario_spec


@dataclass(frozen=True)
class MonitorReport:
    """Outcome of one monitored run, for humans, JSON, and exit codes."""

    variant: str
    scenario: str
    outcome: ConformanceOutcome
    #: wall seconds the monitor observed the run for.
    wall_seconds: float
    #: console/export ticks rendered.
    ticks: int
    #: spans settled and streamed during the run (incl. the final flush).
    spans_emitted: int
    #: online section 4 bound violations recorded by the span engines.
    bound_violations: int
    time_scale: float
    #: the detection-latency SLO, wall seconds per declaration (None = off).
    slo_seconds: float | None
    #: wall-clock detection latencies of the deadlock computations seen.
    detection_latencies_seconds: tuple[float, ...] = ()

    @property
    def detected(self) -> bool:
        return self.outcome.declarations > 0

    @property
    def sound(self) -> bool:
        return self.outcome.soundness_violations == 0

    @property
    def slo_violations(self) -> int:
        if self.slo_seconds is None:
            return 0
        return sum(
            1 for latency in self.detection_latencies_seconds
            if latency > self.slo_seconds
        )

    @property
    def ok(self) -> bool:
        """The CI gate: sound, within bounds and SLO, and -- on a deadlock
        scenario -- the deadlock was actually detected."""
        if not self.sound or self.bound_violations or self.slo_violations:
            return False
        if self.scenario == "deadlock" and not self.detected:
            return False
        return True

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": "repro.monitor-report/1",
            "variant": self.variant,
            "scenario": self.scenario,
            "ok": self.ok,
            "detected": self.detected,
            "sound": self.sound,
            "declarations": self.outcome.declarations,
            "soundness_violations": self.outcome.soundness_violations,
            "complete": self.outcome.complete,
            "bound_violations": self.bound_violations,
            "slo_seconds": self.slo_seconds,
            "slo_violations": self.slo_violations,
            "detection_latencies_seconds": list(self.detection_latencies_seconds),
            "spans_emitted": self.spans_emitted,
            "ticks": self.ticks,
            "wall_seconds": self.wall_seconds,
            "time_scale": self.time_scale,
        }


@dataclass
class _Exports:
    """The monitor's output files, opened lazily and always closed."""

    metrics_path: Path | None = None
    spans_file: IO[str] | None = None
    snapshots_file: IO[str] | None = None
    spans_written: int = field(default=0)

    def write_span(self, span_json: dict[str, Any]) -> None:
        if self.spans_file is not None:
            self.spans_file.write(json.dumps(span_json, sort_keys=True) + "\n")
            self.spans_written += 1

    def write_prometheus(self, text: str) -> None:
        if self.metrics_path is not None:
            self.metrics_path.write_text(text)

    def write_snapshot(self, line: str) -> None:
        if self.snapshots_file is not None:
            self.snapshots_file.write(line + "\n")

    def close(self) -> None:
        for handle in (self.spans_file, self.snapshots_file):
            if handle is not None:
                handle.close()


def _render_tick(
    *,
    transport: AsyncioTransport,
    telemetry: TransportTelemetry,
    declarations: int,
    slo_seconds: float | None,
    slo_violations: int,
    stream: IO[str],
) -> None:
    depths = telemetry.in_flight_by_destination()
    total_in_flight = sum(depths.values())
    open_comps = sum(
        engine.open_computations for engine in telemetry.engines.values()
    )
    settled = sum(engine.emitted for engine in telemetry.engines.values())
    if slo_seconds is None:
        slo = "off"
    elif slo_violations:
        slo = f"VIOLATED x{slo_violations}"
    else:
        slo = "ok"
    per_node = " ".join(
        f"{node}:{int(depth)}" for node, depth in sorted(depths.items())
    )
    stream.write(
        f"t={transport.now:8.1f}u  in-flight={int(total_in_flight):3d}"
        f"  open={open_comps:3d}  settled={settled:4d}"
        f"  declared={declarations:3d}  slo={slo}"
        + (f"  queues[{per_node}]" if per_node else "")
        + "\n"
    )
    stream.flush()


def _setup_scenario(
    variant: Any,
    scenario: str,
    seed: int,
    transport: AsyncioTransport,
    policy: PolicySpec | None = None,
) -> MonitorSetup:
    """Assemble the system to monitor without running it.

    The ``deadlock`` / ``clean`` conformance pair goes through the
    variant's monitor seam; anything else resolves through the workload
    registry (``random`` or a family name driving the variant's model).
    A ``policy`` routes the conformance pair through the registry too,
    so the requested initiation scheduling applies everywhere.
    """
    if scenario in ("deadlock", "clean"):
        if policy is None:
            assert variant.monitor is not None  # gated by run_monitor
            setup: MonitorSetup = variant.monitor(
                scenario, seed, transport=transport
            )
            return setup
        spec = conformance_workload(
            variant.capabilities.model, scenario
        ).with_seed(seed)
    else:
        spec = resolve_scenario_spec(variant, scenario, seed=seed)
    run = provision_workload(variant, spec, transport=transport, policy=policy)
    return MonitorSetup(system=run.system, summarize=run.summarize, n_nodes=spec.n)


def run_monitor(
    variant_name: str,
    *,
    scenario: str = "deadlock",
    seed: int = 0,
    duration: float = 5.0,
    interval: float = 0.5,
    time_scale: float = 0.005,
    slo_seconds: float | None = None,
    metrics_out: str | Path | None = None,
    spans_out: str | Path | None = None,
    snapshots_out: str | Path | None = None,
    stream: IO[str] | None = None,
    policy: PolicySpec | str | None = None,
) -> MonitorReport:
    """Run one scenario live and observe it tick by tick.

    Parameters
    ----------
    duration:
        Total wall seconds to observe.  The underlying system usually
        quiesces earlier (the standard scenarios are tiny); the monitor
        keeps watching -- and exporting -- until the budget ends, which
        is exactly what a monitor is for.
    interval:
        Wall seconds between console/export ticks.
    slo_seconds:
        Detection-latency SLO in wall seconds (virtual latency x
        ``time_scale``); ``None`` disables the check.
    metrics_out / spans_out / snapshots_out:
        Prometheus text file (rewritten each tick), settled-span JSONL
        stream, and metrics-snapshot JSONL stream.
    stream:
        Console destination; ``None`` renders nothing.
    policy:
        A :class:`~repro.core.scheduling.PolicySpec` or policy-id string
        replacing the variant's default initiation scheduling.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if interval <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval}")
    variant = get_variant(variant_name)
    policy_spec = coerce_policy_spec(policy)
    if scenario in ("deadlock", "clean") and variant.monitor is None:
        raise ConfigurationError(
            f"variant {variant_name!r} does not support live monitoring"
        )
    exports = _Exports(
        metrics_path=None if metrics_out is None else Path(metrics_out),
        spans_file=None if spans_out is None else Path(spans_out).open("w"),
        snapshots_file=(
            None if snapshots_out is None else Path(snapshots_out).open("w")
        ),
    )

    transport = AsyncioTransport(
        seed=seed,
        trace=False,
        time_scale=time_scale,
        max_wall_seconds=duration + 30.0,
    )
    ticks = 0
    started = time.perf_counter()
    try:
        setup = _setup_scenario(
            variant, scenario, seed, transport, policy=policy_spec
        )

        def on_span(span: ProbeComputationSpan) -> None:
            exports.write_span(span_to_json(span))

        telemetry = telemetry_for_variant(
            transport,
            variant.capabilities,
            n_vertices=setup.n_nodes,
            span_sink=on_span,
        )

        deadline = started + duration
        while True:
            wall = time.perf_counter()
            if wall >= deadline:
                break
            tick_end = min(wall + interval, deadline)
            # Advance the run by one tick of virtual time.  run() returns
            # early on quiescence; sleep out the slice in that case so a
            # quiet system does not busy-spin the console.
            transport.run(until=transport.now + interval / time_scale)
            remaining = tick_end - time.perf_counter()
            if remaining > 0:
                time.sleep(remaining)
            ticks += 1
            slo_violations = (
                0
                if slo_seconds is None
                else sum(
                    1
                    for latency in telemetry.detection_latencies
                    if latency * time_scale > slo_seconds
                )
            )
            exports.write_prometheus(telemetry.render_prometheus())
            exports.write_snapshot(telemetry.snapshot_line(transport.now))
            if stream is not None:
                _render_tick(
                    transport=transport,
                    telemetry=telemetry,
                    declarations=len(setup.system.declarations),
                    slo_seconds=slo_seconds,
                    slo_violations=slo_violations,
                    stream=stream,
                )

        telemetry.finish()
        outcome = setup.summarize()
        exports.write_prometheus(telemetry.render_prometheus())
        exports.write_snapshot(telemetry.snapshot_line(transport.now))
    finally:
        exports.close()
        transport.close()
    wall_seconds = time.perf_counter() - started

    return MonitorReport(
        variant=variant_name,
        scenario=scenario,
        outcome=outcome,
        wall_seconds=wall_seconds,
        ticks=ticks,
        spans_emitted=sum(
            engine.emitted for engine in telemetry.engines.values()
        ),
        bound_violations=telemetry.bound_violations,
        time_scale=time_scale,
        slo_seconds=slo_seconds,
        detection_latencies_seconds=tuple(
            latency * time_scale for latency in telemetry.detection_latencies
        ),
    )
