"""Wall-clock asyncio backend of the transport seam.

:class:`AsyncioTransport` hosts the same :class:`~repro.sim.process.Process`
subclasses the simulator runs, on a private asyncio event loop:

* **P4 by construction.**  Every ordered ``(sender, destination)`` pair
  gets its own FIFO queue drained by one consumer task; a message's
  injected delay only stretches the consumer's sleep, so delivery order
  on a channel always equals send order, no message is lost, and every
  delay is finite.
* **Atomicity note.**  Handlers run synchronously inside loop callbacks
  of a single-threaded loop, so a step, once started, completes before
  any other delivery or timer fires -- the section 3 requirement.
* **Virtual units on a wall clock.**  Protocol code thinks in the same
  abstract time units as the simulator; ``time_scale`` converts them to
  wall seconds (default: 1 unit = 5 ms).  ``now`` is real elapsed time,
  so timers and delays genuinely race each other -- interleavings come
  from the host scheduler, not a deterministic queue.

The loop only spins inside the ``run*`` methods (the synchronous driver
facade shared with :class:`~repro.sim.transport.SimTransport`).  Each
``run*`` call enforces ``max_wall_seconds``: a live system that fails to
quiesce or to satisfy the predicate raises
:class:`~repro.errors.SimulationError` instead of hanging the caller.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Callable, Hashable
from typing import Any

from repro.errors import SimulationError
from repro.sim import categories
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.network import DelayModel, FixedDelay
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

#: type of one queued delivery: (delivery time in units, sender, dest, message)
_Delivery = tuple[float, Hashable, Hashable, Any]


class LiveTimerHandle:
    """Cancellable handle for one pending live timer.

    Resolves exactly once: either the timer fires or :meth:`cancel` runs;
    both decrement the transport's pending-timer count, which is half of
    the quiescence condition.
    """

    __slots__ = ("_asyncio_handle", "_done", "_transport", "callback", "name", "when")

    def __init__(
        self,
        transport: "AsyncioTransport",
        when: float,
        callback: Callable[[], None],
        name: str,
    ) -> None:
        self._transport = transport
        self._done = False
        self._asyncio_handle: asyncio.TimerHandle | None = None
        self.when = when
        self.callback = callback
        self.name = name

    def cancel(self) -> None:
        if self._done:
            return
        self._done = True
        if self._asyncio_handle is not None:
            self._asyncio_handle.cancel()
        self._transport._timer_resolved(fired=False)

    def _fire(self) -> None:
        if self._done:
            return
        self._done = True
        self._transport._timer_resolved(fired=True)
        self._transport._guarded(self.callback)


class LiveNodeContext:
    """Per-node capability view over one :class:`AsyncioTransport`."""

    __slots__ = ("_node_id", "_transport")

    def __init__(self, node_id: Hashable, transport: "AsyncioTransport") -> None:
        self._node_id = node_id
        self._transport = transport

    @property
    def node_id(self) -> Hashable:
        return self._node_id

    def send(self, destination: Hashable, message: Any) -> None:
        self._transport.send(self._node_id, destination, message)

    def now(self) -> float:
        return self._transport.now

    def set_timer(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> LiveTimerHandle:
        return self._transport.schedule(delay, callback, name)

    def trace(self, category: str, **details: object) -> None:
        transport = self._transport
        tracer = transport.tracer
        if tracer.idle:
            return
        if tracer.wants(category):
            tracer.record(transport.now, category, **details)

    def counter(self, name: str) -> Counter:
        return self._transport.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self._transport.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self._transport.metrics.histogram(name)

    def __repr__(self) -> str:
        return f"LiveNodeContext({self._node_id!r})"


class AsyncioTransport:
    """The wall-clock backend of the transport contract.

    Parameters mirror :func:`repro.core.assembly.build_runtime` (the
    class is its own factory) plus two live-only knobs:

    time_scale:
        Wall seconds per virtual time unit.  The default (5 ms/unit)
        keeps the standard conformance scenarios -- tens of units -- well
        under a second while leaving delivery races real.
    max_wall_seconds:
        Wall-clock budget for each ``run*`` call; exceeding it raises
        :class:`~repro.errors.SimulationError` (the live runtime's
        substitute for the simulator's bounded event queue).
    """

    name = "asyncio"

    def __init__(
        self,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        trace: bool = True,
        fifo: bool = True,
        *,
        time_scale: float = 0.005,
        max_wall_seconds: float = 30.0,
    ) -> None:
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be positive, got {time_scale}")
        if max_wall_seconds <= 0:
            raise SimulationError(
                f"max_wall_seconds must be positive, got {max_wall_seconds}"
            )
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsRegistry()
        self.rng = RngRegistry(seed)
        self.delay_model = delay_model if delay_model is not None else FixedDelay(1.0)
        self.fifo = fifo
        self.time_scale = time_scale
        self.max_wall_seconds = max_wall_seconds
        #: optional deterministic delay script, as on the sim network:
        #: called ``(sender, destination, message)``; non-None replaces
        #: the sampled delay.
        self.delay_override: Callable[[Hashable, Hashable, Any], float | None] | None = None

        self._loop = asyncio.new_event_loop()
        #: wall time (loop.time()) of virtual t=0; fixed at the first run.
        self._origin: float | None = None
        self._closed = False
        self._processes: dict[Hashable, Any] = {}
        self._channels: dict[tuple[Hashable, Hashable], asyncio.Queue[_Delivery]] = {}
        self._consumers: dict[tuple[Hashable, Hashable], asyncio.Task[None]] = {}
        #: unordered delivery tasks used when ``fifo=False`` (ablations).
        self._loose_tasks: set[asyncio.Task[None]] = set()
        #: timers created before the first run; armed when the origin is
        #: fixed (setup wall time may exceed small virtual times, so they
        #: cannot be armed against the wall clock yet).
        self._unarmed_timers: list[LiveTimerHandle] = []
        self._pending_sends: list[_Delivery] = []
        self._pending_timers = 0
        self._in_flight = 0
        self._executed = 0
        self._failure: BaseException | None = None
        self._activity = asyncio.Event()
        self._rngs: dict[str, random.Random] = {}
        self._sent_counter = self.metrics.counter("net.messages.sent")
        self._delivered_counter = self.metrics.counter("net.messages.delivered")
        self._in_flight_gauge = self.metrics.gauge("net.messages.in_flight")

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Elapsed virtual units (0 until the first ``run*`` call).

        Unlike the simulator's clock this keeps advancing with the wall
        clock between ``run*`` calls -- live time does not pause.
        """
        if self._origin is None:
            return 0.0
        return (self._loop.time() - self._origin) / self.time_scale

    @property
    def events_executed(self) -> int:
        """Deliveries plus timer firings executed so far."""
        return self._executed

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def register(self, process: Any) -> LiveNodeContext:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid!r}")
        self._processes[process.pid] = process
        ctx = LiveNodeContext(process.pid, self)
        process.attach_context(ctx)
        return ctx

    def process(self, pid: Hashable) -> Any:
        try:
            return self._processes[pid]
        except KeyError:
            raise SimulationError(f"no process registered with id {pid!r}") from None

    @property
    def process_ids(self) -> list[Hashable]:
        return list(self._processes)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, sender: Hashable, destination: Hashable, message: Any) -> None:
        """Queue ``message`` on the ``sender -> destination`` channel.

        Accounting matches the sim network: ``net.messages.sent`` plus a
        per-type counter, the in-flight gauge, and a ``net.sent`` trace
        event -- so observers (e.g. the OR model's in-flight grant
        tracker) work unchanged on live runs.
        """
        if destination not in self._processes:
            raise SimulationError(
                f"{sender!r} sent a message to unknown process {destination!r}"
            )
        now = self.now
        type_key = type(message).__name__
        nominal: float | None = None
        if self.delay_override is not None:
            nominal = self.delay_override(sender, destination, message)
        if nominal is None:
            rng = self._rngs.get(type_key)
            if rng is None:
                rng = self.rng.stream(f"network.delays.{type_key}")
                self._rngs[type_key] = rng
            nominal = self.delay_model.sample(rng)
        if nominal < 0:
            raise SimulationError(f"delay model produced negative delay {nominal}")

        self._sent_counter.increment()
        self.metrics.counter(f"net.messages.sent.{type_key}").increment()
        self._in_flight_gauge.increment()
        self._in_flight += 1
        if self.tracer.wants(categories.NET_SENT):
            self.tracer.record(
                now,
                categories.NET_SENT,
                sender=sender,
                destination=destination,
                message=message,
            )
        delivery: _Delivery = (now + nominal, sender, destination, message)
        if self._origin is None:
            self._pending_sends.append(delivery)
        else:
            self._dispatch(delivery)

    def _dispatch(self, delivery: _Delivery) -> None:
        if not self.fifo:
            # Ablation mode: every message sleeps independently, so two
            # messages on one channel can genuinely overtake each other.
            task = self._loop.create_task(self._deliver_loose(delivery))
            self._loose_tasks.add(task)
            task.add_done_callback(self._loose_tasks.discard)
            return
        channel = (delivery[1], delivery[2])
        queue = self._channels.get(channel)
        if queue is None:
            queue = asyncio.Queue()
            self._channels[channel] = queue
            self._consumers[channel] = self._loop.create_task(self._consume(queue))
        queue.put_nowait(delivery)

    async def _consume(self, queue: "asyncio.Queue[_Delivery]") -> None:
        """Drain one channel serially: FIFO regardless of drawn delays."""
        while True:
            delivery = await queue.get()
            await self._sleep_until(delivery[0])
            self._deliver(delivery)

    async def _deliver_loose(self, delivery: _Delivery) -> None:
        await self._sleep_until(delivery[0])
        self._deliver(delivery)

    async def _sleep_until(self, when_units: float) -> None:
        assert self._origin is not None
        remaining = self._origin + when_units * self.time_scale - self._loop.time()
        if remaining > 0:
            await asyncio.sleep(remaining)

    def _deliver(self, delivery: _Delivery) -> None:
        _, sender, destination, message = delivery
        if self.tracer.wants(categories.NET_DELIVERED):
            self.tracer.record(
                self.now,
                categories.NET_DELIVERED,
                sender=sender,
                destination=destination,
                message=message,
            )
        self._delivered_counter.increment()
        self._in_flight_gauge.decrement()
        self._in_flight -= 1
        self._executed += 1
        process = self._processes[destination]
        self._guarded(lambda: process.on_message(sender, message))
        self._activity.set()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> LiveTimerHandle:
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._schedule_at_units(self.now + delay, action, name)

    def schedule_at(
        self, time: float, action: Callable[[], None], name: str = ""
    ) -> LiveTimerHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; wall clock already at {self.now}"
            )
        return self._schedule_at_units(time, action, name)

    def _schedule_at_units(
        self, when: float, action: Callable[[], None], name: str
    ) -> LiveTimerHandle:
        handle = LiveTimerHandle(self, when, action, name)
        self._pending_timers += 1
        if self._origin is None:
            self._unarmed_timers.append(handle)
        else:
            self._arm(handle)
        return handle

    def _arm(self, handle: LiveTimerHandle) -> None:
        assert self._origin is not None
        wall = self._origin + handle.when * self.time_scale
        handle._asyncio_handle = self._loop.call_at(wall, handle._fire)

    def _timer_resolved(self, fired: bool) -> None:
        self._pending_timers -= 1
        if fired:
            self._executed += 1
        self._activity.set()

    # ------------------------------------------------------------------
    # Handler guard
    # ------------------------------------------------------------------

    def _guarded(self, action: Callable[[], None]) -> None:
        """Run one handler/timer action, capturing the first failure.

        The driver re-raises it; later actions still run (a live system
        has no way to freeze its peers), but only the first failure is
        reported, matching the simulator's fail-on-first behaviour.
        """
        try:
            action()
        except Exception as exc:  # noqa: BLE001 - transported to the driver
            if self._failure is None:
                self._failure = exc
            self._activity.set()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._closed:
            raise SimulationError("transport is closed")
        if self._origin is not None:
            return
        self._origin = self._loop.time()
        for handle in self._unarmed_timers:
            if not handle._done:
                self._arm(handle)
        self._unarmed_timers.clear()
        pending, self._pending_sends = self._pending_sends, []
        for delivery in pending:
            self._dispatch(delivery)

    def _quiescent(self) -> bool:
        return self._in_flight == 0 and self._pending_timers == 0

    async def _drive(
        self,
        stop: Callable[[], bool],
        until_wall: float | None,
        max_events: int | None,
    ) -> bool:
        budget_deadline = self._loop.time() + self.max_wall_seconds
        baseline = self._executed
        while True:
            self._activity.clear()
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise failure
            if stop():
                return True
            if self._quiescent():
                return False
            if max_events is not None and self._executed - baseline >= max_events:
                return False
            wall = self._loop.time()
            if until_wall is not None and wall >= until_wall:
                return False
            if wall >= budget_deadline:
                raise SimulationError(
                    f"live run exceeded max_wall_seconds={self.max_wall_seconds} "
                    f"(virtual t={self.now:.3f}, {self._in_flight} in flight, "
                    f"{self._pending_timers} timers pending)"
                )
            timeout = budget_deadline - wall
            if until_wall is not None:
                timeout = min(timeout, until_wall - wall)
            try:
                await asyncio.wait_for(self._activity.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _run_driver(
        self,
        stop: Callable[[], bool],
        until: float | None,
        max_events: int | None,
    ) -> bool:
        self._start()
        assert self._origin is not None
        until_wall = (
            None if until is None else self._origin + until * self.time_scale
        )
        return bool(
            self._loop.run_until_complete(self._drive(stop, until_wall, max_events))
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until quiescence, the virtual ``until`` deadline, or a
        ``max_events`` budget (checked between wake-ups, so it may
        overshoot by in-progress deliveries)."""
        self._run_driver(lambda: False, until, max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        self._run_driver(lambda: False, None, max_events)

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> bool:
        """Run until ``predicate()`` holds -- the run-until-declaration
        driver.  Returns False on quiescence or event-budget exhaustion;
        raises :class:`~repro.errors.SimulationError` when the wall-clock
        budget expires first."""
        return self._run_driver(predicate, None, max_events)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Cancel consumers and close the private loop (idempotent)."""
        if self._closed:
            return
        self._closed = True
        tasks = [*self._consumers.values(), *self._loose_tasks]
        for task in tasks:
            task.cancel()
        if tasks:
            self._loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self._loop.close()

    def __repr__(self) -> str:
        return (
            f"AsyncioTransport(t={self.now:.3f}, nodes={len(self._processes)}, "
            f"in_flight={self._in_flight}, timers={self._pending_timers})"
        )
