"""Controller-to-controller messages of the DDB model.

All cross-site traffic flows between controllers (the paper: "a process
communicates directly only with its own controller; controllers may send
messages to one another").  Process-to-controller communication is local
(memory area + scheduling) and is therefore a function call in this
implementation, not a network message.

Every transaction-related message carries the transaction's *incarnation*
(restart count).  Incarnations are our extension for deadlock resolution:
the paper's model has no aborts, but once victims restart, stale messages
from a previous incarnation must be recognisable.  Similarly, inter-
controller edges carry a *serial* so that a probe can never match a newer
re-creation of "the same" edge (which would break soundness under
abort/restart -- see the phantom-deadlock ablation tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._ids import ProbeTag, ProcessId, ResourceId, TransactionId
from repro.ddb.locks import LockMode


@dataclass(frozen=True, slots=True)
class EdgeRef:
    """Identity of one inter-controller edge incarnation.

    ``origin`` is the waiting process ``(T_i, S_j)``, ``target`` the agent
    ``(T_i, S_m)`` it waits for.  The paper's probes carry "the identity of
    the edge"; ``serial`` disambiguates successive incarnations of the
    same (origin, target) pair across transaction restarts.
    """

    origin: ProcessId
    target: ProcessId
    serial: int


@dataclass(frozen=True, slots=True)
class RemoteAcquireRequest:
    """C_j asks C_m to acquire resources for transaction ``transaction``.

    Creates the grey inter-controller edge ``(origin, target)``; the edge
    turns black when C_m receives this message.  ``items`` are the
    resources (all homed at the target site) with their lock modes; the
    edge whitens only when *all* items are granted.
    """

    edge: EdgeRef
    transaction: TransactionId
    incarnation: int
    items: tuple[tuple[ResourceId, LockMode], ...]
    #: admission-order timestamp (prevention schemes; 0 when unused)
    timestamp: int = 0


@dataclass(frozen=True, slots=True)
class RemoteAcquireGranted:
    """C_m tells C_j that every requested item was acquired.

    Sent when the edge whitens; on receipt at C_j the edge disappears and
    the origin process may resume.
    """

    edge: EdgeRef


@dataclass(frozen=True, slots=True)
class RemoteRelease:
    """At commit, the home controller tells C_m to release T's locks there."""

    transaction: TransactionId
    incarnation: int


@dataclass(frozen=True, slots=True)
class RemoteAbort:
    """Victim abort: C_m must drop T's waits and locks at its site."""

    transaction: TransactionId
    incarnation: int


@dataclass(frozen=True, slots=True)
class AbortDemand:
    """A controller that declared ``(T, S)`` deadlocked asks T's home
    controller to abort T (resolution extension, not in the paper).

    ``force`` bypasses the still-blocked sanity check -- used by the
    wound-wait prevention scheme, whose wounds must preempt running
    transactions."""

    transaction: TransactionId
    incarnation: int
    force: bool = False


@dataclass(frozen=True, slots=True)
class DdbProbe:
    """A probe of computation ``tag`` sent along inter-controller ``edge``.

    Meaningful iff the edge exists and is black when the target controller
    receives it (section 6.5), i.e. the target controller has received the
    corresponding :class:`RemoteAcquireRequest` and has not yet granted all
    of its items.
    """

    tag: ProbeTag
    edge: EdgeRef


#: a process-level wait-for edge ``(waiter, holder)`` as propagated by
#: the WFGD computation (section 5 lifted to the DDB model).
ProcessEdge = tuple[ProcessId, ProcessId]


@dataclass(frozen=True, slots=True)
class DdbWfgdMessage:
    """WFGD edges for ``destination`` (a process at the receiving site)."""

    destination: ProcessId
    edges: frozenset[ProcessEdge]
