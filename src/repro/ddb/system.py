"""System wrapper for the DDB model: wiring plus on-line verification.

:class:`DdbSystem` assembles a simulator, a FIFO network of N controllers,
a resource catalogue, the process-level oracle graph, an initiation policy,
and a victim policy -- and verifies the paper's claims while running:

* **Soundness:** the instant any controller declares a process ``(T, S)``
  deadlocked, the oracle is consulted; the process must be on an all-black
  cycle at that exact moment.
* **Completeness:** in detection-only mode (``NoResolution``) the
  quiescence check requires every cyclic SCC of the dark process graph to
  contain a declared process.  With resolution enabled, the corresponding
  liveness claim is that no dark cycle survives (victims break them), and
  the workload's commit counters show progress.

Both checks run through the shared machinery in :mod:`repro.core.engine`;
this wrapper adds the DDB-specific stale-declaration carve-out (a victim
abort can break a genuinely detected cycle while the final probe is in
flight).  Transaction admission and restart are exposed at this level;
workloads drive :meth:`begin` / :meth:`restart` and observe completion
through the ``finished_callback``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro._ids import ProbeTag, ProcessId, ResourceId, SiteId, TransactionId
from repro.basic.graph import EdgeColor
from repro.core.assembly import build_runtime, require_fleet
from repro.core.transport import Transport, TransportFactory
from repro.core.engine import (
    DeclarationLog,
    ProbeAccounting,
    completeness_report,
    dark_components,
)
from repro.ddb.controller import Controller
from repro.ddb.graph import DdbWaitForGraph
from repro.ddb.initiation import DdbImmediateInitiation, DdbInitiationPolicy
from repro.ddb.resolution import NoResolution, VictimPolicy
from repro.ddb.transaction import TransactionExecution, TransactionSpec
from repro.errors import ConfigurationError, ProtocolError
from repro.sim import categories
from repro.sim.network import DelayModel
from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class DdbDeclaration:
    """One controller-level deadlock declaration with its verdict."""

    time: float
    site: SiteId
    process: ProcessId
    tag: ProbeTag
    on_black_cycle: bool


@dataclass
class TransactionRecord:
    """System-level bookkeeping of one transaction across incarnations."""

    spec: TransactionSpec
    incarnation: int = 0
    #: admission-order priority for prevention schemes; retained across
    #: restarts (starvation freedom of wait-die/wound-wait relies on it)
    timestamp: int = 0
    commits: int = 0
    aborts: int = 0
    first_begin: float | None = None
    committed_at: float | None = None


def uniform_resources(n_resources: int, n_sites: int) -> dict[ResourceId, SiteId]:
    """A catalogue of ``n_resources`` spread round-robin over the sites."""
    return {
        ResourceId(f"r{i}"): SiteId(i % n_sites) for i in range(n_resources)
    }


class DdbSystem:
    """A ready-to-run DDB with N controllers.

    Parameters
    ----------
    n_sites:
        Number of computers (= controllers); site ids are ``0..n_sites-1``.
    resources:
        Either a mapping ``ResourceId -> SiteId`` (the catalogue) or an
        integer, in which case :func:`uniform_resources` builds one.
    seed, delay_model, trace, fifo:
        As in :class:`~repro.basic.system.BasicSystem`.
    initiation:
        Shared :class:`DdbInitiationPolicy` (default: immediate).
    resolution:
        Shared :class:`VictimPolicy` (default: detection-only).
    strict:
        Raise on a soundness violation instead of just recording it.
    """

    def __init__(
        self,
        n_sites: int,
        resources: Mapping[ResourceId, SiteId] | int,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        initiation: DdbInitiationPolicy | None = None,
        resolution: VictimPolicy | None = None,
        strict: bool = True,
        trace: bool = True,
        fifo: bool = True,
        wfgd_on_declare: bool = False,
        prevention=None,
        transport: Transport | TransportFactory | None = None,
    ) -> None:
        require_fleet(n_sites, "site")
        if isinstance(resources, int):
            resources = uniform_resources(resources, n_sites)
        for resource, site in resources.items():
            if not 0 <= site < n_sites:
                raise ConfigurationError(
                    f"resource {resource!r} homed at invalid site {site}"
                )
        runtime = build_runtime(
            seed=seed, delay_model=delay_model, trace=trace, fifo=fifo,
            transport=transport,
        )
        self.transport = runtime.transport
        self.simulator = runtime.simulator
        self.network = runtime.network
        self.oracle = DdbWaitForGraph()
        self.resource_home: dict[ResourceId, SiteId] = dict(resources)
        self.initiation = initiation if initiation is not None else DdbImmediateInitiation()
        self.resolution = resolution if resolution is not None else NoResolution()
        #: run the lifted section 5 WFGD computation after declarations
        #: (detection-only analysis; see repro.ddb.wfgd)
        self.wfgd_on_declare = wfgd_on_declare
        #: optional deadlock-PREVENTION scheme (wait-die / wound-wait);
        #: consulted by controllers at lock-conflict time.  Normally used
        #: with DdbManualInitiation -- prevention makes detection moot.
        self.prevention = prevention
        self._timestamp_counter = 0

        self.controllers: dict[SiteId, Controller] = {}
        for i in range(n_sites):
            site = SiteId(i)
            controller = Controller(site=site, system=self)
            self.transport.register(controller)
            self.controllers[site] = controller
        for controller in self.controllers.values():
            self.initiation.setup(controller)

        self.transactions: dict[TransactionId, TransactionRecord] = {}
        self._log: DeclarationLog[DdbDeclaration] = DeclarationLog(strict=strict)
        self.declarations = self._log.declarations
        self.soundness_violations = self._log.violations
        #: Virtual time each process first joined a dark cycle.
        self.deadlock_formed_at: dict[ProcessId, float] = {}
        self._probes = ProbeAccounting()
        #: Probes sent per computation tag.
        self.probes_per_computation = self._probes.per_computation
        #: Workload hook: called as ``callback(execution, aborted)``.
        self.finished_callback: Callable[[TransactionExecution, bool], None] | None = None
        #: Times at which any transaction aborted (stale-declaration check).
        self._abort_times: list[float] = []

        self.transport.tracer.subscribe(
            self._observe,
            categories=(categories.DDB_EDGE_ADDED, categories.DDB_PROBE_SENT),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def controller(self, site: int) -> Controller:
        return self.controllers[SiteId(site)]

    @property
    def now(self) -> float:
        return self.transport.now

    @property
    def metrics(self):
        return self.transport.metrics

    @property
    def strict(self) -> bool:
        return self._log.strict

    @strict.setter
    def strict(self, value: bool) -> None:
        self._log.strict = value

    def transaction_home(self, tid: TransactionId) -> SiteId:
        return self.transactions[tid].spec.home

    def current_incarnation(self, tid: TransactionId) -> int:
        return self.transactions[tid].incarnation

    # ------------------------------------------------------------------
    # Transaction admission
    # ------------------------------------------------------------------

    def begin(self, spec: TransactionSpec, at: float | None = None) -> None:
        """Admit a new transaction, optionally at a future virtual time."""
        if spec.tid in self.transactions:
            raise ProtocolError(f"transaction T{spec.tid} already registered")
        for resource in spec.resources():
            if resource not in self.resource_home:
                raise ConfigurationError(
                    f"transaction T{spec.tid} references unknown resource {resource!r}"
                )
        self._timestamp_counter += 1
        record = TransactionRecord(spec=spec, timestamp=self._timestamp_counter)
        self.transactions[spec.tid] = record
        self._start_incarnation(record, at)

    def restart(self, tid: TransactionId, delay: float = 0.0) -> None:
        """Start the next incarnation of an aborted transaction."""
        record = self.transactions[tid]
        self._start_incarnation(record, self.now + delay)

    def _start_incarnation(self, record: TransactionRecord, at: float | None) -> None:
        record.incarnation += 1
        incarnation = record.incarnation
        home = self.controllers[record.spec.home]

        def start() -> None:
            if record.first_begin is None:
                record.first_begin = self.now
            home.begin(record.spec, incarnation, timestamp=record.timestamp)

        if at is None or at <= self.now:
            start()
        else:
            self.transport.schedule_at(at, start, name=f"begin T{record.spec.tid}")

    def on_transaction_finished(self, execution: TransactionExecution, aborted: bool) -> None:
        """Controller callback on commit or abort."""
        record = self.transactions[execution.spec.tid]
        if aborted:
            record.aborts += 1
            self._abort_times.append(self.now)
        else:
            record.commits += 1
            record.committed_at = self.now
            if record.first_begin is not None:
                self.metrics.histogram("ddb.txn.response_time").record(
                    self.now - record.first_begin
                )
        if self.finished_callback is not None:
            self.finished_callback(execution, aborted)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        self.transport.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        self.transport.run_to_quiescence(max_events=max_events)

    # ------------------------------------------------------------------
    # Verification hooks
    # ------------------------------------------------------------------

    def handle_declaration(
        self, controller: Controller, process: ProcessId, tag: ProbeTag
    ) -> None:
        on_black = self.oracle.is_on_black_cycle(process)
        declaration = DdbDeclaration(
            time=self.now,
            site=controller.site,
            process=process,
            tag=tag,
            on_black_cycle=on_black,
        )
        # In the paper's (abort-free) model a negative oracle verdict would
        # be a QRP2 violation outright.  With victim aborts enabled, a
        # concurrent abort may break a *genuinely detected* cycle while the
        # final probe is in flight; the declaration is then stale, not
        # phantom.  Stale requires (a) the process really was on a dark
        # cycle earlier, and (b) an abort occurred between that moment and
        # now.  Everything else is a true soundness violation.
        formed = self.deadlock_formed_at.get(process)
        stale = (
            not on_black
            and formed is not None
            and any(
                formed <= abort_time <= self.now for abort_time in self._abort_times
            )
        )
        if stale:
            self.metrics.counter("ddb.declarations.stale").increment()
        self._log.record(
            declaration,
            sound=on_black or stale,
            complaint=(
                f"DDB soundness violated: {process} declared deadlocked at "
                f"t={self.now} but is not on a black cycle"
            ),
        )
        if formed is not None:
            self.metrics.histogram("ddb.detection.latency").record(self.now - formed)
        self.resolution.on_declaration(controller, process, tag)

    def _observe(self, event: TraceEvent) -> None:
        if event.category == categories.DDB_EDGE_ADDED:
            source = event["source"]
            if self.oracle.is_on_dark_cycle(source):
                for member in self._dark_cycle_members(source):
                    self.deadlock_formed_at.setdefault(member, event.time)
        elif event.category == categories.DDB_PROBE_SENT:
            self._probes.count(event["tag"])

    def _dark_edges(self) -> list[tuple[ProcessId, ProcessId]]:
        return [
            edge
            for edge, color in self.oracle.edges()
            if color is not EdgeColor.WHITE
        ]

    def _dark_cycle_members(self, start: ProcessId) -> set[ProcessId]:
        """Processes on dark cycles in the SCC of ``start``."""
        for component in dark_components(self._dark_edges()):
            if start in component:
                return component
        return {start}

    # ------------------------------------------------------------------
    # Quiescence-time checks
    # ------------------------------------------------------------------

    def completeness_report(self) -> tuple[bool, list[set[ProcessId]]]:
        """Detection-only check: every cyclic dark SCC has a declaration.

        Returns the historical ``(complete, undetected)`` tuple shape the
        DDB experiments consume; the check itself is the shared
        :func:`repro.core.engine.completeness_report`.
        """
        report = completeness_report(
            self._dark_edges(),
            declared={d.process for d in self.declarations},
            deadlocked=self.oracle.processes_on_dark_cycles(),
        )
        return (report.complete, report.undetected_components)

    def assert_completeness(self) -> None:
        complete, undetected = self.completeness_report()
        if not complete:
            raise AssertionError(
                f"DDB completeness violated: dark components {undetected} "
                f"contain no declared process"
            )

    def assert_soundness(self) -> None:
        self._log.assert_sound("DDB soundness violated by: ")

    def assert_no_deadlock_remains(self) -> None:
        """Liveness check for resolution mode: no dark cycle survives."""
        remaining = self.oracle.processes_on_dark_cycles()
        if remaining:
            raise AssertionError(f"dark cycle survives resolution: {remaining}")

    def __repr__(self) -> str:
        return (
            f"DdbSystem(sites={len(self.controllers)}, "
            f"transactions={len(self.transactions)}, t={self.now})"
        )
