"""Transactions: specifications, runtime status, and per-process state.

A transaction is a straight-line program of operations executed by its
*home* process.  Each :class:`Acquire` names one or more resources with
lock modes; the home process blocks until **all** of them are acquired
(locally or through remote agents), matching the paper's AND model
("a process cannot proceed with its computation unless it acquires every
resource that it requests").  :class:`Think` models computation time
between lock steps.  After the last operation, the transaction commits,
releasing every lock at every site.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.locks import LockMode
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Acquire:
    """Acquire every listed (resource, mode) pair before proceeding."""

    items: tuple[tuple[ResourceId, LockMode], ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ConfigurationError("Acquire needs at least one item")


def acquire(*items: tuple[str, LockMode]) -> Acquire:
    """Convenience constructor: ``acquire(("r1", LockMode.SHARED), ...)``."""
    return Acquire(items=tuple((ResourceId(rid), mode) for rid, mode in items))


@dataclass(frozen=True)
class Think:
    """Compute for ``duration`` virtual-time units holding current locks."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"think duration must be >= 0, got {self.duration}")


Operation = Acquire | Think


@dataclass(frozen=True)
class TransactionSpec:
    """A transaction program: identity, home site, and operation list."""

    tid: TransactionId
    home: SiteId
    operations: tuple[Operation, ...]

    def resources(self) -> set[ResourceId]:
        """All resources this transaction ever touches."""
        result: set[ResourceId] = set()
        for operation in self.operations:
            if isinstance(operation, Acquire):
                result.update(rid for rid, _ in operation.items)
        return result

    @property
    def home_process(self) -> ProcessId:
        return ProcessId(transaction=self.tid, site=self.home)


class TransactionStatus(enum.Enum):
    """Lifecycle of one incarnation of a transaction."""

    RUNNING = "running"
    WAITING = "waiting"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class RemoteWait:
    """Home-side record of one outstanding remote acquisition (an outgoing
    inter-controller edge)."""

    target: ProcessId
    serial: int
    sent_at: float


@dataclass
class TransactionExecution:
    """Home-controller runtime state of one transaction incarnation."""

    spec: TransactionSpec
    incarnation: int
    started_at: float
    #: admission-order timestamp, retained across restarts (prevention)
    timestamp: int = 0
    status: TransactionStatus = TransactionStatus.RUNNING
    #: program counter into ``spec.operations``
    pc: int = 0
    #: local resources requested in the current Acquire and not yet granted
    waiting_local: set[ResourceId] = field(default_factory=set)
    #: local resources currently held by the home process
    held_local: set[ResourceId] = field(default_factory=set)
    #: remote sites with an outstanding RemoteAcquireRequest
    waiting_remote: dict[SiteId, RemoteWait] = field(default_factory=dict)
    #: sites (besides home) where this incarnation has or had an agent
    agent_sites: set[SiteId] = field(default_factory=set)

    @property
    def blocked(self) -> bool:
        return bool(self.waiting_local) or bool(self.waiting_remote)

    @property
    def finished(self) -> bool:
        return self.status in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED)


@dataclass
class AgentRuntime:
    """Agent-side state of ``(T_i, S_m)`` at a non-home controller."""

    pid: ProcessId
    incarnation: int
    #: admission-order timestamp of the owning transaction (prevention)
    timestamp: int = 0
    #: resources held at this site
    held: set[ResourceId] = field(default_factory=set)
    #: the single in-progress inbound remote acquisition, if any
    inbound: "InboundAcquire | None" = None


@dataclass
class InboundAcquire:
    """A received RemoteAcquireRequest not yet fully granted.

    While this record exists, the inter-controller edge
    ``(origin, agent)`` is black at this controller -- exactly the local
    knowledge P3 grants ("an incoming black edge to any of its processes").
    """

    origin: ProcessId
    serial: int
    remaining: set[ResourceId]
    items: tuple[tuple[ResourceId, LockMode], ...]
