"""The WFGD computation lifted to the DDB model.

Section 5 presents WFGD for the basic model; section 6 notes that the
basic-model machinery transfers ("the proof of the algorithm for the DDB
model is exactly the same...").  This module performs the same lift for
WFGD that section 6.6 performs for the probe computation: *processes* keep
the ``S_p`` edge sets, but *controllers* do the work -- propagation along
intra-controller edges is internal, propagation along inter-controller
edges is a controller-to-controller :class:`DdbWfgdMessage`.

Rules (the exact section 5 rules over process-level edges):

* when a controller declares a local process ``p`` on a black cycle, it
  sends ``{(q, p)}`` toward every black predecessor ``q`` of ``p`` --
  local waiters blocked on resources ``p`` holds (intra edges) and, if
  ``p`` is an agent serving an unanswered remote acquisition, the waiting
  origin process (the incoming black inter edge);
* a process ``p`` receiving ``M`` sets ``S_p := S_p ∪ M`` and pushes
  ``{(q, p)} ∪ S_p`` toward every black predecessor ``q``, never sending
  the same edge set twice toward the same process (termination);
* the persistent-send refinement from the basic model applies: a *new*
  black predecessor of an informed process is informed on arrival.

Like section 5, this assumes the deadlocked portion is stable -- use with
:class:`~repro.ddb.resolution.NoResolution` (victim aborts would
invalidate the propagated sets mid-flight).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._ids import ProcessId

# The wire-format message lives with the rest of the DDB protocol in
# repro.ddb.messages (RPX008: handlers only send classes declared
# there); re-exported here because this module is its natural reading
# context.
from repro.ddb.messages import DdbWfgdMessage, ProcessEdge

if TYPE_CHECKING:  # pragma: no cover
    from repro.ddb.controller import Controller

__all__ = ["DdbWfgdMessage", "DdbWfgdState", "ProcessEdge"]


class DdbWfgdState:
    """Per-controller WFGD bookkeeping for its local processes."""

    def __init__(self, controller: "Controller") -> None:
        self._controller = controller
        #: ``S_p`` for local processes
        self.paths: dict[ProcessId, set[ProcessEdge]] = {}
        #: deduplication: (recipient process) -> edge sets already sent
        self._sent: dict[ProcessId, set[frozenset[ProcessEdge]]] = {}
        #: local processes that declared (seeded) already
        self._seeded: set[ProcessId] = set()

    def knows_deadlocked(self, process: ProcessId) -> bool:
        return process in self._seeded or bool(self.paths.get(process))

    def paths_for(self, process: ProcessId) -> set[ProcessEdge]:
        return set(self.paths.get(process, ()))

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def seed(self, process: ProcessId) -> None:
        """Initiator rule: ``process`` was declared on a black cycle."""
        if process in self._seeded:
            return
        self._seeded.add(process)
        self._push_to_predecessors(process)

    def absorb(self, process: ProcessId, edges: frozenset[ProcessEdge]) -> None:
        """Receiver rule for a local ``process``."""
        store = self.paths.setdefault(process, set())
        store |= edges
        self._push_to_predecessors(process)

    def on_new_predecessor(self, predecessor: ProcessId, process: ProcessId) -> None:
        """Persistent-send rule: a black edge (predecessor -> process)
        just appeared and ``process`` already knows it is deadlocked."""
        if self.knows_deadlocked(process):
            self._push(predecessor, process)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _push_to_predecessors(self, process: ProcessId) -> None:
        controller = self._controller
        for predecessor in sorted(controller.intra_predecessors(process)):
            self._push(predecessor, process)
        origin = controller.inter_predecessor(process)
        if origin is not None:
            self._push(origin, process)

    def _push(self, predecessor: ProcessId, process: ProcessId) -> None:
        edges = frozenset({(predecessor, process)}) | frozenset(
            self.paths.get(process, ())
        )
        history = self._sent.setdefault(predecessor, set())
        if edges in history:
            return
        history.add(edges)
        controller = self._controller
        controller.ctx.counter("ddb.wfgd.sent").increment()
        if predecessor.site == controller.site:
            # Intra edge: deliver locally (memory-area communication).
            self.absorb(predecessor, edges)
        else:
            controller.send(
                predecessor.site,
                DdbWfgdMessage(destination=predecessor, edges=edges),
            )
