"""The DDB probe computation (section 6.6) with the 6.7 optimisation.

Controllers -- not processes -- exchange probes.  Within a controller,
probe propagation is replaced by *labelling*: receiving a meaningful probe
directed at local process ``p`` labels ``p`` and everything reachable from
``p`` along intra-controller edges; probes are then sent along every
inter-controller edge leaving a labelled process (at most once per edge
per computation).

Interpretation note.  We implement the controller steps as the exact
basic-model algorithm applied to process-level vertices, which resolves
two ambiguities in the terse A0/A1 text:

* the *about*-process acts as the basic model's initiating vertex: its A0
  sends probes along **all** its outgoing edges (labelling its intra
  successors, sending controller probes along its own inter edges), but it
  never *propagates* -- a label reaching it IS the A1 "meaningful probe
  received" condition and triggers the declaration (at A0 time for a
  purely local cycle, later for a distributed one);
* every controller -- including the initiating one -- forwards probes for
  the labelled processes other than the about-process (the basic model's
  A2 applies per process, not per controller), so dark cycles that pass
  through the initiating *site* twice still circulate.  The per-edge
  send-once rule keeps termination.

Per-computation state is kept per *tag* rather than "latest per initiator"
because section 6.7 explicitly has one controller run Q concurrent
computations; the basic-model latest-only compaction (section 4.3) would
cancel a controller's own concurrent computations.  State is reclaimed via
:meth:`DdbDetector.prune` once a computation's about-process stops waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro._ids import ProbeTag, ProcessId
from repro.ddb.messages import DdbProbe, EdgeRef
from repro.sim import categories

if TYPE_CHECKING:  # pragma: no cover
    from repro.ddb.controller import Controller


@dataclass
class DdbComputation:
    """State of one probe computation at one controller."""

    tag: ProbeTag
    #: the process this computation is about (set only at the initiator)
    about: ProcessId | None
    labelled: set[ProcessId] = field(default_factory=set)
    probes_sent: set[EdgeRef] = field(default_factory=set)
    declared: bool = False


class DdbDetector:
    """Per-controller probe-computation engine."""

    def __init__(self, controller: "Controller") -> None:
        self._controller = controller
        self._computations: dict[ProbeTag, DdbComputation] = {}
        self._next_sequence = 1

    @property
    def tracked_computations(self) -> int:
        return len(self._computations)

    def labelled_for(self, tag: ProbeTag) -> set[ProcessId]:
        """The locally labelled processes of computation ``tag`` -- the
        controller's legitimate local knowledge of the cycle's membership,
        used by victim-selection policies."""
        computation = self._computations.get(tag)
        if computation is None:
            return set()
        result = set(computation.labelled)
        if computation.about is not None:
            result.add(computation.about)
        return result

    # ------------------------------------------------------------------
    # A0: initiation
    # ------------------------------------------------------------------

    def initiate(self, about: ProcessId) -> ProbeTag:
        """Step A0: determine whether ``about`` is on a dark cycle.

        In basic-model terms, ``about`` is the initiating vertex: it sends
        probes along *all* its outgoing edges -- intra edges become labels
        on its intra-successors (whose A2 propagation is the transitive
        closure), inter edges become controller probes.  ``about`` itself
        is *not* labelled: a label on ``about`` means "the initiator
        received a meaningful probe", which is exactly the A1 declaration
        condition -- immediately (a purely local intra-controller cycle) or
        later when a probe returns (:meth:`on_probe`).
        """
        controller = self._controller
        tag = ProbeTag(initiator=int(controller.site), sequence=self._next_sequence)
        self._next_sequence += 1
        computation = DdbComputation(tag=tag, about=about)
        self._computations[tag] = computation
        controller.ctx.counter("ddb.computations.initiated").increment()
        controller.ctx.trace(
            categories.DDB_COMPUTATION_INITIATED, site=controller.site, about=about, tag=tag
        )

        computation.labelled = controller.intra_closure(
            controller.intra_successors(about), stop=about
        )
        if about in computation.labelled:
            # Black cycle of intra-controller edges: declare locally (A0).
            self._declare(computation)
            return tag
        # A0 sends probes along the initiator's own inter edges as well as
        # those of the labelled (virtually probed) processes.
        self._forward(computation, include=about)
        return tag

    # ------------------------------------------------------------------
    # A1 / A2: probe receipt
    # ------------------------------------------------------------------

    def on_probe(self, probe: DdbProbe) -> None:
        """Handle a probe delivered along ``probe.edge``.

        Meaningfulness (section 6.5): the edge must exist and be black at
        receipt, i.e. this controller holds the corresponding remote
        request (matching serial) and has not granted all its items.
        """
        controller = self._controller
        meaningful = controller.inter_edge_black(probe.edge)
        controller.ctx.trace(
            categories.DDB_PROBE_RECEIVED,
            site=controller.site,
            tag=probe.tag,
            edge=probe.edge,
            meaningful=meaningful,
        )
        if not meaningful:
            return
        computation = self._computations.get(probe.tag)
        if computation is None:
            computation = DdbComputation(tag=probe.tag, about=None)
            self._computations[probe.tag] = computation

        target = probe.edge.target
        newly = (
            controller.intra_closure({target}, stop=computation.about)
            - computation.labelled
        )
        if not newly:
            return
        computation.labelled |= newly
        if (
            computation.about is not None
            and computation.about in computation.labelled
            and not computation.declared
        ):
            # A1: a meaningful probe (real along the arriving inter edge,
            # virtual along the intra path to ``about``) reached the
            # initiator process.
            self._declare(computation)
        self._forward(computation)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _forward(
        self, computation: DdbComputation, include: ProcessId | None = None
    ) -> None:
        """Send probes along inter edges from labelled processes, at most
        once per edge per computation.

        The initiating process never propagates (A1), so it is excluded
        from the sweep -- except during A0 itself, where the initiator
        sends along its own outgoing edges (passed via ``include``).
        """
        controller = self._controller
        sources = set(computation.labelled)
        sources.discard(computation.about)  # type: ignore[arg-type]
        if include is not None:
            sources.add(include)
        for process in sorted(sources):
            for edge in controller.outgoing_inter_edges(process):
                if edge in computation.probes_sent:
                    continue
                computation.probes_sent.add(edge)
                controller.send_probe(edge.target.site, DdbProbe(computation.tag, edge))

    def _declare(self, computation: DdbComputation) -> None:
        computation.declared = True
        assert computation.about is not None
        self._controller.declare_deadlock(computation.about, computation.tag)

    def prune(self, about: ProcessId) -> None:
        """Drop initiator-side state for computations about a process that
        stopped waiting (committed, was granted, or aborted).

        This bounds detector memory in long-running workloads; without it a
        controller would accumulate one record per computation it ever
        initiated.  Forwarded (non-initiator) state is pruned lazily by
        :meth:`prune_forwarded`.
        """
        stale = [
            tag
            for tag, computation in self._computations.items()
            if computation.about == about
        ]
        for tag in stale:
            del self._computations[tag]

    def prune_forwarded(self, max_records: int = 10_000) -> None:
        """Drop the oldest forwarded-computation records beyond a cap."""
        if len(self._computations) <= max_records:
            return
        forwarded = [
            tag for tag, c in self._computations.items() if c.about is None
        ]
        for tag in forwarded[: len(self._computations) - max_records]:
            del self._computations[tag]
