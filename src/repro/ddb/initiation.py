"""DDB adapters onto the scheduling seam (sections 4.2, 4.3, 6.7).

The timer machinery behind these policies lives in
:mod:`repro.core.scheduling`, shared with the basic and OR models; this
module is the thin model adapter.  It translates the DDB's process
lifecycle (``on_process_blocked`` / ``on_process_unblocked``) into the
seam's wait vocabulary, exposes one controller as an
:class:`~repro.core.scheduling.InitiationSite`, and -- uniquely among
the models -- implements the *scan* capability the ``periodic`` policy
drives.

The historical class names remain the construction API:

* :class:`DdbImmediateInitiation` -- the section 4.2 rule lifted to the
  DDB (:class:`~repro.core.scheduling.ImmediatePolicy`): whenever a
  process at this controller becomes blocked (gains its first outgoing
  edge of a blocking episode), initiate a computation about it.
* :class:`DdbDelayedInitiation` -- section 4.3's delayed-T rule
  (:class:`~repro.core.scheduling.DelayedPolicy`): a computation about a
  process starts only after it has been blocked continuously for ``T``.
* :class:`DdbPeriodicInitiation` -- controllers scan on a timer
  (:class:`~repro.core.scheduling.PeriodicPolicy`).  In *naive* mode a
  scan initiates one computation per blocked constituent process; in
  *optimised* mode (section 6.7) the controller first looks for a purely
  local intra-controller cycle, and otherwise initiates only Q
  computations -- one per constituent process with an incoming black
  inter-controller edge.  Experiment E7 compares the two.
* :class:`DdbManualInitiation` -- no automatic initiation (scenario
  tests call :meth:`Controller.initiate_for` directly).

Registry-driven callers (sweep cells, ``--policy`` flags) resolve any
registered policy -- including ``adaptive`` -- via
:func:`from_policy_spec`.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING

from repro._ids import ProcessId
from repro.core import scheduling

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transport import NodeContext
    from repro.ddb.controller import Controller


class DdbInitiationPolicy:
    """Interface; one policy instance is shared by all controllers."""

    def on_process_blocked(self, controller: "Controller", process: ProcessId) -> None:
        """``process`` at ``controller`` just gained outgoing edges."""

    def on_process_unblocked(self, controller: "Controller", process: ProcessId) -> None:
        """``process`` at ``controller`` resumed (granted or aborted)."""

    def setup(self, controller: "Controller") -> None:
        """Called once per controller at system construction."""


class _ControllerSite:
    """One DDB controller, in the seam's site vocabulary.

    Subjects are constituent :class:`~repro._ids.ProcessId`\\ s; the scan
    capability carries the section 6.7 reduction, so the shared
    ``periodic`` policy stays model-neutral.
    """

    __slots__ = ("controller",)

    def __init__(self, controller: "Controller") -> None:
        self.controller = controller

    @property
    def ctx(self) -> "NodeContext":
        return self.controller.ctx

    @property
    def site_key(self) -> Hashable:
        return self.controller.site

    def initiate(self, subject: Hashable) -> None:
        self.controller.initiate_for(subject)

    def is_waiting(self, subject: Hashable) -> bool:
        return self.controller.is_process_blocked(subject)

    def timer_name(self, subject: Hashable) -> str:
        return f"ddb T-timer {subject}"

    def note_avoided(self) -> None:
        self.controller.ctx.counter("ddb.computations.avoided").increment()

    def scan(self, optimized: bool) -> None:
        controller = self.controller
        controller.ctx.counter("ddb.scans").increment()
        blocked = controller.blocked_processes()
        if optimized:
            # Section 6.7: any constituent process on a local cycle is
            # found by one local check; otherwise every dark cycle through
            # this site enters through an incoming black inter-controller
            # edge, so Q computations (one per such process) suffice.
            controller.ctx.counter("ddb.scan.naive_candidates").increment(len(blocked))
            local_cycle_member = controller.find_local_cycle_member()
            if local_cycle_member is not None:
                controller.initiate_for(local_cycle_member)
            else:
                for process in controller.processes_with_incoming_black_inter_edges():
                    controller.initiate_for(process)
        else:
            for process in blocked:
                controller.initiate_for(process)

    def scan_timer_name(self) -> str:
        return f"ddb scan C{self.controller.site}"


class DdbPolicyInitiation(DdbInitiationPolicy):
    """Drive DDB controllers from a core scheduling policy instance."""

    def __init__(self, policy: scheduling.InitiationPolicy) -> None:
        self.policy = policy

    def setup(self, controller: "Controller") -> None:
        self.policy.setup(_ControllerSite(controller))

    def on_process_blocked(self, controller: "Controller", process: ProcessId) -> None:
        self.policy.on_waits_started(_ControllerSite(controller), (process,))

    def on_process_unblocked(self, controller: "Controller", process: ProcessId) -> None:
        self.policy.on_wait_resolved(_ControllerSite(controller), process)


class DdbManualInitiation(DdbPolicyInitiation):
    """Never initiates automatically."""

    def __init__(self) -> None:
        super().__init__(scheduling.ManualPolicy())


class DdbImmediateInitiation(DdbPolicyInitiation):
    """Initiate about each process the moment it blocks."""

    def __init__(self) -> None:
        super().__init__(scheduling.ImmediatePolicy())


class DdbDelayedInitiation(DdbPolicyInitiation):
    """Section 4.3's delayed-T rule lifted to the DDB.

    A probe computation about a process starts only after the process has
    been blocked *continuously* for ``T`` time units; resolving the wait
    sooner cancels the timer ("has avoided initiating a probe
    computation").  Deadlocked processes stay blocked forever, so their
    timers always fire -- completeness is preserved at latency >= T, the
    same tradeoff the shared :class:`~repro.core.scheduling.DelayedPolicy`
    applies at basic-model vertices.
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(scheduling.DelayedPolicy(timeout))

    @property
    def timeout(self) -> float:
        delayed = self.policy
        assert isinstance(delayed, scheduling.DelayedPolicy)
        return delayed.timeout


class DdbPeriodicInitiation(DdbPolicyInitiation):
    """Timer-driven controller scans, naive or 6.7-optimised.

    Parameters
    ----------
    period:
        Virtual-time interval between scans at each controller.
    optimized:
        Apply the section 6.7 reduction (local-cycle check, then only
        processes with incoming black inter-controller edges).
    horizon:
        Stop rescheduling scans after this virtual time (experiments run
        for a bounded time; without a horizon the simulation never
        quiesces).
    """

    def __init__(
        self, period: float, optimized: bool = True, horizon: float = float("inf")
    ) -> None:
        super().__init__(scheduling.PeriodicPolicy(period, optimized, horizon))

    @property
    def period(self) -> float:
        periodic = self.policy
        assert isinstance(periodic, scheduling.PeriodicPolicy)
        return periodic.period

    @property
    def optimized(self) -> bool:
        periodic = self.policy
        assert isinstance(periodic, scheduling.PeriodicPolicy)
        return periodic.optimized


def from_policy_spec(spec: scheduling.PolicySpec) -> DdbPolicyInitiation:
    """Resolve a registered policy spec into a DDB initiation."""
    return DdbPolicyInitiation(scheduling.build_policy(spec, model="ddb"))
