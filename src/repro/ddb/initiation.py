"""Initiation policies for DDB probe computations (sections 4.2, 6.7).

* :class:`DdbImmediateInitiation` -- the section 4.2 rule lifted to the
  DDB: whenever a process at this controller becomes blocked (gains its
  first outgoing edge of a blocking episode), initiate a computation about
  it.  Guarantees the process that closes a dark cycle triggers detection.
* :class:`DdbPeriodicInitiation` -- controllers scan on a timer.  In
  *naive* mode a scan initiates one computation per blocked constituent
  process.  In *optimised* mode (section 6.7) the controller first looks
  for a purely local intra-controller cycle, and otherwise initiates only
  Q computations -- one per constituent process with an incoming black
  inter-controller edge.  Experiment E7 compares the two.
* :class:`DdbManualInitiation` -- no automatic initiation (scenario tests
  call :meth:`Controller.initiate_for` directly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._ids import ProcessId
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ddb.controller import Controller


class DdbInitiationPolicy:
    """Interface; one policy instance is shared by all controllers."""

    def on_process_blocked(self, controller: "Controller", process: ProcessId) -> None:
        """``process`` at ``controller`` just gained outgoing edges."""

    def on_process_unblocked(self, controller: "Controller", process: ProcessId) -> None:
        """``process`` at ``controller`` resumed (granted or aborted)."""

    def setup(self, controller: "Controller") -> None:
        """Called once per controller at system construction."""


class DdbManualInitiation(DdbInitiationPolicy):
    """Never initiates automatically."""


class DdbImmediateInitiation(DdbInitiationPolicy):
    """Initiate about each process the moment it blocks."""

    def on_process_blocked(self, controller: "Controller", process: ProcessId) -> None:
        controller.initiate_for(process)


class DdbDelayedInitiation(DdbInitiationPolicy):
    """Section 4.3's delayed-T rule lifted to the DDB.

    A probe computation about a process starts only after the process has
    been blocked *continuously* for ``T`` time units; resolving the wait
    sooner cancels the timer ("has avoided initiating a probe
    computation").  Deadlocked processes stay blocked forever, so their
    timers always fire -- completeness is preserved at latency >= T, the
    same tradeoff as the basic model's
    :class:`~repro.basic.initiation.DelayedInitiation`.
    """

    def __init__(self, timeout: float) -> None:
        if timeout < 0:
            raise ConfigurationError(f"T must be non-negative, got {timeout}")
        self.timeout = timeout
        self._timers: dict[ProcessId, "object"] = {}

    def on_process_blocked(self, controller: "Controller", process: ProcessId) -> None:
        def fire() -> None:
            self._timers.pop(process, None)
            if controller.is_process_blocked(process):
                controller.initiate_for(process)

        self._timers[process] = controller.ctx.set_timer(
            self.timeout, fire, name=f"ddb T-timer {process}"
        )

    def on_process_unblocked(self, controller: "Controller", process: ProcessId) -> None:
        handle = self._timers.pop(process, None)
        if handle is not None:
            handle.cancel()
            controller.ctx.counter("ddb.computations.avoided").increment()


class DdbPeriodicInitiation(DdbInitiationPolicy):
    """Timer-driven controller scans, naive or 6.7-optimised.

    Parameters
    ----------
    period:
        Virtual-time interval between scans at each controller.
    optimized:
        Apply the section 6.7 reduction (local-cycle check, then only
        processes with incoming black inter-controller edges).
    horizon:
        Stop rescheduling scans after this virtual time (experiments run
        for a bounded time; without a horizon the simulation never
        quiesces).
    """

    def __init__(self, period: float, optimized: bool = True, horizon: float = float("inf")) -> None:
        if period <= 0:
            raise ConfigurationError(f"scan period must be positive, got {period}")
        self.period = period
        self.optimized = optimized
        self.horizon = horizon

    def setup(self, controller: "Controller") -> None:
        self._schedule(controller)

    def _schedule(self, controller: "Controller") -> None:
        next_time = controller.now + self.period
        if next_time > self.horizon:
            return
        controller.ctx.set_timer(
            self.period,
            lambda: self._scan(controller),
            name=f"ddb scan C{controller.site}",
        )

    def _scan(self, controller: "Controller") -> None:
        controller.ctx.counter("ddb.scans").increment()
        blocked = controller.blocked_processes()
        if self.optimized:
            # Section 6.7: any constituent process on a local cycle is
            # found by one local check; otherwise every dark cycle through
            # this site enters through an incoming black inter-controller
            # edge, so Q computations (one per such process) suffice.
            controller.ctx.counter("ddb.scan.naive_candidates").increment(len(blocked))
            local_cycle_member = controller.find_local_cycle_member()
            if local_cycle_member is not None:
                controller.initiate_for(local_cycle_member)
            else:
                for process in controller.processes_with_incoming_black_inter_edges():
                    controller.initiate_for(process)
        else:
            for process in blocked:
                controller.initiate_for(process)
        self._schedule(controller)
