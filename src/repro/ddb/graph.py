"""The DDB process-level coloured wait-for graph (axioms G1-G6, section 6.4).

Vertices are DDB processes ``(T_i, S_j)``.  Two edge kinds exist:

* **intra-controller** edges, between processes at the same computer,
  always black (the controller locally knows both sides of the wait);
* **inter-controller** edges, between two processes of the *same
  transaction* at different computers, coloured grey / black / white with
  the basic-model meaning.

As in the basic model, this graph is the omniscient oracle: controllers
update it transactionally with their protocol actions (for verification
only -- no protocol decision reads it), and the soundness/completeness
checks of the DDB experiments are answered here.

Deadlock resolution (our extension -- the paper's model has no aborts)
removes edges in ways G1-G6 do not describe; those removals go through
:meth:`force_remove_intra_edge` / :meth:`force_remove_inter_edge`, which
bypass the axiom checks deliberately and only on the abort path.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro._ids import ProcessId
from repro.basic.graph import EdgeColor
from repro.errors import AxiomViolation

ProcessEdge = tuple[ProcessId, ProcessId]


class DdbWaitForGraph:
    """Coloured process-level wait-for graph with DDB axioms enforced."""

    def __init__(self) -> None:
        #: intra edges (always black): edge -> True
        self._intra: set[ProcessEdge] = set()
        #: inter edges: edge -> (colour, serial)
        self._inter: dict[ProcessEdge, tuple[EdgeColor, int]] = {}
        self._out: dict[ProcessId, set[ProcessId]] = {}
        self._in: dict[ProcessId, set[ProcessId]] = {}

    # ------------------------------------------------------------------
    # Intra-controller edges (G1, G2 of the DDB axioms)
    # ------------------------------------------------------------------

    def add_intra_edge(self, source: ProcessId, target: ProcessId) -> None:
        """G1 (DDB): add a black intra-controller edge if none exists."""
        edge = (source, target)
        if source.site != target.site:
            raise AxiomViolation(
                "G1-DDB", f"intra edge {edge} spans sites {source.site} != {target.site}"
            )
        if source == target:
            raise AxiomViolation("G1-DDB", f"self-edge {edge}")
        if edge in self._intra or edge in self._inter:
            raise AxiomViolation("G1-DDB", f"edge {edge} already exists")
        self._intra.add(edge)
        self._link(source, target)

    def remove_intra_edge(self, source: ProcessId, target: ProcessId) -> None:
        """G2 (DDB): delete a black intra edge; target must be active."""
        edge = (source, target)
        if edge not in self._intra:
            raise AxiomViolation("G2-DDB", f"intra edge {edge} does not exist")
        if self._out.get(target):
            raise AxiomViolation(
                "G2-DDB",
                f"cannot delete {edge}: target has outgoing edges "
                f"{sorted(self._out[target])}",
            )
        self._intra.discard(edge)
        self._unlink(source, target)

    def force_remove_intra_edge(self, source: ProcessId, target: ProcessId) -> bool:
        """Abort path: drop an intra edge regardless of G2.  Returns True
        if the edge existed."""
        edge = (source, target)
        if edge not in self._intra:
            return False
        self._intra.discard(edge)
        self._unlink(source, target)
        return True

    # ------------------------------------------------------------------
    # Inter-controller edges (G3-G6 of the DDB axioms)
    # ------------------------------------------------------------------

    def add_inter_edge(self, source: ProcessId, target: ProcessId, serial: int) -> None:
        """G3 (DDB): add a grey inter edge if the edge does not exist."""
        edge = (source, target)
        if source.transaction != target.transaction:
            raise AxiomViolation(
                "G3-DDB",
                f"inter edge {edge} spans transactions "
                f"{source.transaction} != {target.transaction}",
            )
        if source.site == target.site:
            raise AxiomViolation("G3-DDB", f"inter edge {edge} within one site")
        if edge in self._inter or edge in self._intra:
            raise AxiomViolation("G3-DDB", f"edge {edge} already exists")
        self._inter[edge] = (EdgeColor.GREY, serial)
        self._link(source, target)

    def blacken_inter_edge(self, source: ProcessId, target: ProcessId, serial: int) -> bool:
        """G4 (DDB): a grey inter edge turns black when the remote request
        is received.

        Returns False (no-op) when the edge is gone or carries a different
        serial -- which happens only when the transaction was aborted while
        the request was in flight.
        """
        state = self._inter.get((source, target))
        if state is None or state[1] != serial:
            return False
        color, _ = state
        if color is not EdgeColor.GREY:
            raise AxiomViolation(
                "G4-DDB", f"inter edge {(source, target)} is {color.value}, expected grey"
            )
        self._inter[(source, target)] = (EdgeColor.BLACK, serial)
        return True

    def whiten_inter_edge(self, source: ProcessId, target: ProcessId, serial: int) -> bool:
        """G5 (DDB): black turns white when all items are granted; the
        target (agent) must have no outgoing edges.  Serial-mismatch no-op
        as in :meth:`blacken_inter_edge`.
        """
        state = self._inter.get((source, target))
        if state is None or state[1] != serial:
            return False
        color, _ = state
        if color is not EdgeColor.BLACK:
            raise AxiomViolation(
                "G5-DDB", f"inter edge {(source, target)} is {color.value}, expected black"
            )
        if self._out.get(target):
            raise AxiomViolation(
                "G5-DDB",
                f"cannot whiten {(source, target)}: target {target} has outgoing edges",
            )
        self._inter[(source, target)] = (EdgeColor.WHITE, serial)
        return True

    def delete_inter_edge(self, source: ProcessId, target: ProcessId, serial: int) -> bool:
        """G6 (DDB): a white inter edge disappears when the 'acquired'
        message reaches the origin.  Serial-mismatch no-op."""
        state = self._inter.get((source, target))
        if state is None or state[1] != serial:
            return False
        color, _ = state
        if color is not EdgeColor.WHITE:
            raise AxiomViolation(
                "G6-DDB", f"inter edge {(source, target)} is {color.value}, expected white"
            )
        del self._inter[(source, target)]
        self._unlink(source, target)
        return True

    def force_remove_inter_edge(self, source: ProcessId, target: ProcessId) -> bool:
        """Abort path: drop an inter edge in any colour state."""
        if (source, target) not in self._inter:
            return False
        del self._inter[(source, target)]
        self._unlink(source, target)
        return True

    # ------------------------------------------------------------------
    # Internal adjacency maintenance
    # ------------------------------------------------------------------

    def _link(self, source: ProcessId, target: ProcessId) -> None:
        self._out.setdefault(source, set()).add(target)
        self._in.setdefault(target, set()).add(source)

    def _unlink(self, source: ProcessId, target: ProcessId) -> None:
        self._out[source].discard(target)
        self._in[target].discard(source)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def color(self, source: ProcessId, target: ProcessId) -> EdgeColor | None:
        """Colour of an edge (intra edges are always black), or None."""
        if (source, target) in self._intra:
            return EdgeColor.BLACK
        state = self._inter.get((source, target))
        return state[0] if state is not None else None

    def has_edge(self, source: ProcessId, target: ProcessId) -> bool:
        return (source, target) in self._intra or (source, target) in self._inter

    def successors(self, process: ProcessId) -> set[ProcessId]:
        return set(self._out.get(process, ()))

    def edges(self) -> Iterator[tuple[ProcessEdge, EdgeColor]]:
        for edge in self._intra:
            yield edge, EdgeColor.BLACK
        for edge, (color, _) in self._inter.items():
            yield edge, color

    def __len__(self) -> int:
        return len(self._intra) + len(self._inter)

    # ------------------------------------------------------------------
    # Cycle analysis (verification ground truth)
    # ------------------------------------------------------------------

    def _dark_successors(
        self, process: ProcessId, colors: frozenset[EdgeColor]
    ) -> Iterable[ProcessId]:
        for target in self._out.get(process, ()):
            if self.color(process, target) in colors:
                yield target

    def _on_cycle(self, process: ProcessId, colors: frozenset[EdgeColor]) -> bool:
        stack = list(self._dark_successors(process, colors))
        visited: set[ProcessId] = set()
        while stack:
            current = stack.pop()
            if current == process:
                return True
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._dark_successors(current, colors))
        return False

    def is_on_dark_cycle(self, process: ProcessId) -> bool:
        """Deadlock ground truth: a cycle of grey/black edges through
        ``process`` (intra edges count as black)."""
        return self._on_cycle(process, frozenset({EdgeColor.GREY, EdgeColor.BLACK}))

    def is_on_black_cycle(self, process: ProcessId) -> bool:
        """QRP2 ground truth: an all-black cycle through ``process``."""
        return self._on_cycle(process, frozenset({EdgeColor.BLACK}))

    def processes(self) -> set[ProcessId]:
        seen: set[ProcessId] = set()
        for (a, b), _ in self.edges():
            seen.add(a)
            seen.add(b)
        return seen

    def processes_on_dark_cycles(self) -> set[ProcessId]:
        return {p for p in self.processes() if self.is_on_dark_cycle(p)}

    def deadlocked_transactions(self) -> set[int]:
        """Transactions owning at least one process on a dark cycle."""
        return {p.transaction for p in self.processes_on_dark_cycles()}

    def permanent_black_edges_from(self, process: ProcessId) -> set[ProcessEdge]:
        """Ground truth for the lifted WFGD computation.

        Mirrors :meth:`WaitForGraph.permanent_black_edges_from`: black
        edges reachable from ``process`` along black edges whose targets
        are permanently blocked (reach a dark cycle along dark edges).
        """
        deadlocked = self.processes_on_dark_cycles()
        if not deadlocked:
            return set()
        permanently_blocked = set(deadlocked)
        changed = True
        while changed:
            changed = False
            for (a, b), color in self.edges():
                if (
                    color.is_dark
                    and b in permanently_blocked
                    and a not in permanently_blocked
                ):
                    permanently_blocked.add(a)
                    changed = True
        result: set[ProcessEdge] = set()
        stack = [process]
        seen: set[ProcessId] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for target in self._out.get(current, ()):
                if (
                    self.color(current, target) is EdgeColor.BLACK
                    and target in permanently_blocked
                ):
                    result.add((current, target))
                    stack.append(target)
        return result

    def __repr__(self) -> str:
        return f"DdbWaitForGraph(intra={len(self._intra)}, inter={len(self._inter)})"
