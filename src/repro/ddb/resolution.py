"""Deadlock resolution: what to do once a deadlock is declared.

The paper stops at detection ("the question of how deadlocks should be
broken is not treated here"); production systems must break the cycle so
work continues.  We implement the standard victim-abort scheme as the
natural extension:

* :class:`AbortAboutTransaction` -- the transaction owning the declared
  process is the victim.  If the declaring controller is the victim's home
  it aborts directly; otherwise it sends an
  :class:`~repro.ddb.messages.AbortDemand` to the home controller.
* :class:`NoResolution` -- record declarations only (detection-only mode;
  deadlocked transactions stay stuck, which is what the completeness
  checks at quiescence need).

Restarting a victim is the workload's decision, exposed through
:meth:`DdbSystem.on_transaction_finished` callbacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._ids import ProbeTag, ProcessId
from repro.ddb.messages import AbortDemand

if TYPE_CHECKING:  # pragma: no cover
    from repro.ddb.controller import Controller


class VictimPolicy:
    """Interface: invoked whenever a controller declares a deadlock."""

    def on_declaration(
        self, controller: "Controller", process: ProcessId, tag: ProbeTag
    ) -> None:
        raise NotImplementedError


class NoResolution(VictimPolicy):
    """Detection-only: record and do nothing."""

    def on_declaration(
        self, controller: "Controller", process: ProcessId, tag: ProbeTag
    ) -> None:
        pass


class AbortAboutTransaction(VictimPolicy):
    """Abort the transaction owning the declared process.

    Simple and local, but when several controllers detect the same cycle
    concurrently they each abort *their own* transaction -- the cycle is
    broken several times over (duplicate victims).
    """

    def on_declaration(
        self, controller: "Controller", process: ProcessId, tag: ProbeTag
    ) -> None:
        _demand_abort(controller, process.transaction)


class AbortLowestTransactionInCycle(VictimPolicy):
    """Abort the lowest-numbered transaction among the labelled processes.

    Every controller that detects one cycle labels (at least) the local
    slice of that cycle's transactions; because the cycle's transaction
    set is common, the *minimum transaction id* is a deterministic
    tie-break that concurrent detectors agree on -- they all demand the
    same victim, aborts are idempotent at the home controller, and
    duplicate victims disappear.  (A production system would use age or
    lock counts; any globally consistent total order works.)
    """

    def on_declaration(
        self, controller: "Controller", process: ProcessId, tag: ProbeTag
    ) -> None:
        candidates = {p.transaction for p in controller.detector.labelled_for(tag)}
        candidates.add(process.transaction)
        _demand_abort(controller, min(candidates))


def _demand_abort(controller: "Controller", tid) -> None:
    home = controller.system.transaction_home(tid)
    if home == controller.site:
        controller.abort_transaction(tid)
    else:
        # Incarnation is local knowledge when the victim has a process
        # here; otherwise fall back to the newest incarnation seen.
        incarnation = controller.local_incarnation(tid)
        controller.send(home, AbortDemand(transaction=tid, incarnation=incarnation))
