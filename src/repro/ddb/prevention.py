"""Deadlock *prevention*: the timestamp schemes the detection approach
competes with.

The paper's premise is that deadlocks are allowed to happen and then
detected.  The classic alternative (Rosenkrantz, Stearns & Lewis 1978 --
the scheme running in System R* era databases) prevents cycles outright by
ordering transactions with timestamps that persist across restarts:

* **wait-die** (non-preemptive): an older requester may wait for a younger
  holder; a younger requester *dies* (aborts, restarts later with its
  original timestamp).  Wait-for edges then always point old -> young, so
  no cycle can form.
* **wound-wait** (preemptive): an older requester *wounds* younger holders
  (they abort); a younger requester waits.  Edges point young -> old --
  again acyclic.

Both need zero detection messages; the price is aborting transactions that
were never deadlocked.  The ablation bench quantifies that trade against
the probe computation on identical workloads.

Integration: controllers consult the policy at lock-conflict time with the
requester's and the incompatible holders' timestamps -- all locally known
(timestamps travel with ``begin`` and :class:`RemoteAcquireRequest`).
A "die" leaves the requester blocked *outside* the lock queue and schedules
its abort immediately; wounds are delivered as forced abort demands to the
victims' home controllers.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro._ids import ProcessId, TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.ddb.controller import Controller


class Decision(enum.Enum):
    """Outcome of a conflict consultation for the requester."""

    WAIT = "wait"
    DIE = "die"


class PreventionPolicy:
    """Interface: consulted on every lock conflict.

    ``holders`` are the incompatible current holders with their
    timestamps.  The policy returns the requester's fate and may name
    holders to wound (abort).  Lower timestamp = older transaction.
    """

    name = "prevention"

    def on_conflict(
        self,
        requester: ProcessId,
        requester_timestamp: int,
        holders: Sequence[tuple[ProcessId, int]],
    ) -> tuple[Decision, list[TransactionId]]:
        raise NotImplementedError


class WaitDie(PreventionPolicy):
    """Non-preemptive: old waits, young dies."""

    name = "wait-die"

    def on_conflict(
        self,
        requester: ProcessId,
        requester_timestamp: int,
        holders: Sequence[tuple[ProcessId, int]],
    ) -> tuple[Decision, list[TransactionId]]:
        if any(timestamp < requester_timestamp for _, timestamp in holders):
            # A conflicting holder is older: the requester dies.
            return Decision.DIE, []
        return Decision.WAIT, []


class WoundWait(PreventionPolicy):
    """Preemptive: old wounds young, young waits."""

    name = "wound-wait"

    def on_conflict(
        self,
        requester: ProcessId,
        requester_timestamp: int,
        holders: Sequence[tuple[ProcessId, int]],
    ) -> tuple[Decision, list[TransactionId]]:
        wounded = [
            holder.transaction
            for holder, timestamp in holders
            if timestamp > requester_timestamp
        ]
        return Decision.WAIT, wounded
