"""Read/write locks with "grant any compatible" queueing.

The paper notes that "the details regarding locks and locking protocols are
not relevant to the problem" -- what matters is the wait-for graph they
induce.  We implement the standard two-mode scheme (shared / exclusive)
with these semantics:

* a request compatible with all current holders is granted immediately,
  even if incompatible requests arrived earlier ("grant any compatible",
  i.e. no strict FIFO).  This keeps the blocking relation exactly "waiter
  w waits for the holders whose locks are incompatible with w's request",
  which is the Menasce-Muntz wait-for edge definition;
* lock *upgrades* (a shared holder requesting exclusive) are supported and
  wait for the other shared holders -- a classic deadlock generator
  (two upgraders deadlock each other);
* re-requesting a mode already held (or weaker) is a no-op grant.

Starvation of exclusive requests is possible under this policy; it is
irrelevant here because experiments bound virtual time and deadlock -- not
scheduling fairness -- is the object of study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._ids import ProcessId, ResourceId
from repro.errors import ProtocolError


class LockMode(enum.Enum):
    """Lock modes; SHARED is compatible only with SHARED."""

    SHARED = "S"
    EXCLUSIVE = "X"


def compatible(held: LockMode, requested: LockMode) -> bool:
    """Mode compatibility matrix: S/S only."""
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class LockRequest:
    """A waiting lock request."""

    process: ProcessId
    mode: LockMode


class ResourceLock:
    """Lock state of one resource: holders plus waiting requests."""

    def __init__(self, resource: ResourceId) -> None:
        self.resource = resource
        self.holders: dict[ProcessId, LockMode] = {}
        self.waiters: list[LockRequest] = []

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def request(self, process: ProcessId, mode: LockMode) -> bool:
        """Request ``mode`` for ``process``; return True iff granted now.

        A process may hold at most one mode per resource; requesting while
        already waiting on the same resource is a protocol error (the
        transaction model never issues overlapping requests).
        """
        if any(waiter.process == process for waiter in self.waiters):
            raise ProtocolError(
                f"{process} already waits for {self.resource}; overlapping request"
            )
        held = self.holders.get(process)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return True  # already held in a sufficient mode
            # Upgrade S -> X: grantable iff sole holder.
            if len(self.holders) == 1:
                self.holders[process] = LockMode.EXCLUSIVE
                return True
            self.waiters.append(LockRequest(process, mode))
            return False
        if self._grantable(process, mode):
            self.holders[process] = mode
            return True
        self.waiters.append(LockRequest(process, mode))
        return False

    def _grantable(self, process: ProcessId, mode: LockMode) -> bool:
        return all(
            compatible(held_mode, mode)
            for holder, held_mode in self.holders.items()
            if holder != process
        )

    # ------------------------------------------------------------------
    # Release / cancel
    # ------------------------------------------------------------------

    def release(self, process: ProcessId) -> list[LockRequest]:
        """Release ``process``'s lock and return newly granted requests.

        Granting sweeps the wait list in arrival order, granting every
        request now compatible (including upgrades that became sole-holder).
        """
        if process not in self.holders:
            raise ProtocolError(f"{process} holds no lock on {self.resource}")
        del self.holders[process]
        return self._sweep()

    def cancel(self, process: ProcessId) -> bool:
        """Remove ``process``'s waiting request (victim abort).  Returns
        True if a waiting request was removed."""
        before = len(self.waiters)
        self.waiters = [w for w in self.waiters if w.process != process]
        return len(self.waiters) != before

    def release_or_cancel(self, process: ProcessId) -> list[LockRequest]:
        """Abort path: drop any waiting request and any held lock."""
        self.cancel(process)
        if process in self.holders:
            return self.release(process)
        return []

    def _sweep(self) -> list[LockRequest]:
        granted: list[LockRequest] = []
        remaining: list[LockRequest] = []
        for waiter in self.waiters:
            held = self.holders.get(waiter.process)
            if held is not None:
                # Upgrade request: grantable iff it is now the sole holder.
                if len(self.holders) == 1:
                    self.holders[waiter.process] = waiter.mode
                    granted.append(waiter)
                else:
                    remaining.append(waiter)
            elif self._grantable(waiter.process, waiter.mode):
                self.holders[waiter.process] = waiter.mode
                granted.append(waiter)
            else:
                remaining.append(waiter)
        self.waiters = remaining
        return granted

    # ------------------------------------------------------------------
    # Wait-for derivation
    # ------------------------------------------------------------------

    def waits_for(self, process: ProcessId) -> set[ProcessId]:
        """Holders that block ``process``'s waiting request (if any).

        This is exactly the Menasce-Muntz intra-controller wait-for edge
        set contributed by this resource.
        """
        for waiter in self.waiters:
            if waiter.process == process:
                return {
                    holder
                    for holder, held_mode in self.holders.items()
                    if holder != process and not compatible(held_mode, waiter.mode)
                }
        return set()

    def all_wait_edges(self) -> set[tuple[ProcessId, ProcessId]]:
        """All (waiter, holder) pairs this resource currently induces."""
        edges: set[tuple[ProcessId, ProcessId]] = set()
        for waiter in self.waiters:
            for holder, held_mode in self.holders.items():
                if holder != waiter.process and not compatible(held_mode, waiter.mode):
                    edges.add((waiter.process, holder))
        return edges

    @property
    def idle(self) -> bool:
        """No holders and no waiters."""
        return not self.holders and not self.waiters

    def __repr__(self) -> str:
        return (
            f"ResourceLock({self.resource!r}, holders={len(self.holders)}, "
            f"waiters={len(self.waiters)})"
        )
