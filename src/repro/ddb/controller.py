"""Controllers: local operating systems of the DDB model (section 6.2).

A controller ``C_j``:

* schedules the processes at its computer (here: executes their state
  machines directly -- process/controller communication is "memory area +
  scheduling" in the paper, i.e. local and instantaneous),
* manages the resources homed at its computer through a lock table,
* forwards resource requests of its transactions to remote controllers and
  answers remote requests through agent processes ``(T_i, S_m)``,
* maintains the *local* wait-for knowledge the process axioms grant it
  (P3: it knows the existence of outgoing edges from its processes and the
  incoming black inter-controller edges to its processes),
* runs the probe computation of section 6.6 through an embedded
  :class:`~repro.ddb.detector.DdbDetector`.

The global oracle graph is updated alongside every transition for
verification; no protocol decision ever reads it.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable

from repro._ids import ProbeTag, ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.detector import DdbDetector
from repro.ddb.locks import LockMode, LockRequest, ResourceLock, compatible
from repro.ddb.messages import (
    AbortDemand,
    DdbProbe,
    DdbWfgdMessage,
    EdgeRef,
    RemoteAbort,
    RemoteAcquireGranted,
    RemoteAcquireRequest,
    RemoteRelease,
)
from repro.ddb.prevention import Decision
from repro.ddb.transaction import (
    Acquire,
    AgentRuntime,
    InboundAcquire,
    RemoteWait,
    Think,
    TransactionExecution,
    TransactionSpec,
    TransactionStatus,
)
from repro.ddb.wfgd import DdbWfgdState
from repro.errors import ProtocolError
from repro.sim import categories
from repro.sim.process import Process

ProcessEdge = tuple[ProcessId, ProcessId]


class Controller(Process):
    """The controller ``C_j`` at site ``S_j``."""

    def __init__(self, site: SiteId, system: "object") -> None:
        # ``system`` is a DdbSystem; typed loosely to avoid an import cycle.
        super().__init__(site)
        self.site = site
        self.system = system
        self.locks: dict[ResourceId, ResourceLock] = {}
        self.executions: dict[TransactionId, TransactionExecution] = {}
        self.agents: dict[TransactionId, AgentRuntime] = {}
        self.detector = DdbDetector(self)
        self.wfgd = DdbWfgdState(self)
        self._serial_counter = itertools.count(1)
        #: intra edges induced by each local resource (for diffing)
        self._resource_edges: dict[ResourceId, set[ProcessEdge]] = {}
        #: reference counts: several resources may induce the same edge
        self._intra_refs: dict[ProcessEdge, int] = {}
        #: newest incarnation seen per transaction (stale-message guard)
        self._latest_incarnation: dict[TransactionId, int] = {}

    # ------------------------------------------------------------------
    # Shorthand
    # ------------------------------------------------------------------

    @property
    def oracle(self):
        return self.system.oracle

    def _resource_home(self, resource: ResourceId) -> SiteId:
        return self.system.resource_home[resource]

    def local_incarnation(self, tid: TransactionId) -> int:
        """The incarnation of ``tid`` as locally known (P3-style locality:
        only consulted for transactions with a local process)."""
        execution = self.executions.get(tid)
        if execution is not None:
            return execution.incarnation
        agent = self.agents.get(tid)
        if agent is not None:
            return agent.incarnation
        return self._latest_incarnation.get(tid, 0)

    def _lock(self, resource: ResourceId) -> ResourceLock:
        existing = self.locks.get(resource)
        if existing is None:
            if self._resource_home(resource) != self.site:
                raise ProtocolError(
                    f"resource {resource!r} is not homed at site {self.site}"
                )
            existing = ResourceLock(resource)
            self.locks[resource] = existing
        return existing

    # ------------------------------------------------------------------
    # Transaction admission and program execution (home side)
    # ------------------------------------------------------------------

    def begin(self, spec: TransactionSpec, incarnation: int, timestamp: int = 0) -> None:
        """Admit one incarnation of a transaction whose home is this site.

        ``timestamp`` is the admission-order priority used by prevention
        schemes; it is retained across restarts.
        """
        if spec.home != self.site:
            raise ProtocolError(
                f"transaction T{spec.tid} homed at S{spec.home}, not S{self.site}"
            )
        existing = self.executions.get(spec.tid)
        if existing is not None and not existing.finished:
            raise ProtocolError(f"transaction T{spec.tid} is already running")
        self._latest_incarnation[spec.tid] = incarnation
        self.executions[spec.tid] = TransactionExecution(
            spec=spec, incarnation=incarnation, started_at=self.now,
            timestamp=timestamp,
        )
        self.ctx.trace(
            categories.DDB_TXN_BEGIN, tid=spec.tid, incarnation=incarnation, site=self.site
        )
        self._advance(spec.tid)

    def _advance(self, tid: TransactionId) -> None:
        """Run the home process's program until it blocks, sleeps, or commits."""
        execution = self.executions[tid]
        if execution.finished or execution.blocked:
            return
        operations = execution.spec.operations
        while execution.pc < len(operations):
            operation = operations[execution.pc]
            execution.pc += 1
            if isinstance(operation, Think):
                execution.status = TransactionStatus.RUNNING
                self.ctx.set_timer(
                    operation.duration,
                    lambda tid=tid: self._advance(tid),
                    name=f"think T{tid}",
                )
                return
            if isinstance(operation, Acquire):
                self._do_acquire(execution, operation)
                if execution.blocked:
                    execution.status = TransactionStatus.WAITING
                    self.ctx.trace(
                        categories.DDB_TXN_BLOCKED, tid=tid, site=self.site
                    )
                    self.system.initiation.on_process_blocked(
                        self, execution.spec.home_process
                    )
                    return
                continue
            raise ProtocolError(f"unknown operation {operation!r}")
        self._commit(execution)

    def _do_acquire(self, execution: TransactionExecution, operation: Acquire) -> None:
        home_pid = execution.spec.home_process
        by_site: dict[SiteId, list[tuple[ResourceId, LockMode]]] = {}
        for resource, mode in operation.items:
            by_site.setdefault(self._resource_home(resource), []).append((resource, mode))

        for resource, mode in by_site.pop(self.site, []):
            outcome = self._request_with_prevention(
                home_pid, execution.timestamp, resource, mode
            )
            if outcome == "granted":
                execution.held_local.add(resource)
            else:
                # "waiting" enters the lock queue; "died" blocks outside it
                # until the already-scheduled abort fires.
                execution.waiting_local.add(resource)
                if outcome == "died":
                    self.ctx.set_timer(
                        0.0,
                        lambda tid=execution.spec.tid: self.abort_transaction(tid),
                        name=f"wait-die T{execution.spec.tid}",
                    )

        for site, items in sorted(by_site.items()):
            agent_pid = ProcessId(transaction=execution.spec.tid, site=site)
            serial = next(self._serial_counter)
            execution.waiting_remote[site] = RemoteWait(
                target=agent_pid, serial=serial, sent_at=self.now
            )
            execution.agent_sites.add(site)
            self.oracle.add_inter_edge(home_pid, agent_pid, serial)
            self.ctx.trace(
                categories.DDB_EDGE_ADDED, kind="inter", source=home_pid, target=agent_pid
            )
            self.send(
                site,
                RemoteAcquireRequest(
                    edge=EdgeRef(origin=home_pid, target=agent_pid, serial=serial),
                    transaction=execution.spec.tid,
                    incarnation=execution.incarnation,
                    items=tuple(items),
                    timestamp=execution.timestamp,
                ),
            )

    def _commit(self, execution: TransactionExecution) -> None:
        execution.status = TransactionStatus.COMMITTED
        home_pid = execution.spec.home_process
        for resource in sorted(execution.held_local):
            self._local_release(home_pid, resource)
        execution.held_local.clear()
        for site in sorted(execution.agent_sites):
            self.send(
                site,
                RemoteRelease(
                    transaction=execution.spec.tid, incarnation=execution.incarnation
                ),
            )
        self.detector.prune(home_pid)
        self.ctx.counter("ddb.txn.committed").increment()
        self.ctx.trace(
            categories.DDB_TXN_COMMITTED, tid=execution.spec.tid, site=self.site
        )
        self.system.on_transaction_finished(execution, aborted=False)

    # ------------------------------------------------------------------
    # Local lock operations with oracle/edge maintenance
    # ------------------------------------------------------------------

    def _local_request(self, pid: ProcessId, resource: ResourceId, mode: LockMode) -> bool:
        lock = self._lock(resource)
        granted = lock.request(pid, mode)
        self._sync_resource_edges(resource)
        self.ctx.counter("ddb.lock.requests").increment()
        if not granted:
            self.ctx.counter("ddb.lock.waits").increment()
        return granted

    def _local_release(self, pid: ProcessId, resource: ResourceId) -> None:
        lock = self._lock(resource)
        newly_granted = lock.release(pid)
        self._sync_resource_edges(resource)
        self._process_grants(resource, newly_granted)
        if newly_granted:
            self._reconsult_waiters(resource)

    def _local_timestamp(self, pid: ProcessId) -> int:
        execution = self.executions.get(pid.transaction)
        if execution is not None and execution.spec.home_process == pid:
            return execution.timestamp
        agent = self.agents.get(pid.transaction)
        if agent is not None and agent.pid == pid:
            return agent.timestamp
        return 0

    def _request_with_prevention(
        self, pid: ProcessId, timestamp: int, resource: ResourceId, mode: LockMode
    ) -> str:
        """Lock request with optional prevention-scheme mediation.

        Returns "granted", "waiting", or "died".  A "died" requester was
        NOT enqueued; the caller marks it blocked and schedules its abort.
        Wounds (forced aborts of younger holders) are dispatched here.
        """
        prevention = getattr(self.system, "prevention", None)
        if prevention is not None:
            lock = self._lock(resource)
            blockers = [
                (holder, self._local_timestamp(holder))
                for holder, held_mode in lock.holders.items()
                if holder != pid and not compatible(held_mode, mode)
            ]
            if blockers:
                decision, wounded = prevention.on_conflict(pid, timestamp, blockers)
                for victim in wounded:
                    self.ctx.counter("ddb.prevention.wounds").increment()
                    self._demand_forced_abort(victim)
                if decision is Decision.DIE:
                    self.ctx.counter("ddb.prevention.deaths").increment()
                    return "died"
        if self._local_request(pid, resource, mode):
            # A new holder appeared: re-consult for the waiters it now
            # blocks (grant-any-compatible can create conflicts that were
            # not visible at their own request time).
            self._reconsult_waiters(resource)
            return "granted"
        return "waiting"

    def _reconsult_waiters(self, resource: ResourceId) -> None:
        """Re-apply the prevention policy to waiting requests.

        Called whenever the holder set of ``resource`` changes: a waiter
        admitted under one holder set may now conflict with a holder the
        scheme orders differently (classic wound-wait/wait-die re-check).
        """
        prevention = getattr(self.system, "prevention", None)
        if prevention is None:
            return
        lock = self.locks.get(resource)
        if lock is None:
            return
        for waiter in list(lock.waiters):
            blockers = [
                (holder, self._local_timestamp(holder))
                for holder, held_mode in lock.holders.items()
                if holder != waiter.process
                and not compatible(held_mode, waiter.mode)
            ]
            if not blockers:
                continue
            decision, wounded = prevention.on_conflict(
                waiter.process, self._local_timestamp(waiter.process), blockers
            )
            for victim in wounded:
                self.ctx.counter("ddb.prevention.wounds").increment()
                self._demand_forced_abort(victim)
            if decision is Decision.DIE:
                self.ctx.counter("ddb.prevention.deaths").increment()
                self._demand_forced_abort(waiter.process.transaction)

    def _demand_forced_abort(self, tid: TransactionId) -> None:
        home = self.system.transaction_home(tid)
        if home == self.site:
            self.ctx.set_timer(
                0.0,
                lambda: self.abort_transaction(tid),
                name=f"wound T{tid}",
            )
        else:
            self.send(
                home,
                AbortDemand(
                    transaction=tid,
                    incarnation=self.local_incarnation(tid),
                    force=True,
                ),
            )

    def _sync_resource_edges(self, resource: ResourceId, force: bool = False) -> None:
        """Diff the wait edges induced by ``resource`` against the oracle."""
        lock = self.locks.get(resource)
        new_edges = lock.all_wait_edges() if lock is not None else set()
        old_edges = self._resource_edges.get(resource, set())
        for edge in sorted(new_edges - old_edges):
            count = self._intra_refs.get(edge, 0)
            self._intra_refs[edge] = count + 1
            if count == 0:
                self.oracle.add_intra_edge(*edge)
                self.ctx.trace(
                    categories.DDB_EDGE_ADDED, kind="intra", source=edge[0], target=edge[1]
                )
                # WFGD persistent-send rule: a new waiter on an informed
                # process is informed immediately.
                self.wfgd.on_new_predecessor(edge[0], edge[1])
        for edge in sorted(old_edges - new_edges):
            count = self._intra_refs[edge] - 1
            if count == 0:
                del self._intra_refs[edge]
                if force:
                    self.oracle.force_remove_intra_edge(*edge)
                else:
                    self.oracle.remove_intra_edge(*edge)
            else:
                self._intra_refs[edge] = count
        if new_edges:
            self._resource_edges[resource] = new_edges
        else:
            self._resource_edges.pop(resource, None)

    def _process_grants(self, resource: ResourceId, granted: list[LockRequest]) -> None:
        """Route lock grants to their owning home execution or agent."""
        for request in granted:
            pid = request.process
            if pid.site != self.site:
                raise ProtocolError(f"granted a lock to non-local process {pid}")
            execution = self.executions.get(pid.transaction)
            if execution is not None and execution.spec.home_process == pid:
                execution.waiting_local.discard(resource)
                execution.held_local.add(resource)
                if not execution.blocked and not execution.finished:
                    execution.status = TransactionStatus.RUNNING
                    self.detector.prune(pid)
                    self.system.initiation.on_process_unblocked(self, pid)
                    self._advance(pid.transaction)
                continue
            agent = self.agents.get(pid.transaction)
            if agent is None or agent.pid != pid:
                raise ProtocolError(f"granted a lock to unknown process {pid}")
            agent.held.add(resource)
            if agent.inbound is not None:
                agent.inbound.remaining.discard(resource)
                if not agent.inbound.remaining:
                    self._complete_inbound(agent)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: Hashable, message: object) -> None:
        if isinstance(message, RemoteAcquireRequest):
            self._on_remote_acquire(message)
        elif isinstance(message, RemoteAcquireGranted):
            self._on_remote_granted(message)
        elif isinstance(message, RemoteRelease):
            self._on_remote_release(message)
        elif isinstance(message, RemoteAbort):
            self._abort_agent(message.transaction, message.incarnation)
        elif isinstance(message, AbortDemand):
            self._on_abort_demand(message)
        elif isinstance(message, DdbProbe):
            self.ctx.counter("ddb.probes.received").increment()
            self.detector.on_probe(message)
        elif isinstance(message, DdbWfgdMessage):
            if message.destination.site != self.site:
                raise ProtocolError(
                    f"WFGD message for {message.destination} delivered to C{self.site}"
                )
            self.ctx.counter("ddb.wfgd.received").increment()
            self.wfgd.absorb(message.destination, message.edges)
        else:
            raise ProtocolError(f"controller C{self.site} got unknown {message!r}")

    def _stale(self, tid: TransactionId, incarnation: int) -> bool:
        latest = self._latest_incarnation.get(tid)
        if latest is not None and incarnation < latest:
            self.ctx.counter("ddb.messages.stale").increment()
            return True
        self._latest_incarnation[tid] = incarnation
        return False

    def _on_remote_acquire(self, message: RemoteAcquireRequest) -> None:
        if self._stale(message.transaction, message.incarnation):
            return
        agent = self.agents.get(message.transaction)
        if agent is None or agent.incarnation != message.incarnation:
            agent = AgentRuntime(
                pid=message.edge.target,
                incarnation=message.incarnation,
                timestamp=message.timestamp,
            )
            self.agents[message.transaction] = agent
        if agent.inbound is not None:
            raise ProtocolError(
                f"agent {agent.pid} received overlapping remote acquisitions"
            )
        # The request's arrival blackens the inter edge (no-op if the
        # transaction aborted while the request was in flight).
        self.oracle.blacken_inter_edge(
            message.edge.origin, message.edge.target, message.edge.serial
        )
        self.wfgd.on_new_predecessor(message.edge.origin, message.edge.target)
        inbound = InboundAcquire(
            origin=message.edge.origin,
            serial=message.edge.serial,
            remaining=set(),
            items=message.items,
        )
        agent.inbound = inbound
        died = False
        for resource, mode in message.items:
            outcome = self._request_with_prevention(
                agent.pid, agent.timestamp, resource, mode
            )
            if outcome == "granted":
                agent.held.add(resource)
            else:
                inbound.remaining.add(resource)
                died |= outcome == "died"
        if died:
            # Wait-die at a remote site: the requesting TRANSACTION dies;
            # its home controller performs the abort (which will clean this
            # agent up via the usual RemoteAbort).
            self._demand_forced_abort(message.transaction)
            return
        if not inbound.remaining:
            self._complete_inbound(agent)
        else:
            self.ctx.trace(categories.DDB_AGENT_BLOCKED, pid=agent.pid)
            self.system.initiation.on_process_blocked(self, agent.pid)

    def _complete_inbound(self, agent: AgentRuntime) -> None:
        inbound = agent.inbound
        assert inbound is not None
        agent.inbound = None
        self.detector.prune(agent.pid)
        self.system.initiation.on_process_unblocked(self, agent.pid)
        self.oracle.whiten_inter_edge(inbound.origin, agent.pid, inbound.serial)
        self.send(
            inbound.origin.site,
            RemoteAcquireGranted(
                edge=EdgeRef(origin=inbound.origin, target=agent.pid, serial=inbound.serial)
            ),
        )

    def _on_remote_granted(self, message: RemoteAcquireGranted) -> None:
        edge = message.edge
        execution = self.executions.get(edge.origin.transaction)
        if execution is None or execution.finished:
            return
        wait = execution.waiting_remote.get(edge.target.site)
        if wait is None or wait.serial != edge.serial:
            self.ctx.counter("ddb.messages.stale").increment()
            return
        self.oracle.delete_inter_edge(edge.origin, edge.target, edge.serial)
        del execution.waiting_remote[edge.target.site]
        if not execution.blocked:
            execution.status = TransactionStatus.RUNNING
            self.detector.prune(edge.origin)
            self.system.initiation.on_process_unblocked(self, edge.origin)
            self._advance(edge.origin.transaction)

    def _on_remote_release(self, message: RemoteRelease) -> None:
        agent = self.agents.get(message.transaction)
        if agent is None or agent.incarnation != message.incarnation:
            return
        if agent.inbound is not None:
            raise ProtocolError(
                f"agent {agent.pid} released while an acquisition is in progress"
            )
        for resource in sorted(agent.held):
            self._local_release(agent.pid, resource)
        del self.agents[message.transaction]

    # ------------------------------------------------------------------
    # Abort path (resolution extension)
    # ------------------------------------------------------------------

    def _on_abort_demand(self, message: AbortDemand) -> None:
        execution = self.executions.get(message.transaction)
        if (
            execution is None
            or execution.finished
            or execution.incarnation != message.incarnation
        ):
            return
        if not execution.blocked and not message.force:
            # The deadlock was already broken by another victim and this
            # transaction has resumed; aborting it now would be wasted work.
            # (Prevention wounds set ``force``: they must preempt running
            # transactions.)
            self.ctx.counter("ddb.aborts.skipped").increment()
            return
        self.abort_transaction(message.transaction)

    def abort_transaction(self, tid: TransactionId) -> None:
        """Abort the current incarnation of a home transaction."""
        execution = self.executions.get(tid)
        if execution is None or execution.finished:
            return
        execution.status = TransactionStatus.ABORTED
        home_pid = execution.spec.home_process
        # 1. Cancel local waiting requests (force: targets may be blocked).
        for resource in sorted(execution.waiting_local):
            lock = self._lock(resource)
            lock.cancel(home_pid)
            self._sync_resource_edges(resource, force=True)
        execution.waiting_local.clear()
        # 2. Drop outgoing inter edges (the agent-side state is cleaned by
        #    the RemoteAbort that follows on the same FIFO channel).
        for wait in execution.waiting_remote.values():
            self.oracle.force_remove_inter_edge(home_pid, wait.target)
        execution.waiting_remote.clear()
        # 3. Release locally held locks (home now has no outgoing edges).
        for resource in sorted(execution.held_local):
            self._local_release(home_pid, resource)
        execution.held_local.clear()
        # 4. Tell every agent site.
        for site in sorted(execution.agent_sites):
            self.send(
                site,
                RemoteAbort(transaction=tid, incarnation=execution.incarnation),
            )
        self.detector.prune(home_pid)
        self.system.initiation.on_process_unblocked(self, home_pid)
        self.ctx.counter("ddb.txn.aborted").increment()
        self.ctx.trace(categories.DDB_TXN_ABORTED, tid=tid, site=self.site)
        self.system.on_transaction_finished(execution, aborted=True)

    def _abort_agent(self, tid: TransactionId, incarnation: int) -> None:
        agent = self.agents.get(tid)
        if agent is None or agent.incarnation != incarnation:
            return
        if agent.inbound is not None:
            for resource in sorted(agent.inbound.remaining):
                lock = self._lock(resource)
                lock.cancel(agent.pid)
                self._sync_resource_edges(resource, force=True)
            agent.inbound = None
        for resource in sorted(agent.held):
            self._local_release(agent.pid, resource)
        self.detector.prune(agent.pid)
        self.system.initiation.on_process_unblocked(self, agent.pid)
        del self.agents[tid]

    # ------------------------------------------------------------------
    # Local knowledge for the detector (process axiom P3)
    # ------------------------------------------------------------------

    def _waiting_resources(self, pid: ProcessId) -> set[ResourceId]:
        execution = self.executions.get(pid.transaction)
        if execution is not None and execution.spec.home_process == pid:
            return set(execution.waiting_local)
        agent = self.agents.get(pid.transaction)
        if agent is not None and agent.pid == pid and agent.inbound is not None:
            return set(agent.inbound.remaining)
        return set()

    def intra_successors(self, pid: ProcessId) -> set[ProcessId]:
        """Processes ``pid`` waits for along intra-controller edges."""
        result: set[ProcessId] = set()
        for resource in self._waiting_resources(pid):
            lock = self.locks.get(resource)
            if lock is not None:
                result |= lock.waits_for(pid)
        return result

    def _held_resources(self, pid: ProcessId) -> set[ResourceId]:
        execution = self.executions.get(pid.transaction)
        if execution is not None and execution.spec.home_process == pid:
            return set(execution.held_local)
        agent = self.agents.get(pid.transaction)
        if agent is not None and agent.pid == pid:
            return set(agent.held)
        return set()

    def intra_predecessors(self, pid: ProcessId) -> set[ProcessId]:
        """Local processes with a black intra edge into ``pid`` (waiters
        blocked on resources ``pid`` holds)."""
        result: set[ProcessId] = set()
        for resource in self._held_resources(pid):
            lock = self.locks.get(resource)
            if lock is None:
                continue
            for waiter, holder in lock.all_wait_edges():
                if holder == pid:
                    result.add(waiter)
        return result

    def inter_predecessor(self, pid: ProcessId) -> ProcessId | None:
        """The origin of ``pid``'s unanswered inbound remote acquisition
        (the incoming black inter edge), if any."""
        agent = self.agents.get(pid.transaction)
        if agent is not None and agent.pid == pid and agent.inbound is not None:
            return agent.inbound.origin
        return None

    def intra_closure(
        self, start: Iterable[ProcessId], stop: ProcessId | None = None
    ) -> set[ProcessId]:
        """``start`` plus everything reachable from it along intra edges.

        ``stop`` (if given) is included when reached but never expanded --
        it models the computation's initiator process, which per step A1
        declares rather than propagating when a probe reaches it.
        """
        reached: set[ProcessId] = set(start)
        stack = [p for p in reached if p != stop]
        while stack:
            current = stack.pop()
            for successor in self.intra_successors(current):
                if successor not in reached:
                    reached.add(successor)
                    if successor != stop:
                        stack.append(successor)
        return reached

    def outgoing_inter_edges(self, pid: ProcessId) -> list[EdgeRef]:
        """Inter-controller edges leaving ``pid`` (home processes only)."""
        execution = self.executions.get(pid.transaction)
        if execution is None or execution.spec.home_process != pid or execution.finished:
            return []
        return [
            EdgeRef(origin=pid, target=wait.target, serial=wait.serial)
            for _, wait in sorted(execution.waiting_remote.items())
        ]

    def inter_edge_black(self, edge: EdgeRef) -> bool:
        """P3: is ``edge`` an incoming black inter edge at this controller?"""
        agent = self.agents.get(edge.target.transaction)
        return (
            agent is not None
            and agent.pid == edge.target
            and agent.inbound is not None
            and agent.inbound.origin == edge.origin
            and agent.inbound.serial == edge.serial
        )

    def is_process_blocked(self, pid: ProcessId) -> bool:
        """Does the local process ``pid`` currently have outgoing edges?"""
        execution = self.executions.get(pid.transaction)
        if execution is not None and execution.spec.home_process == pid:
            return not execution.finished and execution.blocked
        agent = self.agents.get(pid.transaction)
        return (
            agent is not None
            and agent.pid == pid
            and agent.inbound is not None
            and bool(agent.inbound.remaining)
        )

    def blocked_processes(self) -> list[ProcessId]:
        """All local processes with outgoing edges, in deterministic order."""
        result: list[ProcessId] = []
        for execution in self.executions.values():
            if not execution.finished and execution.blocked:
                result.append(execution.spec.home_process)
        for agent in self.agents.values():
            if agent.inbound is not None and agent.inbound.remaining:
                result.append(agent.pid)
        return sorted(result)

    def find_local_cycle_member(self) -> ProcessId | None:
        """A process on a purely intra-controller cycle, if any (6.7)."""
        for process in self.blocked_processes():
            if process in self.intra_closure(self.intra_successors(process)):
                return process
        return None

    def processes_with_incoming_black_inter_edges(self) -> list[ProcessId]:
        """The Q candidate processes of section 6.7."""
        return sorted(
            agent.pid for agent in self.agents.values() if agent.inbound is not None
        )

    # ------------------------------------------------------------------
    # Detection entry points
    # ------------------------------------------------------------------

    def initiate_for(self, process: ProcessId) -> ProbeTag:
        """Start a probe computation about ``process`` (step A0)."""
        return self.detector.initiate(process)

    def send_probe(self, site: SiteId, probe: DdbProbe) -> None:
        self.ctx.counter("ddb.probes.sent").increment()
        self.ctx.trace(
            categories.DDB_PROBE_SENT, site=self.site, destination=site, tag=probe.tag,
            edge=probe.edge,
        )
        self.send(site, probe)

    def declare_deadlock(self, process: ProcessId, tag: ProbeTag) -> None:
        self.ctx.counter("ddb.deadlocks.declared").increment()
        self.ctx.trace(
            categories.DDB_DEADLOCK_DECLARED, site=self.site, process=process, tag=tag
        )
        if getattr(self.system, "wfgd_on_declare", False):
            self.wfgd.seed(process)
        self.system.handle_declaration(self, process, tag)

    def __repr__(self) -> str:
        return (
            f"Controller(S{self.site}, executions={len(self.executions)}, "
            f"agents={len(self.agents)})"
        )
