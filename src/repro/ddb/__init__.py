"""The distributed database (Menasce-Muntz) model of section 6.

A DDB is implemented by N computers, each running a controller ``C_j`` that
schedules processes, manages resources, and communicates with other
controllers.  M transactions run on the DDB, each implemented by a
collection of processes -- at most one per computer -- identified by
``(T_i, S_j)``.  This package provides:

* a read/write lock manager with FIFO-free "grant any compatible" queueing
  (:mod:`repro.ddb.locks`),
* the process-level coloured wait-for graph with intra-controller (always
  black) and inter-controller (grey/black/white) edges, axioms G1-G6
  (:mod:`repro.ddb.graph`),
* transactions as operation programs executed by their home process
  (:mod:`repro.ddb.transaction`),
* controllers, including remote-request forwarding and the full message
  protocol (:mod:`repro.ddb.controller`),
* the controller-level probe computation of section 6.6 with the section
  6.7 Q-initiation optimisation (:mod:`repro.ddb.detector`,
  :mod:`repro.ddb.initiation`),
* victim-based deadlock resolution so long-running workloads make progress
  (:mod:`repro.ddb.resolution`; the paper defers resolution to its
  references, we implement abort/restart as the natural extension),
* :class:`~repro.ddb.system.DdbSystem`, the assembled system with the
  verification oracle.
"""

from repro.ddb.graph import DdbWaitForGraph
from repro.ddb.initiation import (
    DdbDelayedInitiation,
    DdbImmediateInitiation,
    DdbInitiationPolicy,
    DdbManualInitiation,
    DdbPeriodicInitiation,
)
from repro.ddb.locks import LockMode, ResourceLock
from repro.ddb.prevention import PreventionPolicy, WaitDie, WoundWait
from repro.ddb.resolution import (
    AbortAboutTransaction,
    AbortLowestTransactionInCycle,
    NoResolution,
    VictimPolicy,
)
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Acquire, Think, TransactionSpec, TransactionStatus

__all__ = [
    "AbortAboutTransaction",
    "AbortLowestTransactionInCycle",
    "Acquire",
    "DdbDelayedInitiation",
    "DdbImmediateInitiation",
    "DdbInitiationPolicy",
    "DdbManualInitiation",
    "DdbPeriodicInitiation",
    "DdbSystem",
    "DdbWaitForGraph",
    "LockMode",
    "NoResolution",
    "PreventionPolicy",
    "ResourceLock",
    "Think",
    "TransactionSpec",
    "TransactionStatus",
    "VictimPolicy",
    "WaitDie",
    "WoundWait",
]
