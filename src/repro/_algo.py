"""Shared graph algorithms used by the verification layers.

Kept dependency-free and generic over hashable node types so both the
basic-model (``VertexId``) and DDB (``ProcessId``) verification code use
the same, well-tested implementation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import TypeVar

Node = TypeVar("Node", bound=Hashable)


def cyclic_sccs(adjacency: Mapping[Node, Iterable[Node]]) -> list[set[Node]]:
    """Strongly connected components that contain a cycle.

    Uses an iterative Tarjan (no recursion limit on long chains).  Since
    wait-for graphs have no self-loops, a component contains a cycle iff
    it has more than one node; singleton components are dropped.
    """
    index_counter = [0]
    stack: list[Node] = []
    on_stack: set[Node] = set()
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    components: list[set[Node]] = []

    def strongconnect(root: Node) -> None:
        work: list[tuple[Node, Iterable[Node]]] = [(root, iter(adjacency.get(root, ())))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(component)

    for node in list(adjacency):
        if node not in index:
            strongconnect(node)
    return components
