"""Model-independent verification bookkeeping shared by every variant.

The paper's two theorems are checked the same way in every model:

* **Soundness (QRP2 / Theorem 2)** is an *instant-of-declaration* claim:
  when step A1 fires, the declarer must satisfy the model's oracle
  criterion at that exact virtual instant.  :class:`DeclarationLog`
  records each declaration with its verdict and either raises immediately
  (strict mode) or accumulates the violation (record mode, used by the
  churn sweeps that tolerate and count phantoms).
* **Completeness (QRP1 / Theorem 1)** is a *quiescence-time* claim over
  the dark subgraph: every strongly connected component of the dark
  edges that contains a cycle must contain at least one declarer.
  :func:`dark_components` and :func:`completeness_report` implement that
  check once, generically over the node type (``VertexId`` in the basic
  model, ``ProcessId`` in the DDB model).

This module is deliberately free of protocol imports -- it sees only edge
pairs and declarer sets, never a wait-for graph or a vertex -- so the
per-model ``system.py`` wrappers can import it without any chance of an
import cycle through their package ``__init__``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro._algo import cyclic_sccs
from repro._ids import ProbeTag

Node = TypeVar("Node", bound=Hashable)
DeclarationT = TypeVar("DeclarationT")


def dark_components(edges: Iterable[tuple[Node, Node]]) -> list[set[Node]]:
    """Cyclic strongly connected components of pre-filtered dark edges.

    ``edges`` is the dark (grey-or-black) subgraph as ``(source, target)``
    pairs; the caller applies its own colour filter, which keeps this
    helper independent of any particular graph representation.  Since
    wait-for graphs have no self-loops, a component contains a cycle iff
    it has more than one node.
    """
    adjacency: dict[Node, list[Node]] = {}
    for source, target in edges:
        adjacency.setdefault(source, []).append(target)
    return cyclic_sccs(adjacency)


@dataclass
class CompletenessReport(Generic[Node]):
    """Result of the quiescence-time completeness check."""

    deadlocked_vertices: set[Node]
    declared_vertices: set[Node]
    undetected_components: list[set[Node]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.undetected_components


def completeness_report(
    dark_edges: Iterable[tuple[Node, Node]],
    declared: set[Node],
    deadlocked: set[Node],
) -> CompletenessReport[Node]:
    """Check Theorem 1 + the section 4.2 initiation rule at quiescence.

    Every cyclic SCC of the dark subgraph must contain at least one node
    in ``declared``.  ``deadlocked`` (the oracle's ground-truth set) is
    carried on the report for callers that want detection ratios.
    """
    report: CompletenessReport[Node] = CompletenessReport(
        deadlocked_vertices=deadlocked, declared_vertices=declared
    )
    for component in dark_components(dark_edges):
        if not component & declared:
            report.undetected_components.append(component)
    return report


class DeclarationLog(Generic[DeclarationT]):
    """Declarations plus their instant-of-declaration soundness verdicts.

    The per-model system wrapper constructs one model-specific declaration
    record per A1 firing and hands it here together with the oracle's
    verdict; the log owns the strict/record policy so every variant fails
    (or counts) phantoms identically.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        #: every declaration, sound or not, in virtual-time order.
        self.declarations: list[DeclarationT] = []
        #: the subset that failed the oracle criterion when made.
        self.violations: list[DeclarationT] = []

    def record(
        self,
        declaration: DeclarationT,
        sound: bool,
        complaint: str,
    ) -> None:
        """Record one declaration; raise ``complaint`` in strict mode if
        the oracle verdict was negative."""
        self.declarations.append(declaration)
        if not sound:
            self.violations.append(declaration)
            if self.strict:
                raise AssertionError(complaint)

    def assert_sound(self, prefix: str) -> None:
        """Raise unless every recorded declaration was sound.

        ``prefix`` is the model's message prefix (e.g. ``"QRP2 violated
        by declarations: "``); the violation list is appended verbatim so
        existing failure messages are preserved across models.
        """
        if self.violations:
            raise AssertionError(f"{prefix}{self.violations}")

    def __len__(self) -> int:
        return len(self.declarations)

    def __repr__(self) -> str:
        return (
            f"DeclarationLog(declared={len(self.declarations)}, "
            f"violations={len(self.violations)}, strict={self.strict})"
        )


class ProbeAccounting:
    """Probes sent per computation tag ``(i, n)`` (experiment E3).

    Section 4 bounds the probes of one computation by the number of
    wait-for edges; the sweeps report the per-computation maximum, so the
    counter is keyed by the full tag rather than the initiator.
    """

    def __init__(self) -> None:
        self.per_computation: dict[ProbeTag, int] = {}

    def count(self, tag: ProbeTag) -> None:
        self.per_computation[tag] = self.per_computation.get(tag, 0) + 1

    def max_per_computation(self) -> int:
        return max(self.per_computation.values(), default=0)

    def __repr__(self) -> str:
        return f"ProbeAccounting(computations={len(self.per_computation)})"
