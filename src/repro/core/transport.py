"""The transport seam: what protocol code may know about its runtime.

The paper's only communication assumptions (section 2.4 / axiom P4) are
that messages arrive reliably, after an arbitrary finite delay, in the
order sent per channel -- nothing about *how* they move.  This module is
the executable form of that observation: a pair of structural protocols
that protocol code (vertices, controllers, initiation policies) programs
against instead of touching :class:`~repro.sim.simulator.Simulator` or
:class:`~repro.sim.network.Network` directly.

* :class:`NodeContext` is the per-node capability set handed to a
  :class:`~repro.sim.process.Process` at registration: send a message,
  read the clock, set a timer, record a trace event, bump a counter.
  Everything a node of the paper's model is allowed to do -- and nothing
  more (no peeking at other nodes, no global state; axiom P3 by
  construction).
* :class:`Transport` is the runtime contract a backend implements: node
  registration, clock, scheduling, a run loop, and the observation
  registries.  Every implementation must guarantee **P4**: reliable
  delivery (no loss, no duplication) and per-channel FIFO ordering, and
  the **atomicity note** of section 3: a message handler, once started,
  runs to completion before any other handler or timer fires on any node.

Two backends exist: :class:`~repro.sim.transport.SimTransport` (the
deterministic discrete-event simulator) and
:class:`~repro.live.transport.AsyncioTransport` (wall-clock asyncio).
Both are verified against the same contract suite (``tests/transport``).

Layering note (lint rule RPX004): this module is interface-only -- it
defines structural :class:`typing.Protocol` types and imports nothing
above the protocol tier -- so it is the one ``core`` module that protocol
packages may import.  The layering rule special-cases it as a seam.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import Tracer


class TimerHandle(Protocol):
    """Handle for a pending timer; cancellation is idempotent."""

    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired or was cancelled."""
        ...


class MessageProcess(Protocol):
    """What a transport needs from a registrable node."""

    pid: Hashable

    def attach_context(self, ctx: "NodeContext") -> None:
        """Receive the node's capability set at registration time."""
        ...

    def on_message(self, sender: Hashable, message: Any) -> None:
        """Handle one delivered message (runs to completion; atomicity)."""
        ...


class NodeContext(Protocol):
    """Per-node runtime capabilities (the paper's process axioms, typed).

    A node may send messages (P4 delivery is the transport's obligation),
    read its local clock, set local timers, and emit observations.  The
    context is the *only* runtime object protocol code touches, which is
    what makes nodes portable across the simulator and the live runtime.
    """

    @property
    def node_id(self) -> Hashable:
        """The id this node was registered under."""
        ...

    def send(self, destination: Hashable, message: Any) -> None:
        """Send ``message`` to ``destination`` (reliable, per-channel FIFO)."""
        ...

    def now(self) -> float:
        """Current time in virtual time units."""
        ...

    def set_timer(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> TimerHandle:
        """Run ``callback`` after ``delay`` time units; cancellable."""
        ...

    def trace(self, category: str, **details: object) -> None:
        """Record a trace event stamped with the current time."""
        ...

    def counter(self, name: str) -> "Counter":
        """The shared metrics counter registered under ``name``."""
        ...

    def gauge(self, name: str) -> "Gauge":
        """The shared metrics gauge registered under ``name``."""
        ...

    def histogram(self, name: str) -> "Histogram":
        """The shared metrics histogram registered under ``name``."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Runtime contract guaranteeing axiom P4 plus handler atomicity.

    Implementations must deliver every sent message exactly once, keep
    per-channel (sender, destination) FIFO ordering, run each handler to
    completion before starting another, and drive timers in local-clock
    order.  ``tracer``/``metrics``/``rng`` are the shared observation
    registries; harness code reads them, protocol code reaches them only
    through its :class:`NodeContext`.
    """

    #: backend name, for reports ("sim", "asyncio", ...).
    name: str
    tracer: "Tracer"
    metrics: "MetricsRegistry"
    rng: "RngRegistry"

    @property
    def now(self) -> float:
        """Current time in virtual time units."""
        ...

    def register(self, process: MessageProcess) -> NodeContext:
        """Add a node; pids are unique.  Returns (and attaches) its context."""
        ...

    def process(self, pid: Hashable) -> MessageProcess:
        """Look up a registered node by id."""
        ...

    def schedule(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> TimerHandle:
        """Driver-level timer, ``delay`` units from now."""
        ...

    def schedule_at(
        self, time: float, action: Callable[[], None], name: str = ""
    ) -> TimerHandle:
        """Driver-level timer at absolute ``time`` (>= now)."""
        ...

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until quiescence, the ``until`` deadline, or an event budget."""
        ...

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        """Run until no messages are in flight and no timers pend."""
        ...

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> bool:
        """Run until ``predicate()`` holds; False if quiescent/budget first."""
        ...

    def close(self) -> None:
        """Release backend resources; the transport is unusable afterwards."""
        ...


#: Signature of a transport factory: :func:`repro.core.assembly.build_runtime`
#: calls it with the shared runtime knobs.  Transport classes themselves
#: satisfy it (``AsyncioTransport`` is its own factory).
TransportFactory = Callable[..., Transport]
