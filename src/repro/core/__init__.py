"""The protocol-engine core: one harness layer, N pluggable detectors.

The three ``*System`` wrappers (:class:`~repro.basic.system.BasicSystem`,
:class:`~repro.ddb.system.DdbSystem`, :class:`~repro.ormodel.system.OrSystem`)
and the baseline overlays all do the same four jobs: assemble a
deterministic runtime (simulator + FIFO network), record declarations with
an instant-of-declaration oracle verdict (theorem QRP2 checked **at the
moment step A1 fires**, in strict or record mode), report completeness at
quiescence over the cyclic SCCs of the dark subgraph (theorem QRP1), and
count probes per computation tag (section 4).  This package owns those
jobs once:

* :mod:`repro.core.engine` -- declaration log, dark-component
  completeness, probe accounting.  Pure bookkeeping: no protocol imports.
* :mod:`repro.core.assembly` -- the shared simulator/network runtime and
  fleet-size validation.
* :mod:`repro.core.registry` -- the :class:`DetectorVariant` registry:
  name -> factory + capabilities (oracle criterion, message taxonomy,
  supported sweep scenarios).  ``sweep``, ``obs``, ``cli`` and the
  experiment modules resolve detectors here instead of importing them.
* :mod:`repro.core.conformance` -- the cross-variant conformance
  contract: every registered variant must pass a small deadlock and a
  deadlock-free scenario with zero soundness violations.
* :mod:`repro.core.variants` -- registration modules for the built-in
  variants (``basic``, ``ormodel``, ``ddb`` and the four baseline
  overlays).  Loaded lazily on first registry lookup so importing a
  protocol package never recurses back through here.

Layering (lint rule RPX004): ``core`` sits between the protocol tier and
the harness tier -- protocol < core < harness < driver.  Core code may
import protocol packages, never the harness or driver; the per-model
``system.py`` modules belong to this tier because they hold the global
oracle state that axiom P3 forbids protocol code from seeing.
"""

from repro.core.assembly import Runtime, build_runtime, require_fleet
from repro.core.conformance import CONFORMANCE_SCENARIOS, ConformanceOutcome
from repro.core.engine import (
    CompletenessReport,
    DeclarationLog,
    ProbeAccounting,
    completeness_report,
    dark_components,
)
from repro.core.registry import (
    DemoSpec,
    DetectorVariant,
    MessageTaxonomy,
    VariantCapabilities,
    all_variants,
    get_variant,
    overlay_variants,
    register,
    variant_names,
    variants_for_scenario,
)

__all__ = [
    "CONFORMANCE_SCENARIOS",
    "CompletenessReport",
    "ConformanceOutcome",
    "DeclarationLog",
    "DemoSpec",
    "DetectorVariant",
    "MessageTaxonomy",
    "ProbeAccounting",
    "Runtime",
    "VariantCapabilities",
    "all_variants",
    "build_runtime",
    "completeness_report",
    "dark_components",
    "get_variant",
    "overlay_variants",
    "register",
    "require_fleet",
    "variant_names",
    "variants_for_scenario",
]
