"""Registration of the four baseline overlay variants (experiment E8).

Baselines are *overlays*: each binds to a host
:class:`~repro.basic.system.BasicSystem` (``build(host, **settings)``)
rather than owning a system of its own, so their registry records carry
``kind="overlay"``.  Registration order here is the sweep contract --
e8 grid cells index ``overlay_variants()`` by ``detector - 1``:
centralized (1), pathpush (2), timeout (3), snapshot (4).

Conformance runs each overlay on a small manually-initiated host (no
competing probe traffic), scores soundness from the detector's
oracle-verdicted report, and checks completeness the same way every
variant does: each cyclic dark SCC of the host oracle must contain a
detected vertex.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines import (
    CentralizedDetector,
    PathPushingDetector,
    SnapshotDetector,
    TimeoutDetector,
)
from repro.baselines.base import BaselineDetector
from repro.basic.graph import EdgeColor
from repro.basic.initiation import ManualInitiation
from repro.basic.system import BasicSystem
from repro.core.conformance import ConformanceOutcome, unknown_scenario
from repro.core.engine import completeness_report
from repro.core.registry import DetectorVariant, VariantCapabilities, register

#: per-overlay settings used by the conformance scenarios; small periods
#: and horizons keep the runs inside the tier-1 budget.
_CONFORMANCE_SETTINGS: dict[str, dict[str, float]] = {
    "centralized": {
        "period": 5.0,
        "horizon": 30.0,
        "min_delay": 0.5,
        "max_delay": 1.5,
    },
    "pathpush": {"period": 5.0, "horizon": 30.0, "min_delay": 0.5, "max_delay": 1.5},
    "timeout": {"window": 10.0},
    "snapshot": {"period": 5.0, "horizon": 30.0},
}

#: overrides applied when conformance runs on a non-simulator backend.
#: Wall-clock scheduling noise (import warm-up, GC, loop wake-up jitter)
#: shows up as extra virtual time on a live runtime, so the timeout
#: detector's window needs the head-room a production deployment would
#: give it; mis-calibrated windows turning into phantoms is exactly the
#: weakness E8 documents for this baseline, not a conformance artifact.
_LIVE_SETTINGS: dict[str, dict[str, float]] = {
    "timeout": {"window": 30.0},
}


def _conformance_for(
    name: str, build: Callable[..., BaselineDetector]
) -> Callable[..., ConformanceOutcome]:
    def run(
        scenario: str, seed: int, transport: object | None = None
    ) -> ConformanceOutcome:
        host = BasicSystem(
            n_vertices=4,
            seed=seed,
            initiation=ManualInitiation(),
            strict=False,
            transport=transport,
        )
        if scenario == "deadlock":
            # The standard 4-cycle: every vertex requests its successor.
            for i in range(4):
                host.schedule_request(0.5 * i, i, [(i + 1) % 4])
        elif scenario == "clean":
            # A draining 4-chain: all waits resolve via replies.
            for i in range(3):
                host.schedule_request(0.5 * i, i, [i + 1])
        else:
            unknown_scenario(name, scenario)
        settings = dict(_CONFORMANCE_SETTINGS[name])
        if transport is not None and getattr(transport, "name", "") != "sim":
            settings.update(_LIVE_SETTINGS.get(name, {}))
        detector = build(host, **settings)
        detector.start()
        host.run_to_quiescence()
        dark_edges = [
            edge
            for edge, color in host.oracle.edges()
            if color is not EdgeColor.WHITE
        ]
        report = completeness_report(
            dark_edges,
            declared=detector.report.detected_vertices(),
            deadlocked=host.oracle.vertices_on_dark_cycles(),
        )
        return ConformanceOutcome(
            variant=name,
            scenario=scenario,
            declarations=len(detector.report.detections),
            soundness_violations=len(detector.report.false_detections),
            complete=report.complete,
            undetected_components=len(report.undetected_components),
            first_declaration_at=(
                detector.report.detections[0].time
                if detector.report.detections
                else None
            ),
        )

    return run


def _overlay(
    name: str,
    title: str,
    oracle_criterion: str,
    build: Callable[..., BaselineDetector],
) -> DetectorVariant:
    return register(
        DetectorVariant(
            name=name,
            title=title,
            capabilities=VariantCapabilities(
                model="basic",
                kind="overlay",
                oracle_criterion=oracle_criterion,
                scenarios=("baseline-random", "baseline-ping-pong"),
                taxonomy=None,
            ),
            build=build,
            conformance=_conformance_for(name, build),
        )
    )


CENTRALIZED_VARIANT = _overlay(
    "centralized",
    "centralized collection (Ho-Ramamoorthy style)",
    "detected vertex is on a dark cycle when declared",
    CentralizedDetector,
)

PATHPUSH_VARIANT = _overlay(
    "pathpush",
    "path pushing (Obermarck-style)",
    "detected vertex is on a dark cycle when declared",
    PathPushingDetector,
)

TIMEOUT_VARIANT = _overlay(
    "timeout",
    "timeout after window W",
    "detected vertex is on a dark cycle when declared",
    TimeoutDetector,
)

SNAPSHOT_VARIANT = _overlay(
    "snapshot",
    "consistent snapshots (Chandy-Lamport '85)",
    "detected vertex is on a dark cycle when declared",
    SnapshotDetector,
)
