"""Registration modules for the built-in detector variants.

Importing this package registers every built-in variant, in a fixed
order that downstream consumers rely on (sweep's e8 grid indexes the
overlay variants by position):

1. ``basic`` -- the paper's probe computation (sections 2-4),
2. ``ormodel`` -- the OR/communication-model detector (section 7),
3. ``ddb`` -- the Menasce-Muntz controller detector (section 6),
4. the four baseline overlays -- ``centralized``, ``pathpush``,
   ``timeout``, ``snapshot`` (experiment E8).

Do not import this package from core infrastructure modules; it is
loaded lazily by :func:`repro.core.registry.ensure_builtin_variants` so
protocol packages can import :mod:`repro.core.engine` without recursion.

Adding a new variant: implement it in its own package, then add one
``register(DetectorVariant(...))`` call -- either in a module imported
here (for built-ins) or anywhere in your own import path (for external
variants).  Nothing in ``sweep``/``obs``/``cli`` needs editing; the
conformance suite picks the variant up automatically.
"""

from repro.core.variants.basic import BASIC_VARIANT
from repro.core.variants.ormodel import OR_VARIANT
from repro.core.variants.ddb import DDB_VARIANT
from repro.core.variants.baselines import (
    CENTRALIZED_VARIANT,
    PATHPUSH_VARIANT,
    SNAPSHOT_VARIANT,
    TIMEOUT_VARIANT,
)

__all__ = [
    "BASIC_VARIANT",
    "CENTRALIZED_VARIANT",
    "DDB_VARIANT",
    "OR_VARIANT",
    "PATHPUSH_VARIANT",
    "SNAPSHOT_VARIANT",
    "TIMEOUT_VARIANT",
]
