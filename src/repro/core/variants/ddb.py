"""Registration of the ``ddb`` variant: the section 6 controller model.

The Menasce-Muntz distributed-database model runs one controller per
site; probes travel controller-to-controller about ``(transaction, site)``
processes.  The system wrapper is :class:`~repro.ddb.system.DdbSystem`.
The conformance scenarios run detection-only (``NoResolution``), so the
quiescence-time completeness check over the dark process graph applies.
"""

from __future__ import annotations

from repro._ids import ResourceId, SiteId, TransactionId
from repro.core.conformance import ConformanceOutcome, conformance_workload
from repro.core.registry import (
    DemoSpec,
    DetectorVariant,
    MessageTaxonomy,
    MonitorSetup,
    VariantCapabilities,
    register,
)
from repro.ddb.system import DdbSystem
from repro.sim import categories
from repro.workloads.spec import get_family


def _setup(
    scenario: str, seed: int, transport: object | None = None
) -> MonitorSetup:
    """Assemble the standard scenario without running it (monitor seam).

    The ``ddb-cross`` / ``ddb-disjoint`` workload families (resolved via
    the RPX004 workload seam) build the two-site system and issue the
    transactions; this module only describes the detector.
    """
    spec = conformance_workload("ddb", scenario).with_seed(seed)
    family = get_family(spec.family)
    assert family.build is not None  # both conformance families carry one
    system: DdbSystem = family.build(spec, transport=transport, strict=False)
    family.schedule(spec, system)

    def summarize() -> ConformanceOutcome:
        complete, undetected = system.completeness_report()
        return ConformanceOutcome(
            variant="ddb",
            scenario=scenario,
            declarations=len(system.declarations),
            soundness_violations=len(system.soundness_violations),
            complete=complete,
            undetected_components=len(undetected),
            first_declaration_at=(
                system.declarations[0].time if system.declarations else None
            ),
        )

    return MonitorSetup(system=system, summarize=summarize, n_nodes=spec.n)


def _conformance(
    scenario: str, seed: int, transport: object | None = None
) -> ConformanceOutcome:
    setup = _setup(scenario, seed, transport)
    setup.system.run_to_quiescence(max_events=100_000)
    return setup.summarize()


def _demo() -> int:
    from repro.ddb.locks import LockMode
    from repro.ddb.resolution import AbortAboutTransaction
    from repro.ddb.transaction import Think, TransactionSpec, acquire

    resources = {ResourceId("r0"): SiteId(0), ResourceId("r1"): SiteId(1)}
    system = DdbSystem(n_sites=2, resources=resources, resolution=AbortAboutTransaction())

    def restart(execution, aborted):
        if aborted:
            system.restart(execution.spec.tid, delay=3.0 + 4.0 * int(execution.spec.tid))

    system.finished_callback = restart
    X = LockMode.EXCLUSIVE
    system.begin(
        TransactionSpec(
            tid=TransactionId(1),
            home=SiteId(0),
            operations=(acquire(("r0", X)), Think(1.0), acquire(("r1", X))),
        ),
        at=0.0,
    )
    system.begin(
        TransactionSpec(
            tid=TransactionId(2),
            home=SiteId(1),
            operations=(acquire(("r1", X)), Think(1.0), acquire(("r0", X))),
        ),
        at=0.1,
    )
    system.run_to_quiescence(max_events=100_000)
    print("DDB model, cross-site deadlock with victim resolution")
    for declaration in system.declarations:
        print(
            f"  t={declaration.time:.3f}  C{declaration.site} declared "
            f"{declaration.process} deadlocked"
        )
    for tid, record in sorted(system.transactions.items()):
        print(f"  T{tid}: commits={record.commits} aborts={record.aborts}")
    system.assert_no_deadlock_remains()
    print("  no deadlock remains; all transactions committed")
    return 0


DDB_VARIANT = register(
    DetectorVariant(
        name="ddb",
        title="Menasce-Muntz controller model (section 6)",
        capabilities=VariantCapabilities(
            model="ddb",
            kind="protocol",
            oracle_criterion=(
                "declared process is on an all-black cycle "
                "(stale-abort declarations excepted)"
            ),
            scenarios=("ddb-ring", "ddb-hot"),
            taxonomy=MessageTaxonomy(
                initiated=categories.DDB_COMPUTATION_INITIATED,
                probe_sent=categories.DDB_PROBE_SENT,
                probe_received=categories.DDB_PROBE_RECEIVED,
                declared=categories.DDB_DEADLOCK_DECLARED,
                endpoint_keys=("site", "destination"),
                edge_keys=("edge",),
                declared_by_key="process",
            ),
        ),
        build=DdbSystem,
        conformance=_conformance,
        demo=DemoSpec(
            command="ddb-demo",
            help="cross-site DDB deadlock demo",
            run=_demo,
        ),
        monitor=_setup,
    )
)
