"""Registration of the ``basic`` variant: the paper's probe computation.

The basic model (sections 2-4) is the reference detector: AND-model
resource waits, one probe computation per initiation, declaration when a
probe ``(i, n)`` returns to vertex ``i``.  The system wrapper is
:class:`~repro.basic.system.BasicSystem`; this module only describes it
to the registry and supplies the standard conformance scenarios and the
``quickstart`` demo.
"""

from __future__ import annotations

from repro.basic.system import BasicSystem
from repro.core.conformance import ConformanceOutcome, conformance_workload
from repro.core.registry import (
    DemoSpec,
    DetectorVariant,
    MessageTaxonomy,
    MonitorSetup,
    VariantCapabilities,
    register,
)
from repro.sim import categories
from repro.workloads.spec import WorkloadSpec, get_family


def _setup(
    scenario: str, seed: int, transport: object | None = None
) -> MonitorSetup:
    """Assemble the standard scenario without running it (monitor seam).

    The request pattern resolves through the workload registry (via the
    RPX004 workload seam), so conformance runs the same ``cycle`` /
    ``chain`` families every other runner schedules.
    """
    spec = conformance_workload("basic", scenario).with_seed(seed)
    system = BasicSystem(
        n_vertices=spec.n, seed=seed, strict=False, transport=transport
    )
    get_family(spec.family).schedule(spec, system)

    def summarize() -> ConformanceOutcome:
        report = system.completeness_report()
        return ConformanceOutcome(
            variant="basic",
            scenario=scenario,
            declarations=len(system.declarations),
            soundness_violations=len(system.soundness_violations),
            complete=report.complete,
            undetected_components=len(report.undetected_components),
            first_declaration_at=(
                system.declarations[0].time if system.declarations else None
            ),
        )

    return MonitorSetup(system=system, summarize=summarize, n_nodes=spec.n)


def _conformance(
    scenario: str, seed: int, transport: object | None = None
) -> ConformanceOutcome:
    setup = _setup(scenario, seed, transport)
    setup.system.run_to_quiescence()
    return setup.summarize()


def _demo() -> int:
    system = BasicSystem(n_vertices=3, wfgd_on_declare=True)
    get_family("cycle").schedule(WorkloadSpec(family="cycle", n=3), system)
    system.run_to_quiescence()
    print("basic model, 3-cycle deadlock")
    for declaration in system.declarations:
        print(
            f"  t={declaration.time:.3f}  vertex {declaration.vertex} declared "
            f"deadlock (tag {declaration.tag}, sound={declaration.on_black_cycle})"
        )
    system.assert_soundness()
    system.assert_completeness()
    print("  soundness + completeness verified against the oracle")
    return 0


BASIC_VARIANT = register(
    DetectorVariant(
        name="basic",
        title="Chandy-Misra probe computation (sections 2-4)",
        capabilities=VariantCapabilities(
            model="basic",
            kind="protocol",
            oracle_criterion="declarer is on an all-black cycle (QRP2)",
            scenarios=(
                "cycle",
                "chain-waves",
                "dense",
                "cycle-with-tails",
                "random",
                "er",
                "ba",
                "bursty",
                "baseline-random",
                "baseline-ping-pong",
            ),
            taxonomy=MessageTaxonomy(
                initiated=categories.BASIC_COMPUTATION_INITIATED,
                probe_sent=categories.BASIC_PROBE_SENT,
                probe_received=categories.BASIC_PROBE_RECEIVED,
                declared=categories.BASIC_DEADLOCK_DECLARED,
                endpoint_keys=("source", "target"),
                edge_keys=("source", "target"),
                declared_by_key="vertex",
            ),
        ),
        build=BasicSystem,
        conformance=_conformance,
        demo=DemoSpec(
            command="quickstart",
            help="3-cycle basic-model demo",
            run=_demo,
        ),
        monitor=_setup,
    )
)
