"""Registration of the ``ormodel`` variant: the section 7 OR extension.

In the OR/communication model a blocked process is deadlocked iff no
active process is reachable along dependency edges, so the completeness
obligation is per-closure rather than per-SCC and the variant reports no
probe taxonomy (its query/reply computations are not section 4 probe
computations).  The system wrapper is
:class:`~repro.ormodel.system.OrSystem`.
"""

from __future__ import annotations

from repro.core.conformance import ConformanceOutcome, conformance_workload
from repro.core.registry import (
    DemoSpec,
    DetectorVariant,
    MonitorSetup,
    VariantCapabilities,
    register,
)
from repro.ormodel.system import OrSystem
from repro.workloads.spec import get_family


def _setup(
    scenario: str, seed: int, transport: object | None = None
) -> MonitorSetup:
    """Assemble the standard scenario without running it (monitor seam).

    The request pattern resolves through the workload registry's
    ``or-knot`` / ``or-clean`` families (via the RPX004 workload seam).
    """
    spec = conformance_workload("ormodel", scenario).with_seed(seed)
    system = OrSystem(
        n_vertices=spec.n, seed=seed, strict=False, transport=transport
    )
    get_family(spec.family).schedule(spec, system)

    def summarize() -> ConformanceOutcome:
        report = system.completeness_report()
        return ConformanceOutcome(
            variant="ormodel",
            scenario=scenario,
            declarations=len(system.declarations),
            soundness_violations=len(system.soundness_violations),
            complete=report.complete,
            undetected_components=len(report.undetected_components),
            first_declaration_at=(
                system.declarations[0].time if system.declarations else None
            ),
        )

    return MonitorSetup(system=system, summarize=summarize, n_nodes=spec.n)


def _conformance(
    scenario: str, seed: int, transport: object | None = None
) -> ConformanceOutcome:
    setup = _setup(scenario, seed, transport)
    setup.system.run_to_quiescence()
    return setup.summarize()


def _demo() -> int:
    system = OrSystem(n_vertices=3)
    system.schedule_request(0.0, 1, [0])
    system.schedule_request(0.3, 2, [0])
    system.schedule_request(0.6, 0, [1, 2])
    system.run_to_quiescence()
    print("OR/communication model, knot: p0 waits any{p1,p2}, both wait any{p0}")
    for declaration in system.declarations:
        print(
            f"  t={declaration.time:.3f}  vertex {declaration.vertex} declared "
            f"OR-deadlock (tag {declaration.tag})"
        )
    system.assert_soundness()
    system.assert_completeness()
    print("  soundness + completeness verified against the OR oracle")
    return 0


OR_VARIANT = register(
    DetectorVariant(
        name="ormodel",
        title="OR/communication-model query computation (section 7)",
        capabilities=VariantCapabilities(
            model="ormodel",
            kind="protocol",
            oracle_criterion=(
                "no active vertex reachable from the declarer's closure, "
                "net of in-flight grants"
            ),
            scenarios=(),
            taxonomy=None,
        ),
        build=OrSystem,
        conformance=_conformance,
        demo=DemoSpec(
            command="or-demo",
            help="OR/communication-model knot demo (section 7 extension)",
            run=_demo,
        ),
        monitor=_setup,
    )
)
