"""Shared system assembly: the pluggable node runtime.

Every variant's system wrapper opens the same way -- validate the fleet
size, build a runtime, register its nodes.  :func:`build_runtime`
centralises the construction and makes the backend pluggable through the
:class:`~repro.core.transport.Transport` seam:

* by default it assembles the deterministic simulator pair wrapped in a
  :class:`~repro.sim.transport.SimTransport`.  The order is load-bearing:
  the network draws its delay streams from the simulator's root RNG, so
  building the simulator first (and exactly once) is what makes a run a
  pure function of its seed;
* given ``transport=``, it accepts either a ready
  :class:`~repro.core.transport.Transport` instance or a factory
  (typically a transport class, e.g.
  ``repro.live.transport.AsyncioTransport``) called with the same
  ``seed``/``delay_model``/``trace``/``fifo`` knobs.  Factories keep this
  module free of any driver-tier import: callers hand the backend in,
  core never reaches up for one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transport import Transport, TransportFactory
from repro.errors import ConfigurationError
from repro.sim.network import DelayModel, Network
from repro.sim.simulator import Simulator
from repro.sim.transport import SimTransport


@dataclass(frozen=True)
class Runtime:
    """The substrate a system wrapper builds on.

    ``simulator``/``network`` are populated only for the simulator
    backend (harness layers -- profiling, ablation hooks -- reach them
    there); transport-neutral code uses ``transport`` alone.
    """

    transport: Transport
    simulator: Simulator | None = None
    network: Network | None = None


def build_runtime(
    *,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    trace: bool = True,
    fifo: bool = True,
    transport: Transport | TransportFactory | None = None,
) -> Runtime:
    """Build the runtime every variant shares.

    ``trace=False`` is the big-sweep fast path (the tracer's zero-cost
    category skip); ``fifo=False`` exists only for the ablation tests
    that demonstrate the algorithm's dependence on per-channel FIFO.
    ``transport`` selects the backend: ``None`` for the deterministic
    simulator, an instance to adopt as-is, or a factory called with the
    knobs above.
    """
    if transport is None:
        simulator = Simulator(seed=seed, trace=trace)
        network = Network(simulator, delay_model=delay_model, fifo=fifo)
        return Runtime(
            transport=SimTransport(simulator, network),
            simulator=simulator,
            network=network,
        )
    if isinstance(transport, SimTransport):
        return Runtime(
            transport=transport,
            simulator=transport.simulator,
            network=transport.network,
        )
    if not isinstance(transport, type) and isinstance(transport, Transport):
        return Runtime(transport=transport)
    built = transport(seed=seed, delay_model=delay_model, trace=trace, fifo=fifo)
    if isinstance(built, SimTransport):
        return Runtime(
            transport=built, simulator=built.simulator, network=built.network
        )
    return Runtime(transport=built)


def require_fleet(count: int, noun: str) -> None:
    """Reject empty fleets with the per-model message (vertex / site)."""
    if count < 1:
        raise ConfigurationError(f"need at least one {noun}, got {count}")
