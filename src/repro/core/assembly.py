"""Shared system assembly: the deterministic simulator/network runtime.

Every variant's system wrapper used to open with the same four lines --
validate the fleet size, build a :class:`~repro.sim.simulator.Simulator`,
attach a :class:`~repro.sim.network.Network`, keep both.  The order is
load-bearing: the network draws its delay stream from the simulator's
root RNG at construction, so building the simulator first (and exactly
once) is what makes a run a pure function of its seed.  Centralising the
sequence here keeps that invariant in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.network import DelayModel, Network
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class Runtime:
    """The deterministic substrate a system wrapper builds on."""

    simulator: Simulator
    network: Network


def build_runtime(
    *,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    trace: bool = True,
    fifo: bool = True,
) -> Runtime:
    """Build the simulator-then-network pair every variant shares.

    ``trace=False`` is the big-sweep fast path (the tracer's zero-cost
    category skip); ``fifo=False`` exists only for the ablation tests
    that demonstrate the algorithm's dependence on per-channel FIFO.
    """
    simulator = Simulator(seed=seed, trace=trace)
    network = Network(simulator, delay_model=delay_model, fifo=fifo)
    return Runtime(simulator=simulator, network=network)


def require_fleet(count: int, noun: str) -> None:
    """Reject empty fleets with the per-model message (vertex / site)."""
    if count < 1:
        raise ConfigurationError(f"need at least one {noun}, got {count}")
