"""The cross-variant conformance contract.

Every registered detector variant must be able to run two standard
scenarios and summarise the outcome in one model-independent record:

* ``"deadlock"`` -- a small genuine deadlock.  The variant must declare
  (non-empty declarations), stay sound (zero violations), and -- where it
  reports completeness -- cover every dark component.
* ``"clean"`` -- a workload whose waits all resolve.  The variant must
  stay silent and sound.

The scenarios are intentionally tiny (a handful of processes, default
delays) so the conformance suite stays in the tier-1 test budget while
still exercising assembly, declaration recording, oracle checks, and the
quiescence-time report of each variant end to end.

The *workloads* behind the scenarios resolve through the workload
registry: :data:`CONFORMANCE_WORKLOADS` maps ``(model, scenario)`` to
the :class:`~repro.workloads.spec.WorkloadSpec` each variant schedules,
so the conformance suite, the monitor seam, and every other runner all
drive the identical request patterns.  (``repro.workloads.spec`` is the
RPX004 workload seam, importable from this core-tier module.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NoReturn

from repro.errors import ConfigurationError
from repro.workloads.spec import WorkloadSpec

#: Scenario names every variant's ``conformance`` callable must accept.
CONFORMANCE_SCENARIOS: tuple[str, ...] = ("deadlock", "clean")

#: The workload each model schedules for each conformance scenario.
CONFORMANCE_WORKLOADS: dict[tuple[str, str], WorkloadSpec] = {
    ("basic", "deadlock"): WorkloadSpec(family="cycle", n=4),
    ("basic", "clean"): WorkloadSpec(family="chain", n=4),
    ("ddb", "deadlock"): WorkloadSpec(family="ddb-cross", n=2),
    ("ddb", "clean"): WorkloadSpec(family="ddb-disjoint", n=2),
    ("ormodel", "deadlock"): WorkloadSpec(family="or-knot", n=3),
    ("ormodel", "clean"): WorkloadSpec(family="or-clean", n=3),
}


def conformance_workload(model: str, scenario: str) -> WorkloadSpec:
    """The registered workload spec for one (model, scenario) pair.

    Raises the standard unknown-scenario error for anything outside
    :data:`CONFORMANCE_SCENARIOS` (or a model with no mapping).
    """
    try:
        return CONFORMANCE_WORKLOADS[(model, scenario)]
    except KeyError:
        unknown_scenario(model, scenario)


@dataclass(frozen=True)
class ConformanceOutcome:
    """Model-independent summary of one conformance run."""

    variant: str
    scenario: str
    #: declarations (protocol variants) or detections (overlay variants).
    declarations: int
    #: declarations that failed the variant's oracle criterion when made.
    soundness_violations: int
    #: quiescence-time completeness verdict; ``None`` when the variant's
    #: capabilities say it has no completeness report.
    complete: bool | None
    #: dark components (or deadlocked closures) left without a declarer.
    undetected_components: int = 0
    #: time (virtual units) of the first declaration, ``None`` when the
    #: run stayed silent.  On the live backend this is elapsed wall time
    #: rescaled to units -- the detection latency ``repro live`` reports.
    first_declaration_at: float | None = None


def unknown_scenario(variant: str, scenario: str) -> NoReturn:
    """Shared error for conformance callables handed a bad scenario."""
    raise ConfigurationError(
        f"variant {variant!r} has no conformance scenario {scenario!r}; "
        f"choose from {', '.join(CONFORMANCE_SCENARIOS)}"
    )
