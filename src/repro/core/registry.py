"""The detector-variant registry: name -> factory + capabilities.

A :class:`DetectorVariant` is the unit the harness layers programme
against.  ``sweep`` resolves system factories and the overlay detector
order here, ``obs`` derives its span schemas from the registered message
taxonomies, ``cli`` generates its demo subcommands from the registered
:class:`DemoSpec` records, and the conformance suite iterates
:func:`all_variants` -- so adding a detector variant is one package plus
one :func:`register` call, with no edits to any of those consumers.

Built-in variants live in :mod:`repro.core.variants` and are loaded
lazily on the first lookup.  The laziness matters: registration modules
import protocol packages (``repro.basic`` & co), and those packages'
``system.py`` modules import :mod:`repro.core.engine`; eager loading from
this module's import would recurse through a partially initialised
package.  Lookup-time loading breaks the cycle without weakening either
import direction.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any, Final

from repro.core.conformance import ConformanceOutcome
from repro.errors import ConfigurationError

#: Static-introspection hook: capability ``model`` name -> the protocol
#: package (under ``repro/``) whose handlers speak that model's protocol.
#: The lint layer (:mod:`repro.lint.project`) uses this to check handler
#: code against registered taxonomies *without* importing any protocol
#: module: importing this module is safe (built-in registrations load
#: lazily, on first variant lookup), so the mapping is available to
#: build-time tooling that must never execute protocol code.
MODEL_PACKAGES: Final[Mapping[str, str]] = {
    "basic": "basic",
    "ormodel": "ormodel",
    "ddb": "ddb",
}

#: Static-introspection hook: where the built-in ``register()`` calls
#: live, as package-relative path parts.  The lint layer resolves each
#: variant's :class:`MessageTaxonomy` by parsing these modules' ASTs.
VARIANT_REGISTRATION_PACKAGE: Final[tuple[str, ...]] = ("repro", "core", "variants")


@dataclass(frozen=True)
class MessageTaxonomy:
    """Trace-category names and detail keys of one model's probe lifecycle.

    This is what :mod:`repro.obs.spans` folds a flat trace with: the four
    lifecycle categories (step A0 initiation, A2 sends/receives, the A1
    declaration) plus the per-model detail-key names (the basic model
    records ``source``/``target`` vertices, the DDB model records
    ``site``/``destination`` and a canonical ``edge`` label).
    """

    initiated: str
    probe_sent: str
    probe_received: str
    declared: str
    #: detail keys of a sent probe's network endpoints (sender, receiver).
    endpoint_keys: tuple[str, str]
    #: detail key(s) naming the wait-for edge a probe travelled; a single
    #: key reads that detail verbatim, several keys form a tuple label.
    edge_keys: tuple[str, ...]
    #: detail key naming the declarer on the declaration event.
    declared_by_key: str

    def lifecycle_categories(self) -> dict[str, str]:
        """Field-name -> category for the four probe-lifecycle events.

        Static-introspection hook: the lint layer compares this mapping
        (resolved from the registration module's AST) against the trace
        calls actually present in the model's handler code, and the
        registry round-trip test compares the AST-resolved view against
        this runtime one.
        """
        return {
            "initiated": self.initiated,
            "probe_sent": self.probe_sent,
            "probe_received": self.probe_received,
            "declared": self.declared,
        }


@dataclass(frozen=True)
class VariantCapabilities:
    """What a detector variant is and which harness features it supports."""

    #: oracle/trace family the variant runs against (basic / ormodel / ddb).
    model: str
    #: ``"protocol"`` for the paper's detectors (the system IS the
    #: detector), ``"overlay"`` for baselines bound onto a host system.
    kind: str
    #: one-line statement of the ground-truth criterion declarations are
    #: checked against at the instant they are made.
    oracle_criterion: str
    #: sweep scenario names (:mod:`repro.sweep`) this variant can drive.
    scenarios: tuple[str, ...]
    #: probe-lifecycle taxonomy for span reconstruction; ``None`` for
    #: variants whose messages are not probe computations.
    taxonomy: MessageTaxonomy | None = None
    #: whether the variant produces a quiescence-time completeness report.
    has_completeness_report: bool = True


@dataclass(frozen=True)
class DemoSpec:
    """A CLI demo subcommand contributed by a variant."""

    command: str
    help: str
    run: Callable[[], int]


@dataclass(frozen=True)
class MonitorSetup:
    """A monitorable run: system assembled, workload scheduled, not run.

    The variant's ``monitor`` callable returns one of these instead of
    driving the run itself, so an external loop (``repro monitor``) can
    interleave transport slices with console rendering and metric
    snapshots.  ``summarize`` is the quiescence-time closure producing
    the same :class:`~repro.core.conformance.ConformanceOutcome` the
    conformance path reports.
    """

    system: Any
    summarize: Callable[[], ConformanceOutcome]
    #: node count, for the console's per-node queue-depth table.
    n_nodes: int


@dataclass(frozen=True)
class DetectorVariant:
    """One registered detector: factory, capabilities, conformance, demo."""

    name: str
    title: str
    capabilities: VariantCapabilities
    #: system factory for protocol variants (``build(n_vertices=..., ...)``),
    #: detector factory for overlays (``build(host_system, **settings)``).
    build: Callable[..., Any]
    #: ``conformance(scenario, seed, transport=None)`` runs one standard
    #: scenario; ``transport`` selects the runtime backend (an instance
    #: or factory forwarded to the system constructor, ``None`` for the
    #: deterministic simulator).
    conformance: Callable[..., ConformanceOutcome]
    demo: DemoSpec | None = None
    #: ``monitor(scenario, seed, transport=None)`` assembles the same
    #: scenario *without* running it, for an external run loop
    #: (``repro monitor``); ``None`` if the variant cannot be monitored.
    monitor: Callable[..., "MonitorSetup"] | None = None


_REGISTRY: dict[str, DetectorVariant] = {}
_builtins_loaded = False


def register(variant: DetectorVariant) -> DetectorVariant:
    """Add a variant to the registry; names are unique, order preserved.

    Returns the variant so registration modules can expose the record as
    a module constant.  Registration order is observable (sweep's e8 grid
    indexes overlays by position), so built-ins register deterministically
    from :mod:`repro.core.variants`.
    """
    if variant.name in _REGISTRY:
        raise ConfigurationError(
            f"detector variant {variant.name!r} is already registered"
        )
    _REGISTRY[variant.name] = variant
    return variant


def ensure_builtin_variants() -> None:
    """Load the built-in registration modules exactly once."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    # Importing the package runs the register() calls in its __init__.
    import repro.core.variants  # noqa: F401


def get_variant(name: str) -> DetectorVariant:
    """Look up one variant by name."""
    ensure_builtin_variants()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector variant {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        ) from None


def all_variants() -> tuple[DetectorVariant, ...]:
    """Every registered variant, in registration order."""
    ensure_builtin_variants()
    return tuple(_REGISTRY.values())


def variant_names() -> tuple[str, ...]:
    ensure_builtin_variants()
    return tuple(_REGISTRY)


def overlay_variants() -> tuple[DetectorVariant, ...]:
    """The overlay (baseline) variants, in registration order.

    Position is part of the sweep contract: e8 grid cells carry a
    ``detector`` index where 0 is the paper's probe computation and
    ``i >= 1`` is ``overlay_variants()[i - 1]``.
    """
    return tuple(
        variant
        for variant in all_variants()
        if variant.capabilities.kind == "overlay"
    )


def variants_for_scenario(scenario: str) -> tuple[DetectorVariant, ...]:
    """Variants claiming support for one sweep scenario name."""
    return tuple(
        variant
        for variant in all_variants()
        if scenario in variant.capabilities.scenarios
    )
