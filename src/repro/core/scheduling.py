"""The scheduling seam: *when* a detection computation is initiated.

The paper decouples what a probe computation does (section 3) from when
one is started (sections 4.2/4.3, 6.7), but until now each model carried
its own copy of that second half -- ``repro.basic.initiation`` and
``repro.ddb.initiation`` duplicated the timer bookkeeping, and the OR
model hard-wired initiate-on-block.  This module is the single home for
initiation *policies*: transport-neutral controllers that decide, from
wait lifecycle callbacks and :class:`~repro.core.transport.NodeContext`
timers alone, when a site should start a computation.

Three pieces, mirroring the detector-variant and workload registries:

* :class:`InitiationPolicy` -- the behaviour contract.  A policy sees
  waits start and resolve at an :class:`InitiationSite` (a model adapter
  wrapping a basic vertex, a DDB controller, or an OR vertex) and may
  schedule timers through the site's context.  One policy instance is
  shared by every site of a system, exactly like the per-model policies
  it replaces.
* :class:`PolicySpec` -- a frozen, picklable value naming a registered
  policy plus its numeric parameters, with a canonical ``policy_id``
  (``"delayed/T=2"``); the unit sweep cells and CLIs pass across process
  boundaries.
* :class:`SchedulingPolicy` -- one registry record per policy family:
  ``register_policy`` is the single third-party entry point, the
  built-ins (``manual`` / ``immediate`` / ``delayed`` / ``periodic`` /
  ``adaptive``) self-register on first lookup.

The ``adaptive`` policy is the section 4.3 knob closed as a control
loop: the paper leaves T manual ("if T is too small too many probe
computations are initiated and if T is too large the time taken to
detect deadlock (which is at least T) is too large"), while Ling, Chen &
Chiang ("On Optimal Deadlock Detection Scheduling") derive the optimal
detection interval ``sqrt(2c / lambda)`` from the detection cost ``c``
and deadlock formation rate ``lambda``.  :class:`AdaptivePolicy`
estimates both online -- wait lifetimes from the site callbacks, cost
and formation rate from probe-computation outcomes streamed off the
``repro.obs`` span engine -- and re-derives T per wait.

Layering note (lint rule RPX004): this module is interface-plus-values
only -- policy state machines against the structural transport protocols
and frozen specs -- and imports nothing above ``repro.errors`` except
the transport seam itself, so any tier may import it: protocol systems
resolve their default policies here, and driver-tier runners resolve
``--policy`` flags through the same registry.  The layering rule
special-cases it as a seam.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.transport import NodeContext, TimerHandle
from repro.errors import ConfigurationError

#: canonical, hashable, picklable parameter shape (sorted by name).
Params = tuple[tuple[str, float], ...]


def make_params(**values: float) -> Params:
    """Normalise keyword parameters into the canonical sorted tuple."""
    return tuple(sorted((name, float(value)) for name, value in values.items()))


@runtime_checkable
class InitiationSite(Protocol):
    """What a policy may know about one initiating location.

    A *site* is the model-side adapter a policy manipulates: a basic
    vertex, a DDB controller, or an OR vertex, reduced to the paper's
    vocabulary -- "a wait on ``subject`` exists here", "start a
    computation".  Subjects are opaque: the basic model waits on target
    vertices, the DDB on constituent processes, the OR model on its own
    dependent set.
    """

    @property
    def ctx(self) -> NodeContext:
        """The site's runtime capabilities (clock, timers, counters)."""
        ...

    @property
    def site_key(self) -> Hashable:
        """Stable identity for per-site policy state."""
        ...

    def initiate(self, subject: Hashable) -> None:
        """Start one detection computation about ``subject``."""
        ...

    def is_waiting(self, subject: Hashable) -> bool:
        """Whether the wait on ``subject`` still exists."""
        ...

    def timer_name(self, subject: Hashable) -> str:
        """Trace name for the delayed-initiation timer of ``subject``."""
        ...

    def note_avoided(self) -> None:
        """Record that cancelling a timer avoided one computation."""
        ...

    def scan(self, optimized: bool) -> None:
        """Run one periodic scan (DDB section 6.7); optional capability."""
        ...

    def scan_timer_name(self) -> str:
        """Trace name for the periodic scan timer."""
        ...


@dataclass(frozen=True)
class ComputationOutcome:
    """One settled probe computation, as fed back to adaptive policies.

    The values come from the ``repro.obs`` span engine: ``outcome`` is
    the span outcome string (``"deadlock"`` / ``"fizzled"`` /
    ``"superseded"``), ``probes_sent`` the computation's message cost,
    and the timestamps virtual times.
    """

    initiator: Hashable
    outcome: str
    probes_sent: int
    initiated_at: float | None
    settled_at: float

    @property
    def deadlock(self) -> bool:
        return self.outcome == "deadlock"


class InitiationPolicy:
    """Base class: notified of wait lifecycle events at sites.

    One instance is shared by all sites of a system.  Subclasses override
    the callbacks they care about; the base class raises on the two
    mandatory ones so a half-implemented policy fails loudly rather than
    silently never initiating.
    """

    #: set by policies that want :meth:`on_computation_outcome` fed from
    #: the span engine (runners attach the bridge only when asked).
    wants_outcomes: bool = False

    def setup(self, site: InitiationSite) -> None:
        """Called once per site at system construction."""

    def on_waits_started(
        self, site: InitiationSite, subjects: tuple[Hashable, ...]
    ) -> None:
        """``site`` just started waiting on every member of ``subjects``.

        One call per simultaneously created batch (one AND-request, one
        blocking episode), mirroring the paper's per-event granularity.
        """
        raise NotImplementedError

    def on_wait_resolved(self, site: InitiationSite, subject: Hashable) -> None:
        """The wait on ``subject`` at ``site`` ended (reply/grant/abort)."""
        raise NotImplementedError

    def on_computation_outcome(self, outcome: ComputationOutcome) -> None:
        """A probe computation settled (only called when ``wants_outcomes``)."""


class ManualPolicy(InitiationPolicy):
    """Never initiates; for scripted tests and exhaustive exploration."""

    def on_waits_started(
        self, site: InitiationSite, subjects: tuple[Hashable, ...]
    ) -> None:
        pass

    def on_wait_resolved(self, site: InitiationSite, subject: Hashable) -> None:
        pass


class ImmediatePolicy(InitiationPolicy):
    """Section 4.2: initiate whenever a wait begins.

    A batch of simultaneously created waits triggers a single computation
    -- A0 probes *all* outgoing edges anyway, so per-subject initiation
    within one batch would only clone identical computations.
    """

    def on_waits_started(
        self, site: InitiationSite, subjects: tuple[Hashable, ...]
    ) -> None:
        site.initiate(subjects[0])

    def on_wait_resolved(self, site: InitiationSite, subject: Hashable) -> None:
        pass


class DelayedPolicy(InitiationPolicy):
    """Section 4.3: initiate after a wait survives for ``T`` time units.

    One timer per wait; resolving the wait cancels its timer and counts
    an avoided computation.  The basic tradeoff (quoted from the paper):
    "if T is too small too many probe computations are initiated and if T
    is too large the time taken to detect deadlock (which is at least T)
    is too large."
    """

    def __init__(self, timeout: float) -> None:
        if timeout < 0:
            raise ConfigurationError(f"T must be non-negative, got {timeout}")
        self.timeout = timeout
        self._timers: dict[tuple[Hashable, Hashable], TimerHandle] = {}

    def delay_for(self, site: InitiationSite, subject: Hashable) -> float:
        """The T to arm for this wait; the adaptive subclass re-derives it."""
        return self.timeout

    def on_waits_started(
        self, site: InitiationSite, subjects: tuple[Hashable, ...]
    ) -> None:
        for subject in subjects:
            key = (site.site_key, subject)

            def fire(
                site: InitiationSite = site,
                subject: Hashable = subject,
                key: tuple[Hashable, Hashable] = key,
            ) -> None:
                self._timers.pop(key, None)
                # The timer is cancelled on resolution, so the wait existed
                # continuously since creation; re-check defensively anyway.
                if site.is_waiting(subject):
                    site.initiate(subject)

            self._timers[key] = site.ctx.set_timer(
                self.delay_for(site, subject), fire, name=site.timer_name(subject)
            )

    def on_wait_resolved(self, site: InitiationSite, subject: Hashable) -> None:
        handle = self._timers.pop((site.site_key, subject), None)
        if handle is not None:
            handle.cancel()
            site.note_avoided()


class PeriodicPolicy(InitiationPolicy):
    """Timer-driven site scans (DDB controllers, sections 6.7).

    Parameters
    ----------
    period:
        Virtual-time interval between scans at each site.
    optimized:
        Apply the section 6.7 reduction (local-cycle check, then only
        processes with incoming black inter-controller edges).
    horizon:
        Stop rescheduling scans after this virtual time (experiments run
        for a bounded time; without a horizon the simulation never
        quiesces).
    """

    def __init__(
        self, period: float, optimized: bool = True, horizon: float = float("inf")
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"scan period must be positive, got {period}")
        self.period = period
        self.optimized = optimized
        self.horizon = horizon

    def setup(self, site: InitiationSite) -> None:
        self._schedule(site)

    def on_waits_started(
        self, site: InitiationSite, subjects: tuple[Hashable, ...]
    ) -> None:
        pass

    def on_wait_resolved(self, site: InitiationSite, subject: Hashable) -> None:
        pass

    def _schedule(self, site: InitiationSite) -> None:
        next_time = site.ctx.now() + self.period
        if next_time > self.horizon:
            return
        site.ctx.set_timer(
            self.period,
            lambda: self._scan(site),
            name=site.scan_timer_name(),
        )

    def _scan(self, site: InitiationSite) -> None:
        site.scan(self.optimized)
        self._schedule(site)


class _Ewma:
    """A tiny exponentially weighted moving average (None until first obs)."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.value: float | None = None

    def observe(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value


class AdaptivePolicy(DelayedPolicy):
    """Close the section 4.3 loop: re-derive T online per wait.

    Two signals drive the controller:

    * **Wait lifetimes** (the site callbacks).  Most waits resolve; a T
      comfortably above the typical lifetime avoids their computations.
      ``margin * L_hat`` (EWMA of observed lifetimes) is the *guard*
      term -- it rises during bursts of long contended waits and decays
      back when traffic quiets down, which is exactly the §4.3 knob the
      paper leaves manual.
    * **Computation outcomes** (the ``repro.obs`` span feedback, via
      :meth:`on_computation_outcome`).  Following Ling, Chen & Chiang,
      the optimal detection interval is ``T* = sqrt(2c / lambda)`` for
      per-detection cost ``c`` (EWMA of probes per settled computation)
      and deadlock formation rate ``lambda`` (reciprocal EWMA of the
      interval between deadlock outcomes).  When deadlocks are frequent
      the Ling term *lowers* T below the guard -- latency dominates the
      cost of extra probes.

    The armed delay is ``clamp(min(guard, T*), t_min, t_max)``; before
    any lifetime is observed the guard falls back to ``t_init``, and the
    Ling term stays inactive until both estimates exist.
    """

    wants_outcomes = True

    def __init__(
        self,
        *,
        alpha: float = 0.3,
        margin: float = 3.0,
        t_min: float = 0.25,
        t_max: float = 16.0,
        t_init: float = 2.0,
    ) -> None:
        super().__init__(t_init)
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if margin <= 0:
            raise ConfigurationError(f"margin must be positive, got {margin}")
        if not 0 <= t_min <= t_max:
            raise ConfigurationError(
                f"need 0 <= t_min <= t_max, got [{t_min}, {t_max}]"
            )
        if t_init < 0:
            raise ConfigurationError(f"t_init must be non-negative, got {t_init}")
        self.alpha = alpha
        self.margin = margin
        self.t_min = t_min
        self.t_max = t_max
        self.t_init = t_init
        self._lifetime = _Ewma(alpha)
        self._cost = _Ewma(alpha)
        self._deadlock_gap = _Ewma(alpha)
        self._last_deadlock_at: float | None = None
        self._wait_started: dict[tuple[Hashable, Hashable], float] = {}

    # -- the controller ------------------------------------------------

    def current_t(self) -> float:
        """The delay the next wait would be armed with."""
        lifetime = self._lifetime.value
        guard = self.t_init if lifetime is None else self.margin * lifetime
        cost = self._cost.value
        gap = self._deadlock_gap.value
        if cost is not None and gap is not None and gap > 0:
            # Ling et al.: T* = sqrt(2 c / lambda) with lambda = 1 / gap.
            guard = min(guard, math.sqrt(2.0 * max(cost, 1.0) * gap))
        return min(max(guard, self.t_min), self.t_max)

    def delay_for(self, site: InitiationSite, subject: Hashable) -> float:
        return self.current_t()

    # -- signal intake -------------------------------------------------

    def on_waits_started(
        self, site: InitiationSite, subjects: tuple[Hashable, ...]
    ) -> None:
        now = site.ctx.now()
        for subject in subjects:
            self._wait_started[(site.site_key, subject)] = now
        super().on_waits_started(site, subjects)

    def on_wait_resolved(self, site: InitiationSite, subject: Hashable) -> None:
        started = self._wait_started.pop((site.site_key, subject), None)
        if started is not None:
            self._lifetime.observe(site.ctx.now() - started)
        super().on_wait_resolved(site, subject)

    def on_computation_outcome(self, outcome: ComputationOutcome) -> None:
        self._cost.observe(float(outcome.probes_sent))
        if not outcome.deadlock:
            return
        if self._last_deadlock_at is not None:
            gap = outcome.settled_at - self._last_deadlock_at
            if gap > 0:
                self._deadlock_gap.observe(gap)
        self._last_deadlock_at = outcome.settled_at


# ----------------------------------------------------------------------
# Specs and the registry
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PolicySpec:
    """A frozen, picklable recipe naming a policy plus its parameters.

    ``policy`` names a registered :class:`SchedulingPolicy`; ``params``
    is the canonical sorted tuple (:func:`make_params`).  The value is
    hashable and safe to ship across process boundaries (sweep workers)
    and to embed in cell ids.
    """

    policy: str
    params: Params = ()

    @property
    def policy_id(self) -> str:
        """Canonical id: ``"immediate"``, ``"delayed/T=2"``, ..."""
        parts = [self.policy]
        parts.extend(f"{name}={value:g}" for name, value in self.params)
        return "/".join(parts)

    def param(self, name: str, default: float | None = None) -> float:
        """A parameter by name; ``default`` when absent, else a typed error."""
        for key, value in self.params:
            if key == name:
                return value
        if default is None:
            raise ConfigurationError(
                f"policy spec {self.policy_id!r} needs parameter {name!r}"
            )
        return default


def parse_policy_spec(text: str) -> PolicySpec:
    """Parse a ``policy_id``-shaped string back into a :class:`PolicySpec`.

    The inverse of :attr:`PolicySpec.policy_id` -- what ``--policy``
    flags and sweep cells carry: ``"adaptive"``, ``"delayed/T=2"``,
    ``"periodic/period=5/optimized=0"``.
    """
    pieces = [piece for piece in text.strip().split("/") if piece]
    if not pieces:
        raise ConfigurationError("empty policy spec")
    name, raw_params = pieces[0], pieces[1:]
    values: dict[str, float] = {}
    for raw in raw_params:
        key, sep, value = raw.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"malformed policy parameter {raw!r} in {text!r} "
                "(expected name=value)"
            )
        try:
            values[key] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"policy parameter {key!r} in {text!r} is not a number: {value!r}"
            ) from None
    return PolicySpec(policy=name, params=make_params(**values))


def coerce_policy_spec(value: PolicySpec | str | None) -> PolicySpec | None:
    """Normalise a runner's ``policy`` argument.

    Runners and CLIs accept either a ready :class:`PolicySpec` or the
    ``policy_id`` string spelling; ``None`` passes through (meaning "the
    variant's default initiation").
    """
    if value is None or isinstance(value, PolicySpec):
        return value
    return parse_policy_spec(value)


@dataclass(frozen=True)
class SchedulingPolicy:
    """One registered initiation-policy family.

    ``build`` turns a :class:`PolicySpec` into a live
    :class:`InitiationPolicy` instance; ``models`` names the detector
    models the policy can drive (``"basic"`` / ``"ddb"`` /
    ``"ormodel"``); ``example`` is a runnable spec for docs and the CLI
    listing.
    """

    name: str
    title: str
    description: str
    #: paper / literature anchor ("section 4.2", "Ling et al.", ...).
    source: str
    models: tuple[str, ...]
    build: Callable[[PolicySpec], InitiationPolicy]
    example: PolicySpec

    def supports_model(self, model: str) -> bool:
        return model in self.models


_REGISTRY: dict[str, SchedulingPolicy] = {}
_builtins_loaded = False


def register_policy(policy: SchedulingPolicy) -> SchedulingPolicy:
    """Add a policy to the registry; duplicate names are configuration bugs."""
    if policy.name in _REGISTRY:
        raise ConfigurationError(
            f"scheduling policy {policy.name!r} is already registered"
        )
    _REGISTRY[policy.name] = policy
    return policy


def _build_manual(spec: PolicySpec) -> InitiationPolicy:
    return ManualPolicy()


def _build_immediate(spec: PolicySpec) -> InitiationPolicy:
    return ImmediatePolicy()


def _build_delayed(spec: PolicySpec) -> InitiationPolicy:
    return DelayedPolicy(spec.param("T"))


def _build_periodic(spec: PolicySpec) -> InitiationPolicy:
    return PeriodicPolicy(
        spec.param("period"),
        optimized=bool(spec.param("optimized", 1.0)),
        horizon=spec.param("horizon", math.inf),
    )


def _build_adaptive(spec: PolicySpec) -> InitiationPolicy:
    return AdaptivePolicy(
        alpha=spec.param("alpha", 0.3),
        margin=spec.param("margin", 3.0),
        t_min=spec.param("t_min", 0.25),
        t_max=spec.param("t_max", 16.0),
        t_init=spec.param("t_init", 2.0),
    )


def ensure_builtin_policies() -> None:
    """Register the built-in policies (idempotent; called by every lookup)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    register_policy(
        SchedulingPolicy(
            name="manual",
            title="no automatic initiation",
            description=(
                "Never initiates; scripted scenarios and exhaustive tests "
                "call the model's initiation entry point directly."
            ),
            source="harness",
            models=("basic", "ddb", "ormodel"),
            build=_build_manual,
            example=PolicySpec(policy="manual"),
        )
    )
    register_policy(
        SchedulingPolicy(
            name="immediate",
            title="initiate whenever a wait begins",
            description=(
                "Section 4.2's rule: every new wait starts a computation, "
                "so the vertex that closes a dark cycle always detects it."
            ),
            source="section 4.2",
            models=("basic", "ddb", "ormodel"),
            build=_build_immediate,
            example=PolicySpec(policy="immediate"),
        )
    )
    register_policy(
        SchedulingPolicy(
            name="delayed",
            title="initiate after a wait survives T time units",
            description=(
                "Section 4.3's optimisation: waits resolved before T avoid "
                "their computations; detection latency is at least T."
            ),
            source="section 4.3",
            models=("basic", "ddb", "ormodel"),
            build=_build_delayed,
            example=PolicySpec(policy="delayed", params=make_params(T=2.0)),
        )
    )
    register_policy(
        SchedulingPolicy(
            name="periodic",
            title="timer-driven controller scans",
            description=(
                "Controllers scan every `period` time units; optimised "
                "scans apply the section 6.7 Q-reduction (local-cycle "
                "check, then incoming black inter-controller edges)."
            ),
            source="section 6.7",
            models=("ddb",),
            build=_build_periodic,
            example=PolicySpec(
                policy="periodic", params=make_params(period=5.0)
            ),
        )
    )
    register_policy(
        SchedulingPolicy(
            name="adaptive",
            title="online T controller (lifetimes + outcome feedback)",
            description=(
                "Re-derives the section 4.3 window per wait from an EWMA "
                "of observed wait lifetimes (guard = margin * lifetime) "
                "and Ling et al.'s sqrt(2c/lambda) optimum fed by probe-"
                "computation outcomes from the span engine."
            ),
            source="section 4.3 + Ling, Chen & Chiang",
            models=("basic", "ddb", "ormodel"),
            build=_build_adaptive,
            example=PolicySpec(policy="adaptive"),
        )
    )


def get_policy(name: str) -> SchedulingPolicy:
    """Look up one policy; unknown names list what is available."""
    ensure_builtin_policies()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ConfigurationError(
            f"unknown scheduling policy {name!r} (registered: {known})"
        ) from None


def all_policies() -> tuple[SchedulingPolicy, ...]:
    """Every registered policy, sorted by name."""
    ensure_builtin_policies()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def policy_names() -> tuple[str, ...]:
    """Sorted registered policy names."""
    ensure_builtin_policies()
    return tuple(sorted(_REGISTRY))


def policies_for_model(model: str) -> tuple[SchedulingPolicy, ...]:
    """The policies able to drive ``model``, sorted by name."""
    return tuple(p for p in all_policies() if p.supports_model(model))


def require_model(spec: PolicySpec, model: str) -> SchedulingPolicy:
    """The registered policy behind ``spec`` iff it supports ``model``."""
    policy = get_policy(spec.policy)
    if not policy.supports_model(model):
        supported = ", ".join(p.name for p in policies_for_model(model)) or "none"
        raise ConfigurationError(
            f"scheduling policy {spec.policy!r} does not support model "
            f"{model!r} (policies for {model!r}: {supported})"
        )
    return policy


def build_policy(spec: PolicySpec, model: str | None = None) -> InitiationPolicy:
    """Instantiate the policy named by ``spec`` (model-checked when given)."""
    if model is not None:
        policy = require_model(spec, model)
    else:
        policy = get_policy(spec.policy)
    return policy.build(spec)
