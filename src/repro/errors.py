"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  Errors
are split along the package structure: simulation-engine misuse, model-axiom
violations (the G/P axioms from the paper), and configuration problems.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation engine.

    Examples: scheduling an event in the past, running a simulator that was
    already closed, or sending a message to an unregistered process.
    """


class ConfigurationError(ReproError):
    """A system was built with inconsistent or out-of-range parameters."""


class AxiomViolation(ReproError):
    """One of the paper's axioms (G1-G6, P1-P4) was violated.

    The library enforces the graph axioms at run time (in the oracle graph)
    and raises this error if the underlying computation attempts an illegal
    transition -- e.g. whitening an edge whose target still has outgoing
    edges (G3), or re-creating an edge that already exists (G1).  A raised
    AxiomViolation always indicates a bug in a driver/workload or in the
    library itself, never a legal run-time condition.
    """

    def __init__(self, axiom: str, message: str) -> None:
        super().__init__(f"axiom {axiom} violated: {message}")
        self.axiom = axiom


class ProtocolError(ReproError):
    """A protocol message arrived in a state that the paper rules out.

    For instance, a reply received for a request that was never sent, or a
    lock release from a transaction that holds no lock.  Like
    :class:`AxiomViolation`, this indicates a bug rather than a recoverable
    condition.
    """


class BoundViolation(ReproError):
    """A run exceeded one of the paper's proved performance bounds.

    Section 4 bounds a probe computation at **one probe per edge** (a vertex
    propagates at most once per computation, sending at most one probe per
    outgoing edge) and hence at most ``|E|`` probes overall -- ``N`` on a
    simple cycle of ``N`` vertices.  The span layer
    (:mod:`repro.obs.spans`) machine-checks these bounds on every
    reconstructed computation; a violation always indicates a protocol bug,
    never a legal run-time condition.
    """

    def __init__(self, bound: str, message: str) -> None:
        super().__init__(f"bound {bound} violated: {message}")
        self.bound = bound


@dataclass(frozen=True)
class WorkerFailure:
    """One worker process that died or went silent during a cluster run.

    ``worker`` is the coordinator-assigned index, ``node`` the registered
    process id the worker hosted channels for (stringified: ids may be
    rich objects), ``returncode`` the exit status if the process already
    exited, and ``detail`` the tail of the worker's captured stderr.
    """

    worker: int
    node: str
    reason: str
    returncode: int | None = None
    detail: str = ""


class ClusterError(SimulationError):
    """A multi-process cluster run could not complete.

    Raised by :class:`repro.cluster.transport.ClusterTransport` when a
    worker process dies, stops heartbeating, or never connects -- the
    typed partial-run report the coordinator surfaces instead of hanging
    until the wall-clock budget expires.  ``failures`` carries one
    :class:`WorkerFailure` per worker known dead when the error was
    raised.
    """

    def __init__(self, message: str, failures: tuple[WorkerFailure, ...] = ()) -> None:
        if failures:
            summary = "; ".join(
                f"worker {f.worker} ({f.node}): {f.reason}" for f in failures
            )
            message = f"{message} [{summary}]"
        super().__init__(message)
        self.failures = failures


class TransactionAborted(ReproError):
    """Raised inside transaction logic when the transaction has been aborted
    (e.g. chosen as a deadlock victim) and must stop issuing operations."""

    def __init__(self, transaction: int, reason: str) -> None:
        super().__init__(f"transaction T{transaction} aborted: {reason}")
        self.transaction = transaction
        self.reason = reason
