"""FIFO message network with pluggable delay models.

The paper's only communication assumptions (section 2.4 / P4) are:

1. every message is received correctly, after an arbitrary finite delay, and
2. messages between a given sender/receiver pair are received **in the
   order sent**.

:class:`Network` provides both.  Each ordered pair of processes is a
channel; a message's nominal delay is drawn from the channel's delay model,
and its delivery time is then clamped to be at or after the previously
scheduled delivery on that channel, which yields per-channel FIFO regardless
of the drawn delays.

The FIFO clamp can be disabled (``fifo=False``) *only* to demonstrate, in
the ablation tests, that axioms P1/P2 -- and with them the algorithm's
soundness argument -- genuinely depend on ordered delivery.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable
from typing import Any, Protocol

from repro.errors import SimulationError
from repro.sim import categories
from repro.sim.metrics import Counter
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class DelayModel(Protocol):
    """Draws a nominal (pre-FIFO-clamp) delay for one message."""

    def sample(self, rng: random.Random) -> float:
        """Return a finite, non-negative delay."""
        ...


class FixedDelay:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedDelay({self.delay})"


class UniformDelay:
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformDelay({self.low}, {self.high})"


class ExponentialDelay:
    """Delay drawn from an exponential distribution with the given mean.

    Heavy right tail; good at exposing reordering-adjacent bugs because
    successive messages on one channel frequently draw wildly different
    nominal delays and rely on the FIFO clamp.
    """

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise SimulationError(f"mean must be positive, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self.mean})"


class Network:
    """Message transport between registered processes.

    Parameters
    ----------
    simulator:
        The owning simulator (provides scheduling, RNG, metrics, trace).
    delay_model:
        Nominal per-message delay distribution (default ``FixedDelay(1)``).
    fifo:
        Keep per-channel FIFO ordering (the paper's assumption).  Disable
        only in the ablation tests.
    """

    #: Minimal spacing between two deliveries on one channel, used by the
    #: FIFO clamp.  Strictly positive so same-channel messages never tie in
    #: time and delivery order is unambiguous.
    _FIFO_EPSILON = 1e-9

    def __init__(
        self,
        simulator: Simulator,
        delay_model: DelayModel | None = None,
        fifo: bool = True,
    ) -> None:
        self.simulator = simulator
        self.delay_model = delay_model if delay_model is not None else FixedDelay(1.0)
        self.fifo = fifo
        self._processes: dict[Hashable, Process] = {}
        self._last_delivery: dict[tuple[Hashable, Hashable], float] = {}
        #: Optional deterministic delay script for adversarial tests:
        #: called as ``(sender, destination, message)``; a non-None return
        #: replaces the sampled delay.  Combined with ``fifo=False`` this
        #: lets the ablation tests construct the exact message orderings
        #: that break axioms P1/P2.
        self.delay_override: Callable[[Hashable, Hashable, Any], float | None] | None = None
        # One delay stream per message type: detection traffic (probes)
        # then cannot perturb the delays drawn for the underlying
        # computation (requests/replies), so runs that differ only in
        # detection policy see byte-identical workload evolution --
        # essential for the cross-policy comparisons in E5/E7/E8.
        self._rngs: dict[str, random.Random] = {}
        # Hot-path caches: metric objects are stable for the registry's
        # lifetime, so bind them once instead of re-resolving per message;
        # per-type counters and delivery-event names are memoised lazily.
        metrics = simulator.metrics
        self._sent_counter = metrics.counter("net.messages.sent")
        self._delivered_counter = metrics.counter("net.messages.delivered")
        self._in_flight = metrics.gauge("net.messages.in_flight")
        self._type_counters: dict[str, Counter] = {}
        self._deliver_names: dict[tuple[str, Hashable, Hashable], str] = {}

    def register(self, process: Process) -> None:
        """Add ``process`` to the network; its pid must be unique.

        Registration attaches the process's
        :class:`~repro.sim.transport.SimNodeContext` -- the capability
        view protocol code speaks instead of this network directly.
        """
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid!r}")
        # Local import: transport.py imports Network for its constructor
        # signature, so importing it at module scope would be circular.
        from repro.sim.transport import SimNodeContext

        self._processes[process.pid] = process
        process.attach_context(SimNodeContext(process.pid, self.simulator, self))

    def process(self, pid: Hashable) -> Process:
        """Look up a registered process by id."""
        try:
            return self._processes[pid]
        except KeyError:
            raise SimulationError(f"no process registered with id {pid!r}") from None

    @property
    def process_ids(self) -> list[Hashable]:
        return list(self._processes)

    def send(self, sender: Hashable, destination: Hashable, message: Any) -> None:
        """Queue ``message`` for delivery from ``sender`` to ``destination``.

        Accounting: increments ``net.messages.sent`` and a per-message-type
        counter ``net.messages.sent.<TypeName>`` -- the benchmarks read the
        probe counters from here.
        """
        if destination not in self._processes:
            raise SimulationError(
                f"{sender!r} sent a message to unknown process {destination!r}"
            )
        now = self.simulator.now
        type_key = type(message).__name__
        nominal: float | None = None
        if self.delay_override is not None:
            nominal = self.delay_override(sender, destination, message)
        if nominal is None:
            rng = self._rngs.get(type_key)
            if rng is None:
                rng = self.simulator.rng.stream(f"network.delays.{type_key}")
                self._rngs[type_key] = rng
            nominal = self.delay_model.sample(rng)
        if nominal < 0:
            raise SimulationError(f"delay model produced negative delay {nominal}")
        delivery_time = now + nominal
        channel = (sender, destination)
        if self.fifo:
            floor = self._last_delivery.get(channel)
            if floor is not None and delivery_time <= floor:
                delivery_time = floor + self._FIFO_EPSILON
            self._last_delivery[channel] = delivery_time

        self._sent_counter.increment()
        type_counter = self._type_counters.get(type_key)
        if type_counter is None:
            type_counter = self.simulator.metrics.counter(f"net.messages.sent.{type_key}")
            self._type_counters[type_key] = type_counter
        type_counter.increment()
        in_flight = self._in_flight
        in_flight.increment()
        tracer = self.simulator.tracer
        if tracer.wants(categories.NET_SENT):
            tracer.record(
                now,
                categories.NET_SENT,
                sender=sender,
                destination=destination,
                message=message,
            )

        delivered_counter = self._delivered_counter

        def deliver() -> None:
            if tracer.wants(categories.NET_DELIVERED):
                tracer.record(
                    self.simulator.now,
                    categories.NET_DELIVERED,
                    sender=sender,
                    destination=destination,
                    message=message,
                )
            delivered_counter.increment()
            in_flight.decrement()
            self._processes[destination].on_message(sender, message)

        name_key = (type_key, sender, destination)
        name = self._deliver_names.get(name_key)
        if name is None:
            name = f"deliver {type_key} {sender!r}->{destination!r}"
            self._deliver_names[name_key] = name
        self.simulator.schedule_at(delivery_time, deliver, name=name)

    def __repr__(self) -> str:
        return (
            f"Network(processes={len(self._processes)}, delay={self.delay_model!r}, "
            f"fifo={self.fifo})"
        )
