"""Virtual time for the discrete-event simulator.

Time is a non-negative float that only the simulator may advance, and only
monotonically.  Model code reads ``clock.now``; it never writes it.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """A monotonically advancing virtual clock.

    The clock starts at ``0.0``.  :meth:`advance_to` is called by the
    simulator when it dequeues an event; user code should treat the clock as
    read-only.
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past; equal
        times are allowed (many events may share a timestamp).
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={time}"
            )
        self._now = time

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
