"""Actor base class for protocol processes.

Vertices (basic model) and controllers (DDB model) are :class:`Process`
subclasses.  A process has an identity, a single entry point --
:meth:`Process.on_message` -- invoked by its transport when a message is
delivered, and a :class:`~repro.core.transport.NodeContext` attached at
registration time that carries everything the paper's axioms let a node
do: send, read the clock, set timers, emit observations.

The process knows nothing about which runtime hosts it.  Registered with
a :class:`~repro.sim.transport.SimTransport` it runs deterministically in
virtual time; registered with a
:class:`~repro.live.transport.AsyncioTransport` it runs against the wall
clock.  The paper's atomicity note ("each step A0, A1, A2 of the
algorithm, once started, must be completed before the process can send or
receive other messages") is part of the transport contract: both runtimes
run a message handler to completion before any other event fires.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.transport import NodeContext


class Process:
    """A named participant in a message-passing system.

    Subclasses override :meth:`on_message`.  ``pid`` may be any hashable
    (ints for vertices, ``SiteId`` for controllers).
    """

    def __init__(self, pid: Hashable) -> None:
        self.pid = pid
        self._ctx: "NodeContext | None" = None

    @property
    def ctx(self) -> "NodeContext":
        """The node context attached at registration.

        Raises a typed :class:`~repro.errors.ConfigurationError` naming
        the pid when the process acts (sends, reads the clock, sets a
        timer) before being registered with a transport.
        """
        if self._ctx is None:
            raise ConfigurationError(
                f"process {self.pid!r} is not registered with a transport; "
                "register it (Transport.register / Network.register) before "
                "it sends, schedules, or reads the clock"
            )
        return self._ctx

    @property
    def registered(self) -> bool:
        """Whether a transport has attached this process's context."""
        return self._ctx is not None

    def attach_context(self, ctx: "NodeContext") -> None:
        """Called by the transport at registration; not for direct use."""
        self._ctx = ctx

    @property
    def now(self) -> float:
        return self.ctx.now()

    def send(self, destination: Hashable, message: Any) -> None:
        """Send ``message`` to the process named ``destination``."""
        self.ctx.send(destination, message)

    def on_message(self, sender: Hashable, message: Any) -> None:
        """Handle a delivered message.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pid={self.pid!r})"
