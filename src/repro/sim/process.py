"""Actor base class for simulated processes.

Vertices (basic model) and controllers (DDB model) are :class:`Process`
subclasses.  A process has an identity, access to the simulator, and a
single entry point -- :meth:`Process.on_message` -- invoked by the network
when a message is delivered.

The paper's atomicity note ("each step A0, A1, A2 of the algorithm, once
started, must be completed before the process can send or receive other
messages") is satisfied structurally: the simulator is single-threaded and a
message handler runs to completion before any other event fires.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING, Any

from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.network import Network


class Process:
    """A named participant in the simulated message-passing system.

    Subclasses override :meth:`on_message`.  ``pid`` may be any hashable
    (ints for vertices, ``SiteId`` for controllers).
    """

    def __init__(self, pid: Hashable, simulator: Simulator) -> None:
        self.pid = pid
        self.simulator = simulator
        self._network: "Network | None" = None

    @property
    def network(self) -> "Network":
        """The network this process is attached to."""
        if self._network is None:
            raise RuntimeError(f"process {self.pid!r} is not attached to a network")
        return self._network

    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.register`; not for direct use."""
        self._network = network

    @property
    def now(self) -> float:
        return self.simulator.now

    def send(self, destination: Hashable, message: Any) -> None:
        """Send ``message`` to the process named ``destination``."""
        self.network.send(self.pid, destination, message)

    def on_message(self, sender: Hashable, message: Any) -> None:
        """Handle a delivered message.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pid={self.pid!r})"
