"""Event objects and the stable event queue.

Events are ordered by ``(time, sequence)``: events scheduled earlier in real
(simulation-construction) order run first among same-time events.  This
stability is what makes the whole simulation deterministic for a given seed,
which in turn makes every benchmark and test reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

Action = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Only ``time`` and ``sequence`` participate in ordering; the action and
    name are payload.  ``cancelled`` supports O(1) cancellation with lazy
    removal from the heap.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by scheduling; allows cancellation.

    Cancelling an already-fired or already-cancelled event is a no-op, which
    keeps timer management in model code simple (e.g. the delayed-T
    initiation rule cancels its timer when the edge disappears, without
    having to know whether the timer already fired).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Mark the underlying event as cancelled."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time

    def __repr__(self) -> str:
        state = "cancelled" if self._event.cancelled else "pending"
        return f"EventHandle(t={self._event.time}, {state}, {self._event.name!r})"


class EventQueue:
    """A stable min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Action, name: str = "") -> EventHandle:
        """Add an event at absolute ``time`` and return its handle."""
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), action=action, name=name)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when empty; check :meth:`__bool__`
        or :attr:`next_time` first.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            return event
        raise SimulationError("pop from an empty event queue")

    @property
    def next_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.

        O(heap size); intended for assertions and quiescence checks, not
        hot loops (the engine's hot path uses :attr:`next_time`).
        """
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included.

        O(1), so safe to read per event; the profiling layer uses it as the
        queue-depth signal (an upper bound on live events -- cancelled
        entries are removed lazily).
        """
        return len(self._heap)

    def __bool__(self) -> bool:
        return self.next_time is not None
