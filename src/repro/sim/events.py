"""Event objects and the stable event queue.

Events are ordered by ``(time, sequence)``: events scheduled earlier in real
(simulation-construction) order run first among same-time events.  This
stability is what makes the whole simulation deterministic for a given seed,
which in turn makes every benchmark and test reproducible.

The heap stores ``(time, sequence, event)`` triples rather than the events
themselves: tuple comparison runs in C and -- because ``sequence`` is unique
-- never falls through to comparing the :class:`Event` payload.  At heap
depth *d* a push or pop performs O(log d) comparisons, so moving them out
of Python (the dataclass-generated ``__lt__`` allocated two tuples per
comparison) is the single largest win in the engine's hot path.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

Action = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Only ``time`` and ``sequence`` participate in ordering; the action and
    name are payload.  ``cancelled`` supports O(1) cancellation with lazy
    removal from the heap.  ``slots=True`` matters here: events are the
    single most-allocated object in any run, and slotted attribute access
    is what the engine's inner loop (pop, execute) touches.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


#: One heap entry: ``(time, sequence, event)``.  Ordered entirely by the
#: first two fields (``sequence`` is unique), compared in C.
HeapEntry = tuple[float, int, Event]


class EventHandle:
    """Handle returned by scheduling; allows cancellation.

    Cancelling an already-fired or already-cancelled event is a no-op, which
    keeps timer management in model code simple (e.g. the delayed-T
    initiation rule cancels its timer when the edge disappears, without
    having to know whether the timer already fired).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Mark the underlying event as cancelled."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time

    def __repr__(self) -> str:
        state = "cancelled" if self._event.cancelled else "pending"
        return f"EventHandle(t={self._event.time}, {state}, {self._event.name!r})"


class EventQueue:
    """A stable min-heap of :class:`Event` objects with lazy cancellation."""

    __slots__ = ("_counter", "_heap")

    def __init__(self) -> None:
        self._heap: list[HeapEntry] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Action, name: str = "") -> EventHandle:
        """Add an event at absolute ``time`` and return its handle."""
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        sequence = next(self._counter)
        event = Event(time=time, sequence=sequence, action=action, name=name)
        heapq.heappush(self._heap, (time, sequence, event))
        return EventHandle(event)

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when empty; check :meth:`__bool__`
        or :attr:`next_time` first.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                continue
            return event
        raise SimulationError("pop from an empty event queue")

    @property
    def next_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.

        O(heap size); intended for assertions and quiescence checks, not
        hot loops (the engine's hot path uses :attr:`next_time`).
        """
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included.

        O(1), so safe to read per event; the profiling layer uses it as the
        queue-depth signal (an upper bound on live events -- cancelled
        entries are removed lazily).
        """
        return len(self._heap)

    def __bool__(self) -> bool:
        return self.next_time is not None
