"""Named, reproducible random streams.

Every source of randomness in a simulation (message delays, workload think
times, victim tie-breaking, ...) draws from its own named stream, all of
which derive deterministically from one root seed.  This isolates streams
from one another: adding a new consumer of randomness does not perturb the
draws seen by existing consumers, so experiment results stay comparable
across code changes -- a standard discipline for simulation studies.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 over a canonical encoding so the mapping is stable across
    Python versions and processes (unlike ``hash()``, which is salted).
    """
    payload = f"{root_seed}:{name}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named :class:`random.Random` streams under one root seed.

    Requesting the same name twice returns the same stream object, so
    components may freely re-request their stream instead of threading it
    through constructors.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(derive_seed(self._seed, name))
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose root seed derives from ``name``.

        Useful for running many replications: ``registry.fork(f"rep{i}")``
        yields fully independent but reproducible sub-experiments.
        """
        return RngRegistry(derive_seed(self._seed, name))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
