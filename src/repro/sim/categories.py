"""Central registry of trace-event categories.

Every category string recorded through :meth:`Simulator.trace_now` /
:meth:`Tracer.record` and every category a consumer matches against
(`verification/invariants.py`, the system observers, the baselines, the
timeline renderer) must be a constant from this module.  The invariant
checkers grep the trace *by category*; a typo'd literal on either the
producer or the consumer side silently defeats them.  Centralising the
names turns that failure mode into an ``AttributeError`` at import time,
and the ``RPX005`` rule of :mod:`repro.lint` rejects raw dotted literals
at lint time.

Naming convention: ``<model>.<noun>.<verb>`` dotted strings; the constant
is the upper-cased, underscore-joined form of the string.
"""

from __future__ import annotations

from typing import Final

# -- network layer (sim/network.py) ----------------------------------------
NET_SENT: Final = "net.sent"
NET_DELIVERED: Final = "net.delivered"

# -- basic model (sections 2-5) --------------------------------------------
BASIC_REQUEST_SENT: Final = "basic.request.sent"
BASIC_REQUEST_RECEIVED: Final = "basic.request.received"
BASIC_REPLY_SENT: Final = "basic.reply.sent"
BASIC_REPLY_RECEIVED: Final = "basic.reply.received"
BASIC_PROBE_SENT: Final = "basic.probe.sent"
BASIC_PROBE_RECEIVED: Final = "basic.probe.received"
BASIC_COMPUTATION_INITIATED: Final = "basic.computation.initiated"
BASIC_DEADLOCK_DECLARED: Final = "basic.deadlock.declared"
BASIC_UNBLOCKED: Final = "basic.unblocked"

# -- distributed-database model (section 6) --------------------------------
DDB_TXN_BEGIN: Final = "ddb.txn.begin"
DDB_TXN_BLOCKED: Final = "ddb.txn.blocked"
DDB_TXN_COMMITTED: Final = "ddb.txn.committed"
DDB_TXN_ABORTED: Final = "ddb.txn.aborted"
DDB_EDGE_ADDED: Final = "ddb.edge.added"
DDB_AGENT_BLOCKED: Final = "ddb.agent.blocked"
DDB_PROBE_SENT: Final = "ddb.probe.sent"
DDB_PROBE_RECEIVED: Final = "ddb.probe.received"
DDB_COMPUTATION_INITIATED: Final = "ddb.computation.initiated"
DDB_DEADLOCK_DECLARED: Final = "ddb.deadlock.declared"

# -- observability / profiling (repro.obs) ---------------------------------
#: Periodic event-queue-depth sample recorded by the opt-in profiler
#: (virtual-time stamped, hence deterministic and replayable).
PROFILE_QUEUE_SAMPLED: Final = "profile.queue.sampled"
#: The streaming span engine resolved one probe computation ``(i, n)``
#: and evicted it from memory (outcome + probe accounting in the details).
OBS_SPAN_SETTLED: Final = "obs.span.settled"
#: The live telemetry layer took one periodic metrics snapshot.
OBS_METRICS_SNAPSHOT: Final = "obs.metrics.snapshot"

# -- cluster runtime (repro.cluster) ----------------------------------------
#: A worker process connected back and completed its hello handshake.
CLUSTER_WORKER_READY: Final = "cluster.worker.ready"
#: A worker process died, broke its connection, or stopped heartbeating.
CLUSTER_WORKER_FAILED: Final = "cluster.worker.failed"

# -- OR / communication model (section 7) ----------------------------------
OR_REQUEST_SENT: Final = "or.request.sent"
OR_GRANT_SENT: Final = "or.grant.sent"
OR_UNBLOCKED: Final = "or.unblocked"
OR_DEADLOCK_DECLARED: Final = "or.deadlock.declared"

#: Every registered category.  ``Tracer`` does not enforce membership (ad
#: hoc categories are useful in tests), but the lint layer and the
#: registry round-trip test do.
ALL_CATEGORIES: Final[frozenset[str]] = frozenset(
    value
    for name, value in list(globals().items())
    if name.isupper() and name != "ALL_CATEGORIES" and isinstance(value, str)
)

_CONSTANT_BY_VALUE: dict[str, str] = {
    value: name
    for name, value in list(globals().items())
    if name.isupper() and name != "ALL_CATEGORIES" and isinstance(value, str)
}


def is_registered(category: str) -> bool:
    """True iff ``category`` is a registered trace category."""
    return category in ALL_CATEGORIES


def constant_name_for(category: str) -> str | None:
    """The constant name holding ``category``, or None if unregistered.

    Used by lint rule RPX005 to suggest the replacement for a raw literal.
    """
    return _CONSTANT_BY_VALUE.get(category)
