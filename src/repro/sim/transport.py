"""Simulator-backed implementation of the transport seam.

:class:`SimTransport` adapts the deterministic discrete-event pair
(:class:`~repro.sim.simulator.Simulator` +
:class:`~repro.sim.network.Network`) to the structural
:class:`~repro.core.transport.Transport` contract, and
:class:`SimNodeContext` is the per-node capability view
(:class:`~repro.core.transport.NodeContext`) the network attaches at
registration.

Both are pure 1:1 delegation -- same RNG streams, same event names, same
metric/trace records, same scheduling order -- so a system assembled
through the seam is byte-identical to one wired against the simulator
directly.  The sweep baseline's grid shape hashes enforce this.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import TYPE_CHECKING, Any

from repro.sim.events import EventHandle
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime cycle guard)
    from repro.core.transport import MessageProcess, NodeContext


class SimNodeContext:
    """Per-node capability view over one simulator/network pair."""

    __slots__ = ("_network", "_node_id", "_simulator")

    def __init__(self, node_id: Hashable, simulator: Simulator, network: Network) -> None:
        self._node_id = node_id
        self._simulator = simulator
        self._network = network

    @property
    def node_id(self) -> Hashable:
        return self._node_id

    def send(self, destination: Hashable, message: Any) -> None:
        self._network.send(self._node_id, destination, message)

    def now(self) -> float:
        return self._simulator.clock.now

    def set_timer(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> EventHandle:
        return self._simulator.schedule(delay, callback, name)

    def trace(self, category: str, **details: object) -> None:
        simulator = self._simulator
        tracer = simulator.tracer
        if tracer.idle:
            return
        tracer.record(simulator.clock.now, category, **details)

    def counter(self, name: str) -> Counter:
        return self._simulator.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self._simulator.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self._simulator.metrics.histogram(name)

    def __repr__(self) -> str:
        return f"SimNodeContext({self._node_id!r})"


class SimTransport:
    """The discrete-event backend of the transport contract.

    P4 holds by construction: :class:`~repro.sim.network.Network` clamps
    per-channel delivery times to be strictly increasing, and the
    single-threaded event loop runs every handler to completion (the
    atomicity note).  Determinism is the bonus the live backend does not
    offer: runs are a pure function of the seed.
    """

    name = "sim"

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self.simulator = simulator
        self.network = network

    # -- observation registries ----------------------------------------

    @property
    def tracer(self) -> Tracer:
        return self.simulator.tracer

    @property
    def metrics(self) -> MetricsRegistry:
        return self.simulator.metrics

    @property
    def rng(self) -> RngRegistry:
        return self.simulator.rng

    # -- nodes ---------------------------------------------------------

    def register(self, process: "MessageProcess") -> "NodeContext":
        self.network.register(process)
        # Network.register attached the context; hand it back.
        return process.ctx  # type: ignore[attr-defined, no-any-return]

    def process(self, pid: Hashable) -> "MessageProcess":
        return self.network.process(pid)

    # -- clock & scheduling --------------------------------------------

    @property
    def now(self) -> float:
        return self.simulator.clock.now

    def schedule(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> EventHandle:
        return self.simulator.schedule(delay, action, name)

    def schedule_at(
        self, time: float, action: Callable[[], None], name: str = ""
    ) -> EventHandle:
        return self.simulator.schedule_at(time, action, name)

    # -- running -------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        self.simulator.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        self.simulator.run_to_quiescence(max_events=max_events)

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> bool:
        """Step events until ``predicate()`` holds.

        Returns True the moment the predicate is satisfied (checked before
        each event), False when the simulation quiesces or the event
        budget runs out first.
        """
        executed = 0
        while not predicate():
            if executed >= max_events or not self.simulator.step():
                return False
            executed += 1
        return True

    def close(self) -> None:
        """Nothing to release; present for contract symmetry."""

    def __repr__(self) -> str:
        return f"SimTransport(t={self.now}, nodes={len(self.network.process_ids)})"
