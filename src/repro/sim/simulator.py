"""The discrete-event simulation engine.

A :class:`Simulator` owns the clock, the event queue, a tracer, a metrics
registry, and an RNG registry, and exposes the scheduling API used by model
code.  Running is pull-based: :meth:`run` pops events in ``(time, sequence)``
order, advances the clock, and executes their actions until quiescence, a
time deadline, or an event-count limit.

The engine is the hot path of every experiment sweep, so the execution core
is written for speed without changing observable behaviour:

* the plain-vs-profiled execution choice is a **precomputed dispatch**
  (``_execute``), rebuilt whenever :attr:`profile_hook` is assigned, so
  :meth:`step` pays no per-event ``is None`` branch;
* :meth:`run` inlines the pop/advance/execute cycle over the raw heap with
  bound locals, skipping the per-event property and method lookups of the
  naive ``while step()`` loop.

Both paths execute events in exactly the same ``(time, sequence)`` order and
produce bit-identical traces -- ``tests/sim/test_hot_path.py`` proves it.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Protocol

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import Event, EventHandle, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class ProfileHook(Protocol):
    """Structural interface for the opt-in execution profiler.

    The simulator itself never reads the wall clock (rule RPX002); it only
    calls out to an attached hook around each event.  The one concrete
    implementation lives in :mod:`repro.obs.profile`, the single module
    allowed to measure wall time.  When no hook is attached the per-event
    overhead is zero: assigning :attr:`Simulator.profile_hook` swaps the
    precomputed execute dispatch rather than testing ``is None`` per event.
    """

    def before_event(self, event: Event) -> None:
        """Called after the clock advanced, before the action runs."""
        ...

    def after_event(self, event: Event, queue_depth: int) -> None:
        """Called after the action ran; ``queue_depth`` is the raw heap size."""
        ...


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all randomness (delays, workloads).
    trace:
        Whether to record a full structured trace.  Verification-heavy tests
        keep it on; large benchmark sweeps turn it off and rely on metrics.
    """

    def __init__(self, seed: int = 0, trace: bool = True) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsRegistry()
        self.rng = RngRegistry(seed)
        self._events_executed = 0
        self._profile_hook: ProfileHook | None = None
        self._execute: Callable[[Event], None] = self._execute_plain

    @property
    def profile_hook(self) -> ProfileHook | None:
        """Opt-in execution profiler (see :class:`ProfileHook`).

        Attach / detach via :class:`repro.obs.profile.SimulatorProfiler`.
        Assignment precomputes the execute dispatch used by :meth:`step`
        and :meth:`run`, so the unprofiled hot path carries no hook test.
        """
        return self._profile_hook

    @profile_hook.setter
    def profile_hook(self, hook: ProfileHook | None) -> None:
        self._profile_hook = hook
        self._execute = self._execute_plain if hook is None else self._execute_profiled

    def _execute_plain(self, event: Event) -> None:
        event.action()

    def _execute_profiled(self, event: Event) -> None:
        hook = self._profile_hook
        assert hook is not None
        hook.before_event(event)
        event.action()
        hook.after_event(event, self.queue.heap_size)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def schedule(self, delay: float, action: Callable[[], None], name: str = "") -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.clock.now + delay, action, name)

    def schedule_at(self, time: float, action: Callable[[], None], name: str = "") -> EventHandle:
        """Schedule ``action`` at absolute virtual ``time`` (>= now)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, requested={time}"
            )
        return self.queue.push(time, action, name)

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue was empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self._events_executed += 1
        self._execute(event)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until quiescence, a deadline, or an event budget.

        ``until`` is an absolute virtual-time deadline: events strictly after
        it are left in the queue and the clock is advanced exactly to
        ``until`` (so periodic drivers observe a consistent end time).
        ``max_events`` bounds the number of events executed in this call and
        guards against runaway model bugs in tests.

        This is the engine's inner loop: it works on the raw heap of
        ``(time, sequence, event)`` entries with bound locals and is
        semantically identical to ``while self.step()`` (same event order,
        same clock movement, bit-identical traces).  The direct clock write
        is safe by construction: scheduling validates ``time >= now`` and
        the heap pops in non-decreasing time order, so monotonicity holds
        without re-checking ``advance_to``'s backwards guard per event.
        """
        heap = self.queue._heap
        heappop = heapq.heappop
        clock = self.clock
        if until is None and max_events is None:
            # Quiescence without a budget: the tightest loop (no deadline
            # or budget tests, pop-then-check instead of peek-then-pop).
            while heap:
                entry = heappop(heap)
                event = entry[2]
                if event.cancelled:
                    continue
                clock._now = entry[0]
                self._events_executed += 1
                self._execute(event)
            return
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            # Find the earliest live event (lazy cancellation discard).
            while heap and heap[0][2].cancelled:
                heappop(heap)
            if not heap:
                if until is not None:
                    clock.advance_to(until)
                return
            entry = heap[0]
            if until is not None and entry[0] > until:
                clock.advance_to(until)
                return
            heappop(heap)
            clock._now = entry[0]
            self._events_executed += 1
            self._execute(entry[2])
            executed += 1

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain; raise if the budget is exhausted.

        Deadlock detection experiments typically end at quiescence: a dark
        cycle produces no further underlying-computation events, and probe
        computations always terminate, so a well-formed scenario quiesces.
        A non-quiescing run within ``max_events`` indicates a driver that
        schedules unboundedly (use :meth:`run` with ``until`` for those).
        """
        self.run(max_events=max_events)
        if self.queue:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events "
                f"(queue still holds {len(self.queue)} events at t={self.now})"
            )

    def trace_now(self, category: str, **details: object) -> None:
        """Record a trace event stamped with the current time."""
        tracer = self.tracer
        if tracer.idle:
            return
        tracer.record(self.clock.now, category, **details)

    def __repr__(self) -> str:
        return (
            f"Simulator(t={self.clock.now}, pending={len(self.queue)}, "
            f"executed={self._events_executed})"
        )
