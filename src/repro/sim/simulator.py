"""The discrete-event simulation engine.

A :class:`Simulator` owns the clock, the event queue, a tracer, a metrics
registry, and an RNG registry, and exposes the scheduling API used by model
code.  Running is pull-based: :meth:`run` pops events in ``(time, sequence)``
order, advances the clock, and executes their actions until quiescence, a
time deadline, or an event-count limit.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import Event, EventHandle, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class ProfileHook(Protocol):
    """Structural interface for the opt-in execution profiler.

    The simulator itself never reads the wall clock (rule RPX002); it only
    calls out to an attached hook around each event.  The one concrete
    implementation lives in :mod:`repro.obs.profile`, the single module
    allowed to measure wall time.  When no hook is attached the per-event
    overhead is one attribute read and one ``is None`` test.
    """

    def before_event(self, event: Event) -> None:
        """Called after the clock advanced, before the action runs."""
        ...

    def after_event(self, event: Event, queue_depth: int) -> None:
        """Called after the action ran; ``queue_depth`` is the raw heap size."""
        ...


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all randomness (delays, workloads).
    trace:
        Whether to record a full structured trace.  Verification-heavy tests
        keep it on; large benchmark sweeps turn it off and rely on metrics.
    """

    def __init__(self, seed: int = 0, trace: bool = True) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsRegistry()
        self.rng = RngRegistry(seed)
        self._events_executed = 0
        #: Opt-in execution profiler (see :class:`ProfileHook`).  Attach /
        #: detach via :class:`repro.obs.profile.SimulatorProfiler`.
        self.profile_hook: ProfileHook | None = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def schedule(self, delay: float, action: Callable[[], None], name: str = "") -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.clock.now + delay, action, name)

    def schedule_at(self, time: float, action: Callable[[], None], name: str = "") -> EventHandle:
        """Schedule ``action`` at absolute virtual ``time`` (>= now)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, requested={time}"
            )
        return self.queue.push(time, action, name)

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue was empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self._events_executed += 1
        hook = self.profile_hook
        if hook is None:
            event.action()
        else:
            hook.before_event(event)
            event.action()
            hook.after_event(event, self.queue.heap_size)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until quiescence, a deadline, or an event budget.

        ``until`` is an absolute virtual-time deadline: events strictly after
        it are left in the queue and the clock is advanced exactly to
        ``until`` (so periodic drivers observe a consistent end time).
        ``max_events`` bounds the number of events executed in this call and
        guards against runaway model bugs in tests.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.queue.next_time
            if next_time is None:
                if until is not None:
                    self.clock.advance_to(until)
                return
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return
            self.step()
            executed += 1

    def run_to_quiescence(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain; raise if the budget is exhausted.

        Deadlock detection experiments typically end at quiescence: a dark
        cycle produces no further underlying-computation events, and probe
        computations always terminate, so a well-formed scenario quiesces.
        A non-quiescing run within ``max_events`` indicates a driver that
        schedules unboundedly (use :meth:`run` with ``until`` for those).
        """
        self.run(max_events=max_events)
        if self.queue:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events "
                f"(queue still holds {len(self.queue)} events at t={self.now})"
            )

    def trace_now(self, category: str, **details: object) -> None:
        """Record a trace event stamped with the current time."""
        self.tracer.record(self.clock.now, category, **details)

    def __repr__(self) -> str:
        return (
            f"Simulator(t={self.clock.now}, pending={len(self.queue)}, "
            f"executed={self._events_executed})"
        )
