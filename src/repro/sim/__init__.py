"""Discrete-event simulation substrate.

The paper assumes a distributed system in which messages are delivered
reliably, in the order sent, after an arbitrary finite delay (process axiom
P4 and the channel assumption in section 2.4).  This package provides
exactly that environment as a deterministic discrete-event simulation:

* :class:`~repro.sim.clock.Clock` -- virtual time.
* :class:`~repro.sim.events.EventQueue` -- a stable priority queue of events.
* :class:`~repro.sim.simulator.Simulator` -- the engine: schedule callbacks,
  step or run until quiescence / a deadline.
* :class:`~repro.sim.process.Process` -- actor base class with a message
  handler, used by vertices and controllers.
* :class:`~repro.sim.network.Network` -- per-channel FIFO message delivery
  with pluggable delay models; the FIFO guarantee is what makes axioms
  P1/P2 hold.
* :class:`~repro.sim.trace.Tracer` and
  :class:`~repro.sim.metrics.MetricsRegistry` -- observation.
* :class:`~repro.sim.rng.RngRegistry` -- named, reproducible random streams.

Everything is deterministic given a seed, so every experiment in
EXPERIMENTS.md is exactly reproducible.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventHandle, EventQueue
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    TimeSeries,
)
from repro.sim.network import (
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    Network,
    UniformDelay,
)
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Clock",
    "Counter",
    "DelayModel",
    "Event",
    "EventHandle",
    "EventQueue",
    "ExponentialDelay",
    "FixedDelay",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Network",
    "Process",
    "RngRegistry",
    "Sample",
    "Simulator",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "UniformDelay",
]
