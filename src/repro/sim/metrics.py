"""Counters and histograms for experiment accounting.

The benchmark harness needs exact message counts (experiment E3: at most one
probe per edge per computation) and latency distributions (E5: detection
latency vs the T parameter).  Metrics are plain in-memory objects owned by a
:class:`MetricsRegistry`; nothing here is thread-aware because the simulator
is single-threaded by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


@dataclass
class HistogramSummary:
    """Summary statistics of a histogram at one point in time."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float


class Histogram:
    """A value recorder with exact quantiles.

    Stores all observations (simulations here record at most a few hundred
    thousand values); quantiles are computed on demand by sorting with the
    nearest-rank method.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot record NaN")
        self._values.append(value)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        """A copy of all recorded values, in recording order is not
        guaranteed (values may have been sorted for quantile queries)."""
        return list(self._values)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; ``q`` in [0, 1].  Raises on empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, math.ceil(q * len(self._values)) - 1)
        return self._values[rank]

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return sum(self._values) / len(self._values)

    def summary(self) -> HistogramSummary:
        """Return a :class:`HistogramSummary`; raises on empty histograms."""
        return HistogramSummary(
            count=self.count,
            mean=self.mean,
            minimum=self.quantile(0.0),
            maximum=self.quantile(1.0),
            p50=self.quantile(0.5),
            p90=self.quantile(0.9),
            p99=self.quantile(0.99),
        )

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


@dataclass
class MetricsRegistry:
    """Owner of named counters and histograms.

    ``counter(name)`` / ``histogram(name)`` create on first use and memoise,
    so call sites never need to pre-register metrics.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        existing = self.counters.get(name)
        if existing is None:
            existing = Counter(name)
            self.counters[name] = existing
        return existing

    def histogram(self, name: str) -> Histogram:
        existing = self.histograms.get(name)
        if existing is None:
            existing = Histogram(name)
            self.histograms[name] = existing
        return existing

    def counter_value(self, name: str) -> int:
        """Value of a counter, 0 if it was never touched."""
        existing = self.counters.get(name)
        return existing.value if existing is not None else 0

    def snapshot(self) -> dict[str, int]:
        """All counter values as a plain dict (for table rendering)."""
        return {name: counter.value for name, counter in sorted(self.counters.items())}
