"""Counters and histograms for experiment accounting.

The benchmark harness needs exact message counts (experiment E3: at most one
probe per edge per computation) and latency distributions (E5: detection
latency vs the T parameter).  Metrics are plain in-memory objects owned by a
:class:`MetricsRegistry`; nothing here is thread-aware because the simulator
is single-threaded by construction.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


@dataclass
class HistogramSummary:
    """Summary statistics of a histogram at one point in time."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float


class Histogram:
    """A value recorder with exact quantiles.

    Stores all observations (simulations here record at most a few hundred
    thousand values); quantiles are computed on demand by sorting with the
    nearest-rank method.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot record NaN")
        self._values.append(value)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        """A copy of all recorded values.

        Recording order is **not** guaranteed: quantile queries
        (:meth:`quantile`, :meth:`summary`) sort the backing list in place,
        so after any such query the values come back sorted instead of in
        insertion order.  The returned list is always a fresh copy, so
        mutating it never affects the histogram.
        """
        return list(self._values)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; ``q`` in [0, 1].  Raises on empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, math.ceil(q * len(self._values)) - 1)
        return self._values[rank]

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return sum(self._values) / len(self._values)

    def summary(self) -> HistogramSummary:
        """Return a :class:`HistogramSummary`; raises on empty histograms."""
        return HistogramSummary(
            count=self.count,
            mean=self.mean,
            minimum=self.quantile(0.0),
            maximum=self.quantile(1.0),
            p50=self.quantile(0.5),
            p90=self.quantile(0.9),
            p99=self.quantile(0.99),
        )

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class Gauge:
    """A point-in-time value that can move both ways.

    Counters are monotone by contract; gauges track levels -- messages in
    flight, live event-queue depth -- that rise and fall.  The profiling
    layer (:mod:`repro.obs.profile`) samples gauges into time series.
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError(f"gauge {self.name!r} cannot be set to NaN")
        self._value = value

    def increment(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def decrement(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value})"


@dataclass(frozen=True)
class Sample:
    """One time-series observation: a value at a virtual-time instant."""

    time: float
    value: float


class TimeSeries:
    """An append-only sequence of ``(virtual time, value)`` samples.

    Used for level-over-time telemetry such as event-queue depth.  Sample
    times must be non-decreasing, which the single-threaded simulator
    guarantees for anything recorded from inside event handlers.
    """

    __slots__ = ("name", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: list[Sample] = []

    def record(self, time: float, value: float) -> None:
        if self._samples and time < self._samples[-1].time:
            raise ValueError(
                f"time series {self.name!r} requires non-decreasing times: "
                f"got {time} after {self._samples[-1].time}"
            )
        self._samples.append(Sample(time=time, value=value))

    @property
    def samples(self) -> list[Sample]:
        """A copy of all samples, in recording order."""
        return list(self._samples)

    @property
    def last(self) -> Sample | None:
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, samples={len(self._samples)})"


class _LazyMetricDict(dict):  # type: ignore[type-arg]
    """A ``dict`` that builds the metric on first access (``__missing__``).

    Registration is thereby *lazy*: a metric exists only once something
    touches it, and the steady-state lookup ``registry.counters[name]`` is
    one hash probe with no ``get``/``is None`` detour -- the accessor
    methods below sit on hot paths (one counter bump per message sent).
    """

    __slots__ = ("_factory",)

    def __init__(self, factory: Callable[[str], Any]) -> None:
        super().__init__()
        self._factory = factory

    def __missing__(self, name: str) -> Any:
        metric = self._factory(name)
        self[name] = metric
        return metric


class MetricsRegistry:
    """Owner of named counters, histograms, gauges, and time series.

    ``counter(name)`` / ``histogram(name)`` / ``gauge(name)`` /
    ``timeseries(name)`` create on first use and memoise (lazily, via
    ``__missing__``), so call sites never need to pre-register metrics.
    Hot call sites should nevertheless bind the returned object once --
    the metric instance is stable for the registry's lifetime.
    """

    __slots__ = ("counters", "gauges", "histograms", "series")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = _LazyMetricDict(Counter)
        self.histograms: dict[str, Histogram] = _LazyMetricDict(Histogram)
        self.gauges: dict[str, Gauge] = _LazyMetricDict(Gauge)
        self.series: dict[str, TimeSeries] = _LazyMetricDict(TimeSeries)

    def counter(self, name: str) -> Counter:
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def gauge(self, name: str) -> Gauge:
        return self.gauges[name]

    def timeseries(self, name: str) -> TimeSeries:
        return self.series[name]

    def counter_value(self, name: str) -> int:
        """Value of a counter, 0 if it was never touched.

        Deliberately does **not** instantiate the counter: reading a value
        must not mutate the registry (snapshots stay minimal).
        """
        existing = self.counters.get(name)
        return existing.value if existing is not None else 0

    def snapshot(self) -> dict[str, int]:
        """All counter values as a plain dict (for table rendering)."""
        return {name: counter.value for name, counter in sorted(self.counters.items())}

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"histograms={len(self.histograms)}, gauges={len(self.gauges)}, "
            f"series={len(self.series)})"
        )
